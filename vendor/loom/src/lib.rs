//! Offline stand-in for the `loom` crate.
//!
//! The build environment has no network access, so the real `loom` cannot
//! be fetched. This vendored replacement model-checks concurrent code the
//! same way loom does at its core: it runs the test body many times under a
//! **cooperative scheduler** that serializes the simulated threads, treats
//! every synchronization operation as a scheduling point, and explores the
//! tree of scheduling decisions exhaustively by depth-first search with
//! replay — bounded by a configurable preemption budget, which is the
//! standard state-space reduction (most concurrency bugs manifest within
//! two or three preemptions; see the CHESS paper).
//!
//! What it models: all interleavings of `Mutex`/`RwLock`/`Condvar`/atomic
//! operations and thread spawn/join/yield points, including lost-wakeup and
//! deadlock detection (a state where every live thread is blocked fails the
//! test with the schedule that produced it). What it does **not** model,
//! unlike real loom: C11 weak-memory reorderings (every atomic behaves
//! sequentially consistent) and spurious condvar wakeups. The workspace
//! only relies on lock/condvar interleaving correctness, so this surface is
//! the one its serve-layer model tests need.
//!
//! Outside of [`model`], every primitive falls back to plain `std`
//! behavior, so code built with `--cfg loom` still works when executed
//! without an active model run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

/// Panic payload used to unwind simulated threads out of an aborted
/// execution (after a user panic or a detected deadlock). Never surfaced:
/// the primary panic is re-raised by the orchestrator instead.
const ABORT: &str = "loom-execution-aborted";

/// Serializes whole model runs: `cargo test` may run several `#[test]`
/// functions concurrently, but the scheduler's bookkeeping is per-run.
static MODEL_LOCK: StdMutex<()> = StdMutex::new(());

thread_local! {
    /// The scheduler and simulated-thread id of the current OS thread, when
    /// it is executing inside a model run.
    static CTX: RefCell<Option<(StdArc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(StdArc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// What a simulated thread is blocked on (nothing = runnable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Block {
    /// Runnable.
    None,
    /// Waiting to acquire mutex `id`.
    Lock(usize),
    /// Waiting to acquire rwlock `id` for reading.
    RwRead(usize),
    /// Waiting to acquire rwlock `id` for writing.
    RwWrite(usize),
    /// Parked on condvar `id` (ineligible until notified).
    Condvar(usize),
    /// Waiting for thread `tid` to finish.
    Join(usize),
}

/// One recorded scheduling decision — the unit of DFS exploration.
#[derive(Clone, Debug)]
struct Decision {
    /// Threads that were eligible to run, in ascending tid order.
    candidates: Vec<usize>,
    /// Index into `candidates` actually chosen.
    chosen: usize,
    /// The thread that was running and still runnable when the decision was
    /// made (choosing any *other* candidate costs a preemption).
    yielder: Option<usize>,
    /// Preemptions spent on the path before this decision.
    preemptions_before: usize,
}

#[derive(Debug, Default)]
struct RwState {
    readers: usize,
    writer: bool,
}

struct ExecState {
    finished: Vec<bool>,
    blocked: Vec<Block>,
    current: usize,
    /// Mutexes: holding tid, if held.
    locks: Vec<Option<usize>>,
    rws: Vec<RwState>,
    /// FIFO wait queues per condvar.
    cv_queues: Vec<Vec<usize>>,
    decisions: Vec<Decision>,
    replay: Vec<usize>,
    pos: usize,
    preemptions: usize,
    /// Live (registered, not finished) thread count.
    active: usize,
    aborted: bool,
    /// First non-sentinel panic of the run (user assertion or deadlock).
    panic_payload: Option<Box<dyn Any + Send>>,
    /// The tid sequence actually scheduled, for failure diagnostics.
    schedule_log: Vec<usize>,
}

struct Scheduler {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
}

type Guard<'a> = std::sync::MutexGuard<'a, ExecState>;

impl Scheduler {
    fn new(replay: Vec<usize>) -> Self {
        Self {
            state: StdMutex::new(ExecState {
                finished: vec![false],
                blocked: vec![Block::None],
                current: 0,
                locks: Vec::new(),
                rws: Vec::new(),
                cv_queues: Vec::new(),
                decisions: Vec::new(),
                replay,
                pos: 0,
                preemptions: 0,
                active: 1,
                aborted: false,
                panic_payload: None,
                schedule_log: Vec::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock_state(&self) -> Guard<'_> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn eligible(st: &ExecState, t: usize) -> bool {
        if st.finished[t] {
            return false;
        }
        match st.blocked[t] {
            Block::None => true,
            Block::Lock(l) => st.locks[l].is_none(),
            Block::RwRead(r) => !st.rws[r].writer,
            Block::RwWrite(r) => !st.rws[r].writer && st.rws[r].readers == 0,
            Block::Condvar(_) => false,
            Block::Join(j) => st.finished[j],
        }
    }

    fn candidates(st: &ExecState) -> Vec<usize> {
        (0..st.blocked.len())
            .filter(|&t| Self::eligible(st, t))
            .collect()
    }

    fn describe_blocked(st: &ExecState) -> String {
        let mut parts = Vec::new();
        for t in 0..st.blocked.len() {
            if !st.finished[t] {
                parts.push(format!("thread {t} blocked on {:?}", st.blocked[t]));
            }
        }
        parts.join("; ")
    }

    /// Flags the run as aborted with a deadlock report and wakes everyone;
    /// the caller unwinds with the sentinel.
    fn deadlock(&self, mut st: Guard<'_>) -> ! {
        st.aborted = true;
        if st.panic_payload.is_none() {
            let msg = format!(
                "loom: deadlock — no eligible thread ({}); schedule so far: {:?}",
                Self::describe_blocked(&st),
                st.schedule_log
            );
            st.panic_payload = Some(Box::new(msg));
        }
        self.cv.notify_all();
        drop(st);
        std::panic::panic_any(ABORT)
    }

    /// The core scheduling point: records one decision, hands the baton to
    /// the chosen thread, and blocks until this thread is scheduled again.
    /// `block` is what *this* thread is now waiting on (`Block::None` for a
    /// pure yield). Panics with the abort sentinel when the run is over.
    fn decision<'a>(&'a self, mut st: Guard<'a>, tid: usize, block: Block) -> Guard<'a> {
        if st.aborted {
            drop(st);
            std::panic::panic_any(ABORT);
        }
        st.blocked[tid] = block;
        let cands = Self::candidates(&st);
        if cands.is_empty() {
            self.deadlock(st);
        }
        let chosen = if st.pos < st.replay.len() {
            let r = st.replay[st.pos];
            assert!(
                r < cands.len(),
                "loom: nondeterministic test body — replay index {r} out of {} candidates",
                cands.len()
            );
            r
        } else {
            // Fresh decision: prefer continuing the current thread (fewest
            // preemptions first); DFS backtracking explores the rest.
            cands.iter().position(|&c| c == tid).unwrap_or(0)
        };
        let yielder = (block == Block::None).then_some(tid);
        let preempt = yielder.is_some_and(|y| cands.contains(&y) && cands[chosen] != y);
        let preemptions_before = st.preemptions;
        st.decisions.push(Decision {
            candidates: cands.clone(),
            chosen,
            yielder,
            preemptions_before,
        });
        if preempt {
            st.preemptions += 1;
        }
        st.pos += 1;
        st.current = cands[chosen];
        st.schedule_log.push(cands[chosen]);
        self.cv.notify_all();
        while !st.aborted && st.current != tid {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.aborted {
            drop(st);
            std::panic::panic_any(ABORT);
        }
        st.blocked[tid] = Block::None;
        st
    }

    /// A pure yield point (interleaving opportunity with no state change).
    fn plain_yield(&self, tid: usize) {
        let st = self.lock_state();
        let _st = self.decision(st, tid, Block::None);
    }

    /// First wait of a freshly spawned simulated thread: parks until the
    /// scheduler hands it the baton.
    fn wait_first(&self, tid: usize) {
        let mut st = self.lock_state();
        while !st.aborted && st.current != tid {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.aborted {
            drop(st);
            std::panic::panic_any(ABORT);
        }
    }

    /// Registers a new simulated thread; returns its tid.
    fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.finished.push(false);
        st.blocked.push(Block::None);
        st.active += 1;
        st.finished.len() - 1
    }

    fn register_lock(&self) -> usize {
        let mut st = self.lock_state();
        st.locks.push(None);
        st.locks.len() - 1
    }

    fn register_rw(&self) -> usize {
        let mut st = self.lock_state();
        st.rws.push(RwState::default());
        st.rws.len() - 1
    }

    fn register_cv(&self) -> usize {
        let mut st = self.lock_state();
        st.cv_queues.push(Vec::new());
        st.cv_queues.len() - 1
    }

    // ----- mutex -----------------------------------------------------------

    fn lock_acquire(&self, tid: usize, id: usize) {
        let mut st = self.lock_state();
        st = self.decision(st, tid, Block::None); // pre-acquire interleaving point
        loop {
            if st.locks[id].is_none() {
                st.locks[id] = Some(tid);
                return;
            }
            st = self.decision(st, tid, Block::Lock(id));
        }
    }

    fn lock_release(&self, tid: usize, id: usize) {
        {
            let mut st = self.lock_state();
            st.locks[id] = None;
            if st.aborted {
                return;
            }
        }
        // Releases are scheduling points too — but never while unwinding
        // (the baton logic would double-panic inside a guard's Drop).
        if !std::thread::panicking() {
            self.plain_yield(tid);
        }
    }

    // ----- rwlock ----------------------------------------------------------

    fn rw_acquire(&self, tid: usize, id: usize, write: bool) {
        let mut st = self.lock_state();
        st = self.decision(st, tid, Block::None);
        loop {
            let free = if write {
                !st.rws[id].writer && st.rws[id].readers == 0
            } else {
                !st.rws[id].writer
            };
            if free {
                if write {
                    st.rws[id].writer = true;
                } else {
                    st.rws[id].readers += 1;
                }
                return;
            }
            let b = if write {
                Block::RwWrite(id)
            } else {
                Block::RwRead(id)
            };
            st = self.decision(st, tid, b);
        }
    }

    fn rw_release(&self, tid: usize, id: usize, write: bool) {
        {
            let mut st = self.lock_state();
            if write {
                st.rws[id].writer = false;
            } else {
                st.rws[id].readers = st.rws[id].readers.saturating_sub(1);
            }
            if st.aborted {
                return;
            }
        }
        if !std::thread::panicking() {
            self.plain_yield(tid);
        }
    }

    // ----- condvar ---------------------------------------------------------

    /// Atomically: release the mutex, park on the condvar, and (once
    /// notified and scheduled) reacquire the mutex. The release+park step is
    /// one critical section, so a notify between them cannot be lost.
    fn condvar_wait(&self, tid: usize, cv: usize, lock: usize) {
        let mut st = self.lock_state();
        st.locks[lock] = None;
        st.cv_queues[cv].push(tid);
        st = self.decision(st, tid, Block::Condvar(cv));
        loop {
            if st.locks[lock].is_none() {
                st.locks[lock] = Some(tid);
                return;
            }
            st = self.decision(st, tid, Block::Lock(lock));
        }
    }

    fn notify(&self, tid: usize, cv: usize, all: bool) {
        {
            let mut st = self.lock_state();
            if st.aborted {
                drop(st);
                std::panic::panic_any(ABORT);
            }
            if all {
                let woken = std::mem::take(&mut st.cv_queues[cv]);
                for w in woken {
                    st.blocked[w] = Block::None;
                }
            } else if !st.cv_queues[cv].is_empty() {
                let w = st.cv_queues[cv].remove(0);
                st.blocked[w] = Block::None;
            }
        }
        self.plain_yield(tid);
    }

    // ----- thread lifecycle ------------------------------------------------

    fn join_wait(&self, tid: usize, target: usize) {
        let mut st = self.lock_state();
        loop {
            if st.finished[target] {
                return;
            }
            st = self.decision(st, tid, Block::Join(target));
        }
    }

    /// Exit protocol: marks the thread finished, records a panic (if any),
    /// and — when the run continues — schedules a successor. The exiting
    /// thread does not wait; it simply leaves.
    fn thread_exit(&self, tid: usize, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.lock_state();
        st.finished[tid] = true;
        st.blocked[tid] = Block::None;
        st.active -= 1;
        if let Some(p) = panic {
            let sentinel = p.downcast_ref::<&str>().is_some_and(|s| *s == ABORT);
            if !sentinel && st.panic_payload.is_none() {
                st.panic_payload = Some(p);
            }
            st.aborted = true;
        }
        if st.active == 0 || st.aborted {
            self.cv.notify_all();
            return;
        }
        let cands = Self::candidates(&st);
        if cands.is_empty() {
            st.aborted = true;
            if st.panic_payload.is_none() {
                let msg = format!(
                    "loom: deadlock after thread {tid} exited — {}; schedule: {:?}",
                    Self::describe_blocked(&st),
                    st.schedule_log
                );
                st.panic_payload = Some(Box::new(msg));
            }
            self.cv.notify_all();
            return;
        }
        let chosen = if st.pos < st.replay.len() {
            let r = st.replay[st.pos];
            assert!(r < cands.len(), "loom: nondeterministic test body");
            r
        } else {
            0
        };
        let preemptions_before = st.preemptions;
        st.decisions.push(Decision {
            candidates: cands.clone(),
            chosen,
            yielder: None, // the yielder finished; no continuation to prefer
            preemptions_before,
        });
        st.pos += 1;
        st.current = cands[chosen];
        st.schedule_log.push(cands[chosen]);
        self.cv.notify_all();
    }

    fn wait_done(&self) {
        let mut st = self.lock_state();
        while st.active > 0 {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Computes the next replay prefix: the deepest decision with an untried
/// alternative that the preemption budget still allows. `None` when the
/// bounded tree is exhausted.
fn next_replay(decisions: &[Decision], bound: usize) -> Option<Vec<usize>> {
    let mut prefix: Vec<usize> = decisions.iter().map(|d| d.chosen).collect();
    for i in (0..decisions.len()).rev() {
        let d = &decisions[i];
        let mut alt = d.chosen + 1;
        while alt < d.candidates.len() {
            let preempt = d
                .yielder
                .is_some_and(|y| d.candidates.contains(&y) && d.candidates[alt] != y);
            if !preempt || d.preemptions_before < bound {
                prefix.truncate(i);
                prefix.push(alt);
                return Some(prefix);
            }
            alt += 1;
        }
        prefix.pop();
    }
    None
}

/// Configures a model run; [`model`] uses the defaults.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum thread preemptions explored per execution (the CHESS bound).
    /// `None` removes the bound (full exhaustive search).
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored executions — a runaway-state-space backstop
    /// that fails loudly rather than looping forever.
    pub max_executions: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            preemption_bound: Some(3),
            max_executions: 100_000,
        }
    }
}

impl Builder {
    /// A builder with the default preemption bound (3) and execution cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` under every schedule the bounded DFS reaches, panicking
    /// with the failing schedule if any execution panics or deadlocks.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let _serial = MODEL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let bound = self.preemption_bound.unwrap_or(usize::MAX);
        let f = StdArc::new(f);
        let mut replay: Vec<usize> = Vec::new();
        let mut executions = 0usize;
        loop {
            executions += 1;
            assert!(
                executions <= self.max_executions,
                "loom: state space exceeded {} executions; raise max_executions or \
                 shrink the model",
                self.max_executions
            );
            let sched = StdArc::new(Scheduler::new(replay.clone()));
            let body = StdArc::clone(&f);
            let s = StdArc::clone(&sched);
            let root = std::thread::Builder::new()
                .name("loom-0".to_owned())
                .spawn(move || {
                    CTX.with(|c| *c.borrow_mut() = Some((StdArc::clone(&s), 0)));
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        s.wait_first(0);
                        body();
                    }));
                    s.thread_exit(0, result.err());
                })
                .expect("spawn loom root thread");
            // Hand the baton to tid 0 (the only registered thread so far).
            sched.cv.notify_all();
            sched.wait_done();
            let _ = root.join();
            let mut st = sched.lock_state();
            if let Some(p) = st.panic_payload.take() {
                eprintln!(
                    "loom: failing schedule after {executions} execution(s): {:?}",
                    st.schedule_log
                );
                drop(st);
                std::panic::resume_unwind(p);
            }
            let decisions = std::mem::take(&mut st.decisions);
            drop(st);
            match next_replay(&decisions, bound) {
                Some(r) => replay = r,
                None => break,
            }
        }
    }
}

/// Model-checks `f`: explores every interleaving of its sync operations
/// (up to the default preemption bound) and panics with a repro schedule on
/// the first assertion failure or deadlock.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

/// Model-aware stand-ins for `std::thread`.
pub mod thread {
    use super::{ctx, Scheduler, CTX};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc as StdArc, Mutex as StdMutex, PoisonError};

    /// Handle to a simulated (or, outside a model, real) thread.
    pub struct JoinHandle<T> {
        real: Option<std::thread::JoinHandle<()>>,
        plain: Option<std::thread::JoinHandle<T>>,
        slot: Option<StdArc<StdMutex<Option<T>>>>,
        model: Option<(StdArc<Scheduler>, usize)>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the child's panic payload, as `std::thread::JoinHandle`
        /// does. Inside a model a panicking child aborts the whole run
        /// first, so the error arm is effectively unreachable there.
        #[allow(clippy::missing_panics_doc)] // the expect is on a handle invariant
        pub fn join(mut self) -> std::thread::Result<T> {
            if let Some(plain) = self.plain.take() {
                return plain.join();
            }
            let (sched, tid) = ctx().expect("loom JoinHandle joined outside its model run");
            let (_, target) = self.model.take().expect("model join handle");
            sched.join_wait(tid, target);
            let real = self.real.take().expect("real handle");
            let _ = real.join();
            let slot = self.slot.take().expect("result slot");
            let mut got = slot.lock().unwrap_or_else(PoisonError::into_inner);
            match got.take() {
                Some(v) => Ok(v),
                None => Err(Box::new("loom: child thread did not produce a value")),
            }
        }
    }

    /// Spawns a simulated thread inside a model run (a plain `std` thread
    /// outside one).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match ctx() {
            None => JoinHandle {
                real: None,
                plain: Some(std::thread::spawn(f)),
                slot: None,
                model: None,
            },
            Some((sched, parent)) => {
                let tid = sched.register_thread();
                let slot = StdArc::new(StdMutex::new(None));
                let s = StdArc::clone(&sched);
                let out = StdArc::clone(&slot);
                let real = std::thread::Builder::new()
                    .name(format!("loom-{tid}"))
                    .spawn(move || {
                        CTX.with(|c| *c.borrow_mut() = Some((StdArc::clone(&s), tid)));
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            s.wait_first(tid);
                            f()
                        }));
                        let err = match result {
                            Ok(v) => {
                                *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                                None
                            }
                            Err(p) => Some(p),
                        };
                        s.thread_exit(tid, err);
                    })
                    .expect("spawn loom thread");
                // The spawn itself is an interleaving point: the child may
                // run before the parent's next operation.
                sched.plain_yield(parent);
                JoinHandle {
                    real: Some(real),
                    plain: None,
                    slot: Some(slot),
                    model: Some((sched, tid)),
                }
            }
        }
    }

    /// A pure scheduling point (no-op outside a model run).
    pub fn yield_now() {
        if let Some((sched, tid)) = ctx() {
            sched.plain_yield(tid);
        } else {
            std::thread::yield_now();
        }
    }
}

/// Model-aware stand-ins for `std::sync`.
pub mod sync {
    use super::{ctx, Scheduler};
    use std::ops::{Deref, DerefMut};
    use std::sync::{Arc as StdArc, LockResult, PoisonError};

    pub use std::sync::Arc;

    type Model = Option<(StdArc<Scheduler>, usize)>;

    fn register(f: impl FnOnce(&Scheduler) -> usize) -> Model {
        ctx().map(|(sched, _)| {
            let id = f(&sched);
            (sched, id)
        })
    }

    // ----- Mutex -----------------------------------------------------------

    /// A mutex whose acquire/release are scheduling points inside a model.
    pub struct Mutex<T> {
        data: std::sync::Mutex<T>,
        model: Model,
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.data.fmt(f)
        }
    }

    /// Guard for [`Mutex`]; releases at drop (a scheduling point).
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
        tid: Option<usize>,
    }

    impl<T> Mutex<T> {
        /// Creates the mutex, registering it with the active model run.
        pub fn new(t: T) -> Self {
            Self {
                data: std::sync::Mutex::new(t),
                model: register(Scheduler::register_lock),
            }
        }

        /// Acquires the mutex.
        ///
        /// # Errors
        ///
        /// Propagates `std` poisoning outside a model run; inside one the
        /// result is always `Ok` (a panicking model thread aborts the run).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match (&self.model, ctx()) {
                (Some((sched, id)), Some((_, tid))) => {
                    sched.lock_acquire(tid, *id);
                    // Serialized by the scheduler: never contended here.
                    let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard {
                        lock: self,
                        inner: Some(inner),
                        tid: Some(tid),
                    })
                }
                _ => match self.data.lock() {
                    Ok(inner) => Ok(MutexGuard {
                        lock: self,
                        inner: Some(inner),
                        tid: None,
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        lock: self,
                        inner: Some(poisoned.into_inner()),
                        tid: None,
                    })),
                },
            }
        }
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            drop(self.inner.take());
            if let (Some((sched, id)), Some(tid)) = (&self.lock.model, self.tid) {
                sched.lock_release(tid, *id);
            }
        }
    }

    // ----- Condvar ---------------------------------------------------------

    /// A condition variable with modeled park/notify (FIFO wakeup order, no
    /// spurious wakeups).
    pub struct Condvar {
        inner: std::sync::Condvar,
        model: Model,
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Condvar {
        /// Creates the condvar, registering it with the active model run.
        pub fn new() -> Self {
            Self {
                inner: std::sync::Condvar::new(),
                model: register(Scheduler::register_cv),
            }
        }

        /// Atomically releases `guard`'s mutex and parks until notified,
        /// then reacquires the mutex.
        ///
        /// # Errors
        ///
        /// Propagates `std` poisoning outside a model run; always `Ok`
        /// inside one.
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            match (&self.model, guard.tid) {
                (Some((sched, cv)), Some(tid)) => {
                    let lock_ref = guard.lock;
                    let lock_id = lock_ref
                        .model
                        .as_ref()
                        .map(|(_, id)| *id)
                        .expect("modeled condvar used with unmodeled mutex");
                    // Dismantle the guard without running its release (the
                    // scheduler releases atomically with the park below).
                    drop(guard.inner.take());
                    guard.tid = None;
                    drop(guard);
                    sched.condvar_wait(tid, *cv, lock_id);
                    let inner = lock_ref.data.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard {
                        lock: lock_ref,
                        inner: Some(inner),
                        tid: Some(tid),
                    })
                }
                _ => {
                    let lock_ref = guard.lock;
                    let inner = guard.inner.take().expect("guard taken");
                    guard.tid = None;
                    drop(guard);
                    match self.inner.wait(inner) {
                        Ok(inner) => Ok(MutexGuard {
                            lock: lock_ref,
                            inner: Some(inner),
                            tid: None,
                        }),
                        Err(poisoned) => Err(PoisonError::new(MutexGuard {
                            lock: lock_ref,
                            inner: Some(poisoned.into_inner()),
                            tid: None,
                        })),
                    }
                }
            }
        }

        /// Wakes one parked waiter (FIFO), if any.
        pub fn notify_one(&self) {
            match (&self.model, ctx()) {
                (Some((sched, cv)), Some((_, tid))) => sched.notify(tid, *cv, false),
                _ => self.inner.notify_one(),
            }
        }

        /// Wakes every parked waiter.
        pub fn notify_all(&self) {
            match (&self.model, ctx()) {
                (Some((sched, cv)), Some((_, tid))) => sched.notify(tid, *cv, true),
                _ => self.inner.notify_all(),
            }
        }
    }

    // ----- RwLock ----------------------------------------------------------

    /// A readers-writer lock with modeled acquire/release points.
    pub struct RwLock<T> {
        data: std::sync::RwLock<T>,
        model: Model,
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.data.fmt(f)
        }
    }

    /// Shared-read guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T> {
        lock: &'a RwLock<T>,
        inner: Option<std::sync::RwLockReadGuard<'a, T>>,
        tid: Option<usize>,
    }

    /// Exclusive-write guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T> {
        lock: &'a RwLock<T>,
        inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
        tid: Option<usize>,
    }

    impl<T> RwLock<T> {
        /// Creates the lock, registering it with the active model run.
        pub fn new(t: T) -> Self {
            Self {
                data: std::sync::RwLock::new(t),
                model: register(Scheduler::register_rw),
            }
        }

        /// Acquires a shared read guard.
        ///
        /// # Errors
        ///
        /// Propagates `std` poisoning outside a model run; always `Ok`
        /// inside one.
        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            match (&self.model, ctx()) {
                (Some((sched, id)), Some((_, tid))) => {
                    sched.rw_acquire(tid, *id, false);
                    let inner = self.data.read().unwrap_or_else(PoisonError::into_inner);
                    Ok(RwLockReadGuard {
                        lock: self,
                        inner: Some(inner),
                        tid: Some(tid),
                    })
                }
                _ => match self.data.read() {
                    Ok(inner) => Ok(RwLockReadGuard {
                        lock: self,
                        inner: Some(inner),
                        tid: None,
                    }),
                    Err(poisoned) => Err(PoisonError::new(RwLockReadGuard {
                        lock: self,
                        inner: Some(poisoned.into_inner()),
                        tid: None,
                    })),
                },
            }
        }

        /// Acquires the exclusive write guard.
        ///
        /// # Errors
        ///
        /// Propagates `std` poisoning outside a model run; always `Ok`
        /// inside one.
        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            match (&self.model, ctx()) {
                (Some((sched, id)), Some((_, tid))) => {
                    sched.rw_acquire(tid, *id, true);
                    let inner = self.data.write().unwrap_or_else(PoisonError::into_inner);
                    Ok(RwLockWriteGuard {
                        lock: self,
                        inner: Some(inner),
                        tid: Some(tid),
                    })
                }
                _ => match self.data.write() {
                    Ok(inner) => Ok(RwLockWriteGuard {
                        lock: self,
                        inner: Some(inner),
                        tid: None,
                    }),
                    Err(poisoned) => Err(PoisonError::new(RwLockWriteGuard {
                        lock: self,
                        inner: Some(poisoned.into_inner()),
                        tid: None,
                    })),
                },
            }
        }
    }

    impl<T> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            drop(self.inner.take());
            if let (Some((sched, id)), Some(tid)) = (&self.lock.model, self.tid) {
                sched.rw_release(tid, *id, false);
            }
        }
    }

    impl<T> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken")
        }
    }

    impl<T> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            drop(self.inner.take());
            if let (Some((sched, id)), Some(tid)) = (&self.lock.model, self.tid) {
                sched.rw_release(tid, *id, true);
            }
        }
    }

    /// Model-aware atomics: every operation is a scheduling point; all
    /// orderings execute sequentially consistent (the scheduler serializes
    /// them), which over-synchronizes relative to real loom's C11 model.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_stand_in {
            ($name:ident, $std:ty, $val:ty) => {
                /// Model-aware atomic: each access is a scheduling point.
                #[derive(Debug, Default)]
                pub struct $name {
                    v: $std,
                }

                impl $name {
                    /// Creates the atomic with `v` as its initial value.
                    pub fn new(v: $val) -> Self {
                        Self { v: <$std>::new(v) }
                    }

                    fn point() {
                        if let Some((sched, tid)) = super::super::ctx() {
                            sched.plain_yield(tid);
                        }
                    }

                    /// Loads the value.
                    pub fn load(&self, o: Ordering) -> $val {
                        Self::point();
                        self.v.load(o)
                    }

                    /// Stores `val`.
                    pub fn store(&self, val: $val, o: Ordering) {
                        Self::point();
                        self.v.store(val, o)
                    }

                    /// Swaps in `val`, returning the previous value.
                    pub fn swap(&self, val: $val, o: Ordering) -> $val {
                        Self::point();
                        self.v.swap(val, o)
                    }
                }
            };
        }

        atomic_stand_in!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        atomic_stand_in!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        atomic_stand_in!(AtomicU64, std::sync::atomic::AtomicU64, u64);

        impl AtomicUsize {
            /// Adds `val`, returning the previous value.
            pub fn fetch_add(&self, val: usize, o: Ordering) -> usize {
                Self::point();
                self.v.fetch_add(val, o)
            }
        }

        impl AtomicU64 {
            /// Adds `val`, returning the previous value.
            pub fn fetch_add(&self, val: u64, o: Ordering) -> u64 {
                Self::point();
                self.v.fetch_add(val, o)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{Condvar, Mutex};
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn explores_both_orders_of_two_writers() {
        // A store-load race: depending on schedule, `first` is 1 or 2. The
        // model must visit both orders.
        let seen = StdArc::new(StdMutex::new(std::collections::BTreeSet::new()));
        let seen2 = StdArc::clone(&seen);
        model(move || {
            let slot = sync::Arc::new(Mutex::new(0u32));
            let s2 = sync::Arc::clone(&slot);
            let t = thread::spawn(move || {
                let mut g = s2.lock().expect("lock");
                if *g == 0 {
                    *g = 1;
                }
            });
            {
                let mut g = slot.lock().expect("lock");
                if *g == 0 {
                    *g = 2;
                }
            }
            t.join().expect("join");
            let v = *slot.lock().expect("lock");
            seen2.lock().expect("seen").insert(v);
        });
        let seen = seen.lock().expect("seen");
        assert!(seen.contains(&1) && seen.contains(&2), "saw {seen:?}");
    }

    #[test]
    fn detects_a_seeded_deadlock() {
        // Classic AB-BA deadlock; the model must find the interleaving
        // where both threads hold one lock and want the other.
        let hit = StdArc::new(AtomicUsize::new(0));
        let hit2 = StdArc::clone(&hit);
        let result = std::panic::catch_unwind(move || {
            model(move || {
                hit2.fetch_add(1, Ordering::SeqCst);
                let a = sync::Arc::new(Mutex::new(()));
                let b = sync::Arc::new(Mutex::new(()));
                let (a2, b2) = (sync::Arc::clone(&a), sync::Arc::clone(&b));
                let t = thread::spawn(move || {
                    let _ga = a2.lock().expect("a");
                    let _gb = b2.lock().expect("b");
                });
                {
                    let _gb = b.lock().expect("b");
                    let _ga = a.lock().expect("a");
                }
                t.join().expect("join");
            });
        });
        let err = result.expect_err("deadlock must fail the model");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock"), "unexpected panic: {msg}");
        assert!(hit.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn condvar_wakeup_is_not_lost() {
        // One waiter, one notifier. Every schedule must terminate: the
        // release+park step is atomic, so the notify cannot fall between
        // "checked the flag" and "parked".
        model(|| {
            let pair = sync::Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = sync::Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut ready = m.lock().expect("lock");
                while !*ready {
                    ready = cv.wait(ready).expect("wait");
                }
            });
            let (m, cv) = &*pair;
            *m.lock().expect("lock") = true;
            cv.notify_one();
            t.join().expect("join");
        });
    }

    #[test]
    fn falls_back_to_std_outside_model() {
        let m = Mutex::new(5u32);
        assert_eq!(*m.lock().expect("lock"), 5);
        let t = thread::spawn(|| 7u32);
        assert_eq!(t.join().expect("join"), 7);
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Provides the surface the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`iter`/`finish`, and the
//! `criterion_group!`/`criterion_main!` macros — with a deliberately simple
//! measurement loop: a short warm-up, then `sample_size` timed iterations,
//! reporting min/mean/max per iteration on stdout. No statistics, plots,
//! or baselines; the point is that `cargo bench` compiles, runs, and prints
//! usable numbers without network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box` (the real crate
/// deprecates its own copy in favor of the std one).
pub use std::hint::black_box;

/// Top-level benchmark context.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs a standalone benchmark (group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(id, sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_one(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Ends the group (a no-op in the stand-in; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size + 1),
        sample_size,
    };
    f(&mut bencher);
    // Drop the warm-up sample if the routine ran at all.
    let timed: &[Duration] = if bencher.samples.len() > 1 {
        &bencher.samples[1..]
    } else {
        &bencher.samples
    };
    if timed.is_empty() {
        println!("  {label}: no samples");
        return;
    }
    let total: Duration = timed.iter().sum();
    let mean = total / timed.len() as u32;
    let min = timed.iter().min().expect("nonempty");
    let max = timed.iter().max().expect("nonempty");
    println!(
        "  {label}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
        timed.len()
    );
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once as warm-up, then `sample_size` timed iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..=self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a group of benchmark functions, in either the list or the
/// `name/config/targets` form the real crate accepts.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

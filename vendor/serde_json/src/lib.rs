//! Offline stand-in for the `serde_json` crate.
//!
//! Provides the workspace's used surface — `to_string`, `to_string_pretty`,
//! `to_writer`, `from_str`, `from_reader`, [`Value`], and a [`json!`] macro
//! for object/array literals — on top of the vendored serde's [`Content`]
//! tree model.
//!
//! Formatting matches real serde_json's defaults where observable: structs
//! print in field order with `":"`/`","` separators and no whitespace,
//! floats use Rust's shortest round-trip formatting, non-finite floats
//! serialize as `null`, and [`Value`] objects iterate in sorted key order
//! (real serde_json's default `Map` is a `BTreeMap`).
//!
//! [`Content`]: serde::Content

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};

use serde::{Content, Deserialize, Serialize};

/// Error for serialization, deserialization, and IO failures.
#[derive(Debug)]
pub struct Error {
    msg: String,
    /// 1-based line of the error when parsing, 0 otherwise.
    line: usize,
    /// 1-based column of the error when parsing, 0 otherwise.
    column: usize,
}

impl Error {
    fn msg(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            line: 0,
            column: 0,
        }
    }

    /// 1-based line number of a parse error (0 for non-parse errors).
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column number of a parse error (0 for non-parse errors).
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.msg, self.line, self.column
            )
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; sorted key order like real serde_json's default map.
    Object(BTreeMap<String, Value>),
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Value {
    /// The value as an `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_content(&self.to_content(), &mut out, None, 0);
        f.write_str(&out)
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::U64(v)) => Content::U64(*v),
            Value::Number(Number::I64(v)) => Content::I64(*v),
            Value::Number(Number::F64(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Serialize::to_content).collect()),
            Value::Object(m) => {
                Content::Map(m.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
            }
        }
    }
}

impl Deserialize for Value {
    fn from_content(c: Content) -> Result<Self, serde::DeError> {
        Ok(content_to_value(c))
    }
}

fn content_to_value(c: Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(b),
        Content::U64(v) => Value::Number(Number::U64(v)),
        Content::I64(v) => Value::Number(Number::I64(v)),
        Content::F64(v) => Value::Number(Number::F64(v)),
        Content::Str(s) => Value::String(s),
        Content::Seq(items) => Value::Array(items.into_iter().map(content_to_value).collect()),
        Content::Map(m) => Value::Object(
            m.into_iter()
                .map(|(k, v)| (k, content_to_value(v)))
                .collect(),
        ),
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(content_to_value(value.to_content()))
}

/// Builds [`Value`] trees from JSON-looking literals.
///
/// Supports the shapes the workspace uses: `null`, literals, expressions,
/// `[elem, ...]` arrays and `{"key": value, ...}` objects, nested
/// arbitrarily. Keys must be string literals. Values that are single token
/// trees (identifiers, literals, nested `{...}`/`[...]`) recurse through
/// `json!`; otherwise the whole object falls back to treating every value
/// as a serializable Rust expression — mixing a nested JSON literal and a
/// multi-token expression in one object is the one unsupported corner.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {{
        let mut __m = ::std::collections::BTreeMap::new();
        $( __m.insert(::std::string::String::from($key), $crate::json!($val)); )*
        $crate::Value::Object(__m)
    }};
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut __m = ::std::collections::BTreeMap::new();
        $( __m.insert(
            ::std::string::String::from($key),
            $crate::to_value(&$val).expect("json! expression serializes infallibly"),
        ); )*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! expression serializes infallibly")
    };
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        // Real serde_json serializes non-finite floats as null.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Match serde_json/ryu: integral floats keep a trailing ".0".
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Serializes a content tree. `pretty` is `Some(())` via `indent` depth
/// bookkeeping: `indent_mode == None` means compact.
fn write_content(c: &Content, out: &mut String, indent_mode: Option<()>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if indent_mode.is_some() {
                    out.push('\n');
                    write_indent(out, depth + 1);
                }
                write_content(item, out, indent_mode, depth + 1);
            }
            if indent_mode.is_some() {
                out.push('\n');
                write_indent(out, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if indent_mode.is_some() {
                    out.push('\n');
                    write_indent(out, depth + 1);
                }
                write_escaped(k, out);
                out.push(':');
                if indent_mode.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent_mode, depth + 1);
            }
            if indent_mode.is_some() {
                out.push('\n');
                write_indent(out, depth);
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(()), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::msg(format!("io error: {e}")))
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: impl Into<String>) -> Error {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error {
            msg: msg.into(),
            line,
            column: col,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{}`, found {}",
                b as char,
                self.peek()
                    .map(|c| format!("`{}`", c as char))
                    .unwrap_or_else(|| "end of input".to_owned())
            )))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Content, Error> {
        if depth > 128 {
            return Err(self.error("recursion limit exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.error("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(self.error("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.error(format!("unexpected character `{}`", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let mut code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pair handling for characters outside
                            // the BMP.
                            if (0xD800..0xDC00).contains(&code)
                                && self.bytes.get(self.pos + 1..self.pos + 3) == Some(&b"\\u"[..])
                            {
                                let lo_hex = self
                                    .bytes
                                    .get(self.pos + 3..self.pos + 7)
                                    .ok_or_else(|| self.error("truncated surrogate"))?;
                                let lo_hex = std::str::from_utf8(lo_hex)
                                    .map_err(|_| self.error("invalid surrogate"))?;
                                let lo = u32::from_str_radix(lo_hex, 16)
                                    .map_err(|_| self.error("invalid surrogate"))?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    self.pos += 6;
                                }
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("control character in string"));
                }
                Some(_) => {
                    // Consume the maximal run of plain characters in one
                    // slice. `"` (0x22) and `\` (0x5C) never occur as UTF-8
                    // continuation bytes, so a byte scan cannot split a
                    // multi-byte character, and the input arrived as a &str
                    // so the run is valid UTF-8. (A per-character
                    // `from_utf8(&bytes[pos..])` here would re-validate the
                    // whole remaining document per character — quadratic on
                    // key-heavy documents like serialized edge lists.)
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.error("invalid number"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let content = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    T::from_content(content).map_err(|e| Error::msg(e.to_string()))
}

/// Reads all of `reader` and parses it as JSON.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error::msg(format!("io error: {e}")))?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
        let pairs = vec![(1u32, 0.25f64)];
        let s = to_string(&pairs).unwrap();
        assert_eq!(s, "[[1,0.25]]");
        assert_eq!(from_str::<Vec<(u32, f64)>>(&s).unwrap(), pairs);
    }

    #[test]
    fn errors_carry_position() {
        let err = from_str::<Vec<u32>>("[1, x]").unwrap_err();
        assert!(err.line() >= 1);
        assert!(err.to_string().contains("line"));
        assert!(from_str::<Vec<u32>>("[1, 2] trailing").is_err());
        assert!(from_str::<u32>("{not json").is_err());
    }

    #[test]
    fn json_macro_builds_sorted_objects() {
        let weights = vec![0.5f64, 0.25];
        let doc = json!({
            "node_weights": weights,
            "edges": Vec::<u32>::new(),
        });
        let s = doc.to_string();
        // BTreeMap ordering: "edges" before "node_weights".
        assert_eq!(s, r#"{"edges":[],"node_weights":[0.5,0.25]}"#);
        let nested = json!({"a": [1, {"b": null}]});
        assert_eq!(nested.to_string(), r#"{"a":[1,{"b":null}]}"#);
    }

    #[test]
    fn pretty_printing_indents() {
        let doc = json!({"k": [1]});
        let pretty = to_string_pretty(&doc).unwrap();
        assert_eq!(pretty, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn value_accessors() {
        let v: Value = from_str(r#"{"n": 3, "s": "x", "a": [1.5]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[0].as_f64(),
            Some(1.5)
        );
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}

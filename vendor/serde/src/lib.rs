//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the real `serde` cannot
//! be fetched. This vendored replacement keeps serde's *user-facing* shape —
//! `#[derive(Serialize, Deserialize)]`, `serde::{Serialize, Deserialize}`
//! bounds, `#[serde(transparent)]`, `#[serde(default)]`,
//! `#[serde(skip_serializing_if = "...")]` — but swaps the streaming
//! serializer architecture for a simple tree model: every value serializes
//! to a [`Content`] tree, and deserializes from one. The companion vendored
//! `serde_json` turns `Content` trees into JSON text and back.
//!
//! The JSON data shapes produced are the same as real serde's defaults
//! (structs as maps in field order, unit enum variants as strings, struct
//! variants externally tagged, `Duration` as `{"secs", "nanos"}`), so files
//! written by a real-serde build parse under this one and vice versa.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialization tree: the data model every value maps to.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer (preferred for unsigned sources).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key/value map (struct fields keep declaration order).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// A short human description of the tree node, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds a "expected X, found Y" error.
    pub fn expected(what: &str, found: &Content) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves to a [`Content`] tree.
pub trait Serialize {
    /// Builds the tree for `self`.
    fn to_content(&self) -> Content;
}

/// Types that can reconstruct themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parses the tree into a value.
    fn from_content(c: Content) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(b),
            other => Err(DeError::expected("bool", &other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: Content) -> Result<Self, DeError> {
                match c {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    other => Err(DeError::expected("unsigned integer", &other)),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: Content) -> Result<Self, DeError> {
                let wide: i64 = match c {
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| DeError(format!("integer {v} out of range")))?,
                    Content::I64(v) => v,
                    other => return Err(DeError::expected("integer", &other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            other => Err(DeError::expected("number", &other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s),
            other => Err(DeError::expected("string", &other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string to obtain a `'static` lifetime. Real serde
    /// borrows from the input instead; the workspace only round-trips small
    /// tables of static labels, so the leak is bounded and acceptable for
    /// the offline stand-in.
    fn from_content(c: Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(Box::leak(s.into_boxed_str())),
            other => Err(DeError::expected("string", &other)),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            other => Err(DeError::expected("single-character string", &other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.into_iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", &other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) => {
                        let expect = [$($n),+].len();
                        if items.len() != expect {
                            return Err(DeError(format!(
                                "expected a sequence of {expect} elements, found {}",
                                items.len()
                            )));
                        }
                        let mut it = items.into_iter();
                        Ok(($($t::from_content(
                            it.next().unwrap_or(Content::Null)
                        )?,)+))
                    }
                    other => Err(DeError::expected("tuple sequence", &other)),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V>
where
    K: fmt::Display,
{
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_content()))
                .collect(),
        )
    }
}

impl Serialize for std::time::Duration {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("secs".to_owned(), Content::U64(self.as_secs())),
            (
                "nanos".to_owned(),
                Content::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_content(c: Content) -> Result<Self, DeError> {
        let mut m = match c {
            Content::Map(m) => m,
            other => return Err(DeError::expected("{secs, nanos} map", &other)),
        };
        let secs: u64 = take_field(&mut m, "secs")?;
        let nanos: u32 = take_field(&mut m, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

/// Removes `key` from a decoded map and deserializes it. Used by derived
/// `Deserialize` impls; a missing key is an error.
pub fn take_field<T: Deserialize>(m: &mut Vec<(String, Content)>, key: &str) -> Result<T, DeError> {
    match m.iter().position(|(k, _)| k == key) {
        Some(i) => T::from_content(m.remove(i).1),
        None => Err(DeError(format!("missing field `{key}`"))),
    }
}

/// Like [`take_field`], but a missing key yields `T::default()` — the
/// implementation of `#[serde(default)]`.
pub fn take_field_or_default<T: Deserialize + Default>(
    m: &mut Vec<(String, Content)>,
    key: &str,
) -> Result<T, DeError> {
    match m.iter().position(|(k, _)| k == key) {
        Some(i) => T::from_content(m.remove(i).1),
        None => Ok(T::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(17u32.to_content()), Ok(17));
        assert_eq!(i64::from_content((-3i64).to_content()), Ok(-3));
        assert_eq!(f64::from_content(0.5f64.to_content()), Ok(0.5));
        assert_eq!(bool::from_content(true.to_content()), Ok(true));
        assert_eq!(
            String::from_content("hé".to_owned().to_content()),
            Ok("hé".to_owned())
        );
    }

    #[test]
    fn options_use_null() {
        assert_eq!(Option::<u64>::from_content(Content::Null), Ok(None));
        assert_eq!(None::<u64>.to_content(), Content::Null);
        assert_eq!(Some(4u64).to_content(), Content::U64(4));
    }

    #[test]
    fn integer_range_errors() {
        assert!(u8::from_content(Content::U64(300)).is_err());
        assert!(u32::from_content(Content::Str("x".into())).is_err());
    }

    #[test]
    fn tuples_and_vecs() {
        let v = vec![(1u32, 2u32, 0.5f64)];
        let c = v.to_content();
        assert_eq!(Vec::<(u32, u32, f64)>::from_content(c), Ok(v));
    }

    #[test]
    fn duration_shape_matches_real_serde() {
        let d = std::time::Duration::new(3, 250);
        let c = d.to_content();
        assert_eq!(
            c,
            Content::Map(vec![
                ("secs".to_owned(), Content::U64(3)),
                ("nanos".to_owned(), Content::U64(250)),
            ])
        );
        assert_eq!(std::time::Duration::from_content(c), Ok(d));
    }
}

//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so the real `rayon` cannot
//! be fetched. This vendored replacement exposes the surface the workspace
//! uses — `prelude::*` parallel iterators over slices and a
//! `ThreadPoolBuilder`/`ThreadPool::install` pair — and executes everything
//! **sequentially** on the calling thread.
//!
//! Sequential execution is semantically safe here by design: the workspace's
//! parallel solver is required to be *bit-identical* to its sequential
//! counterpart (see `pcover-core::parallel`), so an order-preserving
//! sequential fallback produces exactly the same results, only without the
//! wall-clock speedup. Work-statistics instrumentation is unaffected because
//! it is keyed by chunk slot, not by OS thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// The rayon prelude: import to get `par_iter` and the iterator adapters.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSlice,
    };
}

/// An order-preserving "parallel" iterator, backed by a sequential one.
#[derive(Clone, Debug)]
pub struct ParIter<I> {
    inner: I,
}

/// Conversion into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Concrete iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

/// Conversion into a [`ParIter`] over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: 'a;
    /// Concrete iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

/// Conversion into a [`ParIter`] over mutable references.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type (a mutable reference).
    type Item: 'a;
    /// Concrete iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Mutably borrows `self` as a parallel iterator.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.iter_mut(),
        }
    }
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.as_mut_slice().iter_mut(),
        }
    }
}

/// Parallel chunking of slices.
pub trait ParallelSlice<T> {
    /// Iterates over contiguous chunks of at most `size` elements.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter {
            inner: self.chunks(size),
        }
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = std::ops::Range<usize>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.as_slice().iter(),
        }
    }
}

/// The adapter surface of rayon's `ParallelIterator`, mapped onto the
/// underlying sequential iterator. Order is always preserved.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item;
    /// The underlying sequential iterator.
    type Inner: Iterator<Item = Self::Item>;

    /// Unwraps to the sequential iterator.
    fn into_seq(self) -> Self::Inner;

    /// Maps each item.
    fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<Self::Inner, F>>
    where
        F: FnMut(Self::Item) -> R,
    {
        ParIter {
            inner: self.into_seq().map(f),
        }
    }

    /// Keeps items matching the predicate.
    fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<Self::Inner, F>>
    where
        F: FnMut(&Self::Item) -> bool,
    {
        ParIter {
            inner: self.into_seq().filter(f),
        }
    }

    /// Collects into any `FromIterator` collection (rayon's
    /// `FromParallelIterator` equivalent).
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_seq().collect()
    }

    /// Sums the items.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.into_seq().sum()
    }

    /// Counts the items.
    fn count(self) -> usize {
        self.into_seq().count()
    }

    /// Applies `f` to every item.
    fn for_each<F: FnMut(Self::Item)>(self, f: F) {
        self.into_seq().for_each(f)
    }

    /// Pairs each item with its index. (Rayon requires an indexed
    /// iterator here; the workspace only calls this on slices, which
    /// qualify. Order-preserving, like everything in the stand-in.)
    fn enumerate(self) -> ParIter<std::iter::Enumerate<Self::Inner>> {
        ParIter {
            inner: self.into_seq().enumerate(),
        }
    }

    /// Folds with `identity` per "thread" then reduces; sequential here, so
    /// it is a plain fold.
    fn reduce<ID, F>(self, identity: ID, op: F) -> Self::Item
    where
        ID: Fn() -> Self::Item,
        F: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.into_seq().fold(identity(), op)
    }

    /// Minimum by comparator (first minimum, as rayon guarantees for
    /// `min_by` on an ordered iterator).
    fn min_by<F>(self, f: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> std::cmp::Ordering,
    {
        self.into_seq().min_by(f)
    }

    /// Maximum by comparator.
    fn max_by<F>(self, f: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> std::cmp::Ordering,
    {
        self.into_seq().max_by(f)
    }
}

impl<I: Iterator> ParallelIterator for ParIter<I> {
    type Item = I::Item;
    type Inner = I;
    fn into_seq(self) -> I {
        self.inner
    }
}

/// Error from [`ThreadPoolBuilder::build`]. The sequential stand-in can
/// never fail to build, so this is uninhabited in practice.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Clone, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a default builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the requested worker count (advisory only: execution is
    /// sequential).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in the sequential stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                1
            } else {
                self.num_threads
            },
        })
    }
}

/// A "thread pool" that runs closures on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Number of workers the pool was configured with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` "inside" the pool: sequentially, on the calling thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v = vec![3usize, 1, 4, 1, 5];
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
    }

    #[test]
    fn pool_install_runs_closure() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        let out = pool.install(|| (0..10usize).into_par_iter().sum::<usize>());
        assert_eq!(out, 45);
    }

    #[test]
    fn par_iter_mut_enumerate_mutates_in_place() {
        let mut v = vec![0usize; 4];
        v.as_mut_slice()
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i * 10);
        assert_eq!(v, vec![0, 10, 20, 30]);
    }

    #[test]
    fn filter_and_reduce() {
        let v = vec![1u64, 2, 3, 4, 5, 6];
        let evens: Vec<u64> = v.par_iter().filter(|&&x| x % 2 == 0).map(|&x| x).collect();
        assert_eq!(evens, vec![2, 4, 6]);
        let total = v.into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 21);
    }
}

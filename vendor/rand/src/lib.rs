//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched. This vendored replacement implements exactly the surface the
//! workspace uses — `rngs::StdRng`, `SeedableRng::seed_from_u64`, the
//! `Rng`/`RngExt` traits with `random`/`random_range`/`random_bool`, and
//! `seq::index::sample` — on top of a deterministic xoshiro256++ generator.
//!
//! Determinism contract: every draw is a pure function of the seed, which is
//! all the workspace's tests and data generators rely on. The streams do NOT
//! match the real `rand` crate's output for the same seed; nothing in the
//! workspace depends on cross-crate stream equality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker trait for full random generators, used in generic bounds
/// (`R: Rng + ?Sized`). All word sources qualify.
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// range, `bool` fair coin).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, matching the real `rand`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Seeding interface: construct a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded by expanding the `u64` seed through SplitMix64 (the seeding
    /// scheme recommended by the xoshiro authors).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zero words from any seed, but stay defensive.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn from their "standard" distribution via
/// [`RngExt::random`].
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// Sequence-related sampling.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::{RngCore, RngExt};

        /// A set of distinct indices in `0..length`, in selection order.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> std::slice::Iter<'_, usize> {
                self.0.iter()
            }

            /// Consumes into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// using Floyd's algorithm; the result order is the selection order.
        ///
        /// Panics if `amount > length`, matching the real `rand`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from a pool of {length}"
            );
            let mut chosen: Vec<usize> = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = rng.random_range(0..=j);
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            IndexVec(chosen)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.random_range(5..=5u64);
            assert_eq!(w, 5);
            let f = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let s = rng.random_range(-4..=4i64);
            assert!((-4..=4).contains(&s));
        }
    }

    #[test]
    fn sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let picks = sample(&mut rng, 20, 10).into_vec();
        assert_eq!(picks.len(), 10);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "duplicates in {picks:?}");
        assert!(picks.iter().all(|&i| i < 20));
        let all = sample(&mut rng, 5, 5).into_vec();
        let mut all_sorted = all.clone();
        all_sorted.sort_unstable();
        assert_eq!(all_sorted, vec![0, 1, 2, 3, 4]);
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This vendored replacement keeps the property-test
//! *surface* the workspace uses — the [`proptest!`] macro with
//! `#![proptest_config(...)]`, `Strategy` with `prop_map`/`prop_flat_map`,
//! `Just`, ranges and tuples as strategies, `any::<T>()`,
//! `collection::vec`, `\PC{lo,hi}` string patterns, and the
//! `prop_assert*`/`prop_assume!` macros — while simplifying the machinery:
//!
//! * cases are generated from a deterministic per-test seed (FNV-1a of the
//!   test name), so every run explores the same inputs and CI is stable;
//! * failing cases are **not shrunk** — the panic message reports the case
//!   number so the failure is reproducible by construction;
//! * no regression-file persistence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{RngCore, RngExt, SampleRange, SeedableRng};

/// The RNG driving case generation.
pub type TestRng = rand::rngs::StdRng;

/// Seeds the per-test RNG from the test's name (FNV-1a 64-bit).
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// Runtime configuration for a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from every generated value and draws from
    /// it: dependent generation.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; gives up (panics) after 1000
    /// consecutive rejections, like real proptest's filter exhaustion.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 rejections: {}", self.whence);
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// `&str` patterns as string strategies. Supports exactly the shape the
/// workspace uses — `\PC{lo,hi}`: a string of `lo..=hi` printable
/// (non-control) characters, drawn from a pool mixing ASCII with multi-byte
/// code points to stress UTF-8 handling. Other regexes are rejected loudly.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '1', '9', ' ', ',', ';', ':', '"', '\\', '\'', '{', '}',
            '[', ']', '(', ')', '.', '-', '_', '/', '#', '!', '?', '=', '+', '*', '&', 'é', 'ß',
            '中', '😀', '\u{2028}',
        ];
        let (lo, hi) = self
            .strip_prefix("\\PC{")
            .and_then(|rest| rest.strip_suffix('}'))
            .and_then(|body| body.split_once(','))
            .and_then(|(lo, hi)| Some((lo.parse::<usize>().ok()?, hi.parse::<usize>().ok()?)))
            .unwrap_or_else(|| {
                panic!(
                    "vendored proptest only supports \\PC{{lo,hi}} string patterns, got {self:?}"
                )
            });
        let len = rng.random_range(lo..=hi);
        (0..len)
            .map(|_| POOL[rng.random_range(0..POOL.len())])
            .collect()
    }
}

/// Types with a default "anything" strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite floats of wildly varying magnitude and sign (mirroring real
    /// proptest's default, which also excludes NaN and infinities).
    fn arbitrary(rng: &mut TestRng) -> Self {
        loop {
            let candidate = f64::from_bits(rng.next_u64());
            if candidate.is_finite() {
                return candidate;
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T`: unconstrained values.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length.
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The common imports: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Why a single generated case did not pass: either its precondition failed
/// (`Reject`, the case is skipped) or an assertion failed (`Fail`, the test
/// panics). Helper functions called from [`proptest!`] bodies can return
/// `Result<(), TestCaseError>` and use `?` to propagate either outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's precondition did not hold; skip it without failing.
    Reject(String),
    /// The case violated the property under test.
    Fail(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(why) => write!(f, "case rejected: {why}"),
            TestCaseError::Fail(why) => write!(f, "case failed: {why}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Asserts a condition inside a property; accepts `format!`-style context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// Skips the current case when its precondition does not hold. Expands to
/// an early `return Err(TestCaseError::Reject(..))`, so it works both
/// directly inside a [`proptest!`] body (which runs in a closure returning
/// `Result<(), TestCaseError>`) and in helper functions with that return
/// type.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    // Each case runs in a closure returning
                    // Result<(), TestCaseError> so bodies can use `?` on
                    // helpers and prop_assume! can early-return a Reject
                    // (which skips the case). Cases are deterministic, so a
                    // failing case is reconstructible from the test name.
                    let _ = __case;
                    // The immediately-invoked closure is the point: it gives
                    // `$body` a `?`-compatible scope without a helper fn.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__why)) => {
                            panic!("property failed: {}", __why)
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rng_for_test;

    #[test]
    fn deterministic_given_name() {
        let mut a = rng_for_test("x");
        let mut b = rng_for_test("x");
        let sa: Vec<u64> = (0..5)
            .map(|_| Strategy::generate(&(0u64..100), &mut a))
            .collect();
        let sb: Vec<u64> = (0..5)
            .map(|_| Strategy::generate(&(0u64..100), &mut b))
            .collect();
        assert_eq!(sa, sb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 1u32..10, (a, b) in (0usize..4, 0.5f64..1.0)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((0.5..1.0).contains(&b), "b = {}", b);
        }

        #[test]
        fn flat_map_vec_sizes(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn helper_with_question_mark(n in 0u32..10) {
            fn helper(n: u32) -> Result<(), crate::TestCaseError> {
                prop_assume!(n > 0);
                prop_assert!(n < 10);
                Ok(())
            }
            helper(n)?;
        }

        #[test]
        fn string_pattern(s in "\\PC{0,20}") {
            prop_assert!(s.chars().count() <= 20);
            prop_assert!(s.chars().all(|c| c != '\u{0}'));
        }

        #[test]
        fn mapped_just(v in Just(7u8).prop_map(|x| x + 1)) {
            prop_assert_eq!(v, 8);
        }
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored serde's `Serialize`/`Deserialize` (a tree-model
//! pair of traits, see `vendor/serde`) for the item shapes this workspace
//! actually uses:
//!
//! * structs with named fields (maps in declaration order),
//! * newtype / `#[serde(transparent)]` tuple structs (delegate to inner),
//! * tuple structs of arity ≥ 2 (sequences),
//! * enums with unit variants (strings) and struct variants (externally
//!   tagged maps), matching real serde's default representation.
//!
//! Field attributes understood: `#[serde(default)]` and
//! `#[serde(skip_serializing_if = "path")]`. Container attribute:
//! `#[serde(transparent)]`. Anything else — generics, tuple enum variants,
//! unknown serde attributes — produces a `compile_error!` naming the gap,
//! so unsupported shapes fail loudly at compile time rather than silently
//! misbehaving at run time.
//!
//! `syn`/`quote` are unavailable offline, so parsing walks the raw
//! `proc_macro::TokenStream`; code generation builds a source string and
//! re-parses it.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

#[derive(Default)]
struct FieldAttrs {
    default: bool,
    skip_serializing_if: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum Shape {
    Named(Vec<Field>),
    /// Tuple struct; `usize` is the arity. Arity 1 (and `transparent`)
    /// delegates to the inner value, larger arities map to sequences.
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal")
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match parse_item(&tokens) {
        Ok((name, shape)) => {
            let code = match which {
                Trait::Serialize => gen_serialize(&name, &shape),
                Trait::Deserialize => gen_deserialize(&name, &shape),
            };
            match code.parse() {
                Ok(ts) => ts,
                Err(e) => compile_error(&format!(
                    "serde_derive (vendored): generated code failed to parse: {e}"
                )),
            }
        }
        Err(msg) => compile_error(&msg),
    }
}

/// Consumes leading attributes starting at `*i`, recording serde flags.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize, attrs: &mut FieldAttrs) -> Result<(), String> {
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                parse_attr_body(g.stream(), attrs)?;
                *i += 2;
            }
            _ => return Ok(()),
        }
    }
}

/// Parses the inside of one `#[...]`; non-serde attributes are ignored.
fn parse_attr_body(body: TokenStream, attrs: &mut FieldAttrs) -> Result<(), String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(g)))
            if name.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            parse_serde_args(g.stream(), attrs)
        }
        _ => Ok(()),
    }
}

/// Parses `default`, `transparent`, `skip_serializing_if = "path"` lists.
/// `transparent` is recorded by reusing the `default` slot on a container
/// sentinel — see `parse_item`, which passes a dedicated accumulator.
fn parse_serde_args(args: TokenStream, attrs: &mut FieldAttrs) -> Result<(), String> {
    let toks: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let key = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("unsupported serde attribute token `{other}`")),
        };
        i += 1;
        let mut value: Option<String> = None;
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == '=' {
                i += 1;
                match toks.get(i) {
                    Some(TokenTree::Literal(lit)) => {
                        let raw = lit.to_string();
                        value = Some(raw.trim_matches('"').to_owned());
                        i += 1;
                    }
                    other => {
                        return Err(format!(
                            "expected string literal after `{key} =`, found {other:?}"
                        ))
                    }
                }
            }
        }
        match (key.as_str(), value) {
            ("default", None) => attrs.default = true,
            ("transparent", None) => attrs.default = true,
            ("skip_serializing_if", Some(path)) => attrs.skip_serializing_if = Some(path),
            (other, _) => {
                return Err(format!(
                    "vendored serde_derive does not support `#[serde({other}...)]`"
                ))
            }
        }
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    Ok(())
}

/// Skips an optional `pub` / `pub(...)` visibility at `*i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(tokens: &[TokenTree]) -> Result<(String, Shape), String> {
    let mut i = 0;
    let mut container = FieldAttrs::default();
    skip_attrs(tokens, &mut i, &mut container)?;
    let transparent = container.default;
    skip_visibility(tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok((name, Shape::Named(fields)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                let arity = if transparent { 1 } else { arity };
                Ok((name, Shape::Tuple(arity)))
            }
            _ => Err(format!(
                "vendored serde_derive does not support unit struct `{name}`"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok((name, Shape::Enum(variants)))
            }
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

/// Parses `name: Type, ...` named-field lists, capturing serde attributes.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let mut attrs = FieldAttrs::default();
        skip_attrs(&toks, &mut i, &mut attrs)?;
        if i >= toks.len() {
            break;
        }
        skip_visibility(&toks, &mut i);
        let fname = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{fname}`, found {other:?}"
                ))
            }
        }
        skip_type(&toks, &mut i);
        fields.push(Field { name: fname, attrs });
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    Ok(fields)
}

/// Advances past one type, stopping at a top-level (angle-depth 0) comma.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts tuple-struct fields (top-level commas + 1).
fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        // Each skip_type advances to a top-level comma or the end.
        let mut attrs = FieldAttrs::default();
        let _ = skip_attrs(&toks, &mut i, &mut attrs);
        let mut j = i;
        skip_visibility(&toks, &mut j);
        i = j;
        skip_type(&toks, &mut i);
        count += 1;
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let mut attrs = FieldAttrs::default();
        skip_attrs(&toks, &mut i, &mut attrs)?;
        if i >= toks.len() {
            break;
        }
        let vname = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "vendored serde_derive does not support tuple enum variant `{vname}`"
                ));
            }
            _ => None,
        };
        variants.push(Variant {
            name: vname,
            fields,
        });
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    Ok(variants)
}

fn push_field_ser(out: &mut String, field: &Field, access: &str) {
    let n = &field.name;
    if let Some(skip) = &field.attrs.skip_serializing_if {
        out.push_str(&format!(
            "if !({skip})(&{access}{n}) {{ \
             __m.push((::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_content(&{access}{n}))); }}\n"
        ));
    } else {
        out.push_str(&format!(
            "__m.push((::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_content(&{access}{n})));\n"
        ));
    }
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let mut b = String::from(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                push_field_ser(&mut b, f, "self.");
            }
            b.push_str("::serde::Content::Map(__m)\n");
            b
        }
        Shape::Tuple(1) => "::serde::Serialize::to_content(&self.0)\n".to_owned(),
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])\n", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Some(fields) => {
                        let bind: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from(
                            "let mut __m: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Content)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            // Bindings from the match arm are references.
                            let n = &f.name;
                            if let Some(skip) = &f.attrs.skip_serializing_if {
                                inner.push_str(&format!(
                                    "if !({skip})({n}) {{ \
                                     __m.push((::std::string::String::from(\"{n}\"), \
                                     ::serde::Serialize::to_content({n}))); }}\n"
                                ));
                            } else {
                                inner.push_str(&format!(
                                    "__m.push((::std::string::String::from(\"{n}\"), \
                                     ::serde::Serialize::to_content({n})));\n"
                                ));
                            }
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                             ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Content::Map(__m))])\n}}\n",
                            binds = bind.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}}}\n}}\n"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                let n = &f.name;
                let take = if f.attrs.default {
                    "take_field_or_default"
                } else {
                    "take_field"
                };
                inits.push_str(&format!("{n}: ::serde::{take}(&mut __m, \"{n}\")?,\n"));
            }
            format!(
                "let mut __m = match __c {{\n\
                 ::serde::Content::Map(m) => m,\n\
                 other => return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"map for struct {name}\", &other)),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n"
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))\n")
        }
        Shape::Tuple(arity) => {
            let mut elems = String::new();
            for _ in 0..*arity {
                elems.push_str(
                    "::serde::Deserialize::from_content(\
                     __it.next().unwrap_or(::serde::Content::Null))?,\n",
                );
            }
            format!(
                "let __items = match __c {{\n\
                 ::serde::Content::Seq(v) => v,\n\
                 other => return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"sequence for tuple struct {name}\", &other)),\n\
                 }};\n\
                 if __items.len() != {arity} {{\n\
                 return ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"expected {arity} elements for {name}, found {{}}\", __items.len())));\n\
                 }}\n\
                 let mut __it = __items.into_iter();\n\
                 ::std::result::Result::Ok({name}({elems}))\n"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    None => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Some(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let n = &f.name;
                            let take = if f.attrs.default {
                                "take_field_or_default"
                            } else {
                                "take_field"
                            };
                            inits.push_str(&format!("{n}: ::serde::{take}(&mut __m, \"{n}\")?,\n"));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let mut __m = match __inner {{\n\
                             ::serde::Content::Map(m) => m,\n\
                             other => return ::std::result::Result::Err(\
                             ::serde::DeError::expected(\
                             \"map for variant {vn} of {name}\", &other)),\n\
                             }};\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(mut __outer) => {{\n\
                 if __outer.len() != 1 {{\n\
                 return ::std::result::Result::Err(::serde::DeError(\
                 ::std::string::String::from(\
                 \"expected single-key map for enum {name}\")));\n\
                 }}\n\
                 let (__tag, __inner) = __outer.remove(0);\n\
                 let _ = &__inner;\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }}\n\
                 other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"enum {name}\", &other)),\n\
                 }}\n"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: ::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}}}\n}}\n"
    )
}

//! Workspace integration tests for the beyond-paper extensions, exercised
//! together on realistic generated data.

#![allow(clippy::unwrap_used)] // integration tests: panicking on setup failure is the right behavior

use preference_cover::graph::components::weakly_connected_components;
use preference_cover::graph::delta::{apply, Change, GraphDelta};
use preference_cover::prelude::*;
use preference_cover::solver::extensions::markov::{
    greedy_assortment, MarkovChoiceModel, MarkovOptions,
};
use preference_cover::solver::extensions::quota::{self, CategoryQuotas};
use preference_cover::solver::extensions::{incremental, revenue};
use preference_cover::solver::partitioned;

fn adapted_yc(seed: u64) -> Adapted {
    let (catalog_cfg, session_cfg) = DatasetProfile::YC.configs(Scale::Fraction(0.01), seed);
    let (_, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);
    adapt(
        &sessions,
        &AdaptOptions {
            variant: Variant::Independent,
            label_nodes: false,
            min_edge_support: 1,
        },
    )
    .unwrap()
}

#[test]
fn partitioned_solver_exploits_real_component_structure() {
    let adapted = adapted_yc(21);
    let g = &adapted.graph;
    let components = weakly_connected_components(g);
    // Category-local substitution yields many genuine islands.
    assert!(
        components.count > g.node_count() / 50,
        "expected many components, got {}",
        components.count
    );
    let k = g.node_count() / 10;
    let part = partitioned::solve::<Independent>(g, k).unwrap();
    let lz = lazy::solve::<Independent>(g, k).unwrap();
    assert!((part.cover - lz.cover).abs() < 1e-9);
}

#[test]
fn quota_constraints_on_generated_catalog() {
    let (catalog_cfg, session_cfg) = DatasetProfile::PM.configs(Scale::Fraction(0.003), 5);
    let (catalog, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);
    let adapted = adapt(
        &sessions,
        &AdaptOptions {
            variant: Variant::Normalized,
            label_nodes: false,
            min_edge_support: 1,
        },
    )
    .unwrap();
    let g = &adapted.graph;

    // Map graph nodes back to generator categories.
    let category_of: Vec<u32> = adapted
        .external_ids
        .iter()
        .map(|&ext| catalog.category_of[ext as usize])
        .collect();
    let n_categories = catalog.categories.len();
    let mut quotas = CategoryQuotas::unconstrained(category_of.clone(), n_categories);
    // At most 2 per category: breadth-enforced assortment.
    for m in &mut quotas.max_per_category {
        *m = 2;
    }
    let k = (g.node_count() / 20).min(2 * n_categories);
    let constrained = quota::solve::<Normalized>(g, k, &quotas).unwrap();
    let free = lazy::solve::<Normalized>(g, k).unwrap();
    // Constraint respected...
    let mut counts = vec![0usize; n_categories];
    for &v in &constrained.order {
        counts[category_of[v.index()] as usize] += 1;
    }
    assert!(counts.iter().all(|&c| c <= 2));
    // ...at a bounded price.
    assert!(constrained.cover <= free.cover + 1e-9);
    assert!(constrained.cover >= 0.5 * free.cover);
}

#[test]
fn delta_then_repair_lifecycle() {
    let adapted = adapted_yc(33);
    let g1 = adapted.graph;
    let k = g1.node_count() / 10;
    let initial = lazy::solve::<Independent>(&g1, k).unwrap();

    // Demand collapse for the top retained item.
    let delta = GraphDelta::new().push(Change::SetNodeWeight {
        node: initial.order[0],
        weight: 0.0,
    });
    let g2 = apply(&g1, &delta).unwrap();

    let repaired = incremental::repair::<Independent>(&g2, &initial.order, 2).unwrap();
    assert!(repaired.report.cover >= repaired.stale_cover - 1e-12);
    assert!(repaired.churn() <= 2);
}

#[test]
fn revenue_weighting_changes_priorities_consistently() {
    let adapted = adapted_yc(44);
    let g = &adapted.graph;
    let n = g.node_count();
    let k = n / 20;
    // Double-revenue on odd ids.
    let revenues: Vec<f64> = (0..n).map(|i| if i % 2 == 1 { 2.0 } else { 1.0 }).collect();
    let rev = revenue::solve::<Independent>(g, &revenues, k).unwrap();
    let plain = lazy::solve::<Independent>(g, k).unwrap();
    // Revenue solution must earn at least as much revenue as the
    // sales-count solution.
    let plain_revenue: f64 = plain
        .item_cover
        .iter()
        .enumerate()
        .map(|(i, &ic)| ic * revenues[i])
        .sum();
    let rev_revenue = rev.expected_revenue_per_request();
    assert!(
        rev_revenue >= plain_revenue - 1e-9,
        "revenue-optimized {rev_revenue} < plain {plain_revenue}"
    );
}

#[test]
fn markov_model_on_adapted_graph() {
    // Normalized-adapted graphs are substochastic, so they are valid
    // Markov chains; values must bracket sensibly.
    // Keep the instance small: each MC gain evaluation solves a linear
    // system, which is slow in debug builds.
    let (catalog_cfg, session_cfg) = DatasetProfile::PM.configs(Scale::Fraction(0.001), 9);
    let (_, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);
    let adapted = adapt(
        &sessions,
        &AdaptOptions {
            variant: Variant::Normalized,
            label_nodes: false,
            min_edge_support: 1,
        },
    )
    .unwrap();
    let sub = preference_cover::graph::transform::top_n_by_weight(&adapted.graph, 120).unwrap();
    let g = &sub.graph;
    let model = MarkovChoiceModel::from_graph(g).unwrap();
    let k = 8;
    let mc = greedy_assortment(&model, k, &MarkovOptions::default()).unwrap();
    let one_hop = greedy::solve::<Normalized>(g, k).unwrap();
    let one_hop_mc = model.assortment_value_of(&one_hop.order, &MarkovOptions::default());
    // The one-hop solution, evaluated under the chain, is close to the
    // chain-greedy solution and at least its own one-hop value.
    assert!(one_hop_mc >= one_hop.cover - 1e-9, "chains only add cover");
    assert!(one_hop_mc >= 0.9 * mc.cover, "{one_hop_mc} vs {}", mc.cover);
    assert!(mc.cover <= 1.0 + 1e-9);
}

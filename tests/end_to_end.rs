//! Full-pipeline integration tests: generate → diagnose → adapt → solve →
//! minimize, across profiles and variants.

#![allow(clippy::unwrap_used)] // integration tests: panicking on setup failure is the right behavior

use preference_cover::prelude::*;
use preference_cover::solver::minimize;

fn pipeline(profile: DatasetProfile, seed: u64) -> (Clickstream, Adapted) {
    let (catalog_cfg, session_cfg) = profile.configs(Scale::Fraction(0.003), seed);
    let (_, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);
    let variant = match profile {
        DatasetProfile::PM => Variant::Normalized,
        _ => Variant::Independent,
    };
    let adapted = adapt(
        &sessions,
        &AdaptOptions {
            variant,
            label_nodes: false,
            min_edge_support: 1,
        },
    )
    .unwrap();
    (sessions, adapted)
}

#[test]
fn independent_profiles_diagnose_independent() {
    for (profile, seed) in [
        (DatasetProfile::PE, 1),
        (DatasetProfile::PF, 2),
        (DatasetProfile::YC, 3),
    ] {
        let (sessions, _) = pipeline(profile, seed);
        let d = diagnose(&sessions, &DiagnosticThresholds::default());
        assert_eq!(
            d.recommendation,
            Recommendation::Independent,
            "{}: {:?}",
            profile.name(),
            d
        );
    }
}

#[test]
fn pm_profile_diagnoses_normalized() {
    let (sessions, adapted) = pipeline(DatasetProfile::PM, 4);
    let d = diagnose(&sessions, &DiagnosticThresholds::default());
    assert_eq!(d.recommendation, Recommendation::Normalized, "{d:?}");
    // And the adapted graph satisfies the Normalized invariant everywhere.
    for v in adapted.graph.node_ids() {
        assert!(adapted.graph.out_weight_sum(v) <= 1.0 + 1e-9);
    }
}

#[test]
fn greedy_beats_baselines_on_generated_data() {
    let (_, adapted) = pipeline(DatasetProfile::YC, 5);
    let g = &adapted.graph;
    let k = g.node_count() / 10;
    let gr = lazy::solve::<Independent>(g, k).unwrap();
    let tw = baselines::top_k_weight::<Independent>(g, k).unwrap();
    let tc = baselines::top_k_coverage::<Independent>(g, k).unwrap();
    let rnd = baselines::random_best_of::<Independent>(g, k, 6, 10).unwrap();
    assert!(
        gr.cover > tw.cover,
        "greedy {} vs TopK-W {}",
        gr.cover,
        tw.cover
    );
    assert!(
        gr.cover > tc.cover,
        "greedy {} vs TopK-C {}",
        gr.cover,
        tc.cover
    );
    assert!(
        gr.cover > rnd.cover,
        "greedy {} vs Random {}",
        gr.cover,
        rnd.cover
    );
    // Random, ignoring popularity entirely, does far worse (Figure 4c).
    assert!(rnd.cover < 0.8 * gr.cover);
}

#[test]
fn solver_family_agrees_on_adapted_graphs() {
    let (_, adapted) = pipeline(DatasetProfile::PE, 7);
    let g = &adapted.graph;
    let k = 50;
    let plain = greedy::solve::<Independent>(g, k).unwrap();
    let lz = lazy::solve::<Independent>(g, k).unwrap();
    let (par, stats) = parallel::solve::<Independent>(g, k, 4).unwrap();
    assert_eq!(plain.order, par.order);
    assert!((plain.cover - lz.cover).abs() < 1e-9);
    assert!((plain.cover - par.cover).abs() < 1e-12);
    assert!(stats.balance() > 0.0);
    // Lazy does dramatically less work at this scale.
    assert!(lz.gain_evaluations * 5 < plain.gain_evaluations);
}

#[test]
fn minimization_consistent_with_maximization() {
    let (_, adapted) = pipeline(DatasetProfile::PM, 8);
    let g = &adapted.graph;
    let threshold = 0.7;
    let min = minimize::greedy_min_cover::<Normalized>(g, threshold).unwrap();
    assert!(min.report.cover >= threshold);
    // Solving the maximization at the found size reaches the threshold;
    // one item fewer does not (greedy-order minimality).
    let k = min.set_size();
    let max_at_k = lazy::solve::<Normalized>(g, k).unwrap();
    assert!(max_at_k.cover >= threshold - 1e-9);
    if k > 1 {
        let max_below = lazy::solve::<Normalized>(g, k - 1).unwrap();
        assert!(max_below.cover < threshold);
    }
}

#[test]
fn coverage_report_is_consistent() {
    let (_, adapted) = pipeline(DatasetProfile::PF, 9);
    let g = &adapted.graph;
    let r = lazy::solve::<Independent>(g, g.node_count() / 20).unwrap();
    // I-array sums to the cover.
    let sum: f64 = r.item_cover.iter().sum();
    assert!((sum - r.cover).abs() < 1e-6);
    // Retained items are fully covered; everything is in [0, 1].
    for v in g.node_ids() {
        let c = r.coverage_of(g, v);
        assert!((0.0..=1.0 + 1e-9).contains(&c));
    }
    for &v in &r.order {
        assert!((r.coverage_of(g, v) - 1.0).abs() < 1e-9);
    }
}

#[test]
fn external_id_mapping_roundtrips() {
    let (sessions, adapted) = pipeline(DatasetProfile::YC, 10);
    // Every purchased item resolves to a node whose weight reflects its
    // purchase share.
    let counts = sessions.item_purchase_counts();
    let total = sessions.len() as f64;
    for (&ext, &count) in counts.iter().take(100) {
        let v = adapted.node_of(ext).expect("every item becomes a node");
        let expected = count as f64 / total;
        assert!(
            (adapted.graph.node_weight(v) - expected).abs() < 1e-12,
            "item {ext}"
        );
    }
}

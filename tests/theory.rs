//! Theory cross-checks at the workspace level: the reductions of Theorems
//! 3.1 and 4.1 against the actual solvers, on realistic generated graphs.

#![allow(clippy::unwrap_used)] // integration tests: panicking on setup failure is the right behavior

use preference_cover::graph::reduction::{dsk_to_ipc, npc_to_vck, DsInstance};
use preference_cover::prelude::*;
use preference_cover::solver::brute_force::{self, BruteForceOptions};
use preference_cover::solver::{cover_value, maxvc};

#[test]
fn npc_greedy_equals_vck_greedy_on_generated_graphs() {
    for seed in 0..5 {
        let g = generate_graph(&GraphGenConfig {
            nodes: 60,
            avg_out_degree: 3,
            normalized: true,
            seed,
            ..GraphGenConfig::default()
        })
        .unwrap();
        for k in [1, 5, 20] {
            maxvc::verify_equivalence(&g, k).unwrap_or_else(|e| {
                panic!("seed {seed}, k {k}: {e}");
            });
        }
    }
}

#[test]
fn npc_cover_equals_vck_cover_for_arbitrary_sets() {
    let g = generate_graph(&GraphGenConfig {
        nodes: 40,
        normalized: true,
        seed: 11,
        ..GraphGenConfig::default()
    })
    .unwrap();
    let inst = npc_to_vck(&g).unwrap();
    // A spread of deterministic pseudo-random selections.
    for salt in 0..20u32 {
        let mask: Vec<bool> = (0..g.node_count())
            .map(|i| (i as u32).wrapping_mul(2654435761).wrapping_add(salt) % 3 == 0)
            .collect();
        let npc = cover_value::<Normalized>(&g, &mask);
        let vc = inst.cover_weight(&mask);
        assert!((npc - vc).abs() < 1e-9, "salt {salt}: {npc} vs {vc}");
    }
}

#[test]
fn dsk_reduction_scales_domination_by_n() {
    // Build a random DS instance, reduce to IPC, compare objectives over
    // all singleton and pair selections.
    let n = 12usize;
    let edges: Vec<(ItemId, ItemId)> = (0..n as u32)
        .flat_map(|i| {
            [(i, (i * 7 + 3) % 12), (i, (i * 5 + 1) % 12)]
                .into_iter()
                .filter(|(a, b)| a != b)
                .map(|(a, b)| (ItemId::new(a), ItemId::new(b)))
                .collect::<Vec<_>>()
        })
        .collect();
    let inst = DsInstance { n, edges };
    let g = dsk_to_ipc(&inst).unwrap();

    for i in 0..n {
        for j in i..n {
            let sel: Vec<ItemId> = if i == j {
                vec![ItemId::from_index(i)]
            } else {
                vec![ItemId::from_index(i), ItemId::from_index(j)]
            };
            let dominated = inst.dominated_count_of(&sel);
            let mut mask = vec![false; n];
            for &v in &sel {
                mask[v.index()] = true;
            }
            let cover = cover_value::<Independent>(&g, &mask);
            assert!(
                (cover * n as f64 - dominated as f64).abs() < 1e-9,
                "selection {sel:?}: n*C = {} vs dominated = {dominated}",
                cover * n as f64
            );
        }
    }
}

#[test]
fn greedy_respects_both_variant_bounds_on_generated_graphs() {
    for seed in 20..24 {
        let g = generate_graph(&GraphGenConfig {
            nodes: 14,
            avg_out_degree: 3,
            normalized: true,
            seed,
            ..GraphGenConfig::default()
        })
        .unwrap();
        let n = g.node_count();
        for k in [2, n / 2, (3 * n) / 4] {
            let bf_i =
                brute_force::solve::<Independent>(&g, k, &BruteForceOptions::default()).unwrap();
            let gr_i = greedy::solve::<Independent>(&g, k).unwrap();
            assert!(
                gr_i.cover >= (1.0 - 1.0 / std::f64::consts::E) * bf_i.cover - 1e-9,
                "seed {seed} k {k} independent"
            );

            let bf_n =
                brute_force::solve::<Normalized>(&g, k, &BruteForceOptions::default()).unwrap();
            let gr_n = greedy::solve::<Normalized>(&g, k).unwrap();
            let bound = preference_cover::solver::bounds::greedy_ratio_npc(k as f64 / n as f64);
            assert!(
                gr_n.cover >= bound * bf_n.cover - 1e-9,
                "seed {seed} k {k} normalized: {} < {} * {}",
                gr_n.cover,
                bound,
                bf_n.cover
            );
        }
    }
}

//! Cross-format persistence: a graph survives every serialization format
//! with solve-identical results, and reports survive JSON.

#![allow(clippy::unwrap_used)] // integration tests: panicking on setup failure is the right behavior

use preference_cover::graph::io::{binary, csv, json, LoadOptions};
use preference_cover::prelude::*;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pcover-persistence").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_graph() -> PreferenceGraph {
    generate_graph(&GraphGenConfig {
        nodes: 400,
        avg_out_degree: 4,
        seed: 77,
        ..GraphGenConfig::default()
    })
    .unwrap()
}

#[test]
fn solve_results_identical_across_formats() {
    let g = test_graph();
    let reference = lazy::solve::<Independent>(&g, 40).unwrap();

    let dir = tmpdir("formats");
    let json_path = dir.join("g.json");
    let bin_path = dir.join("g.pcg");
    let csv_dir = dir.join("csv");
    json::write_json(&g, &json_path).unwrap();
    binary::write_binary(&g, &bin_path).unwrap();
    csv::write_csv(&g, &csv_dir).unwrap();

    let opts = LoadOptions::default();
    for (label, loaded) in [
        ("json", json::read_json(&json_path, &opts).unwrap()),
        ("binary", binary::read_binary(&bin_path, &opts).unwrap()),
        ("csv", csv::read_csv(&csv_dir, &opts).unwrap()),
    ] {
        assert_eq!(loaded, g, "{label} roundtrip changed the graph");
        let r = lazy::solve::<Independent>(&loaded, 40).unwrap();
        assert_eq!(r.order, reference.order, "{label} changed the solution");
        assert!((r.cover - reference.cover).abs() < 1e-12);
    }
}

#[test]
fn solve_report_json_roundtrip() {
    let g = test_graph();
    let r = greedy::solve::<Normalized>(&g, 10).unwrap();
    let json = serde_json::to_string(&r).unwrap();
    let back: SolveReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.order, r.order);
    assert_eq!(back.trajectory, r.trajectory);
    // Bit-exact: JSON roundtrip of an f64 must be lossless.
    assert_eq!(back.cover.to_bits(), r.cover.to_bits());
    assert_eq!(back.variant, r.variant);
}

#[test]
fn clickstream_jsonl_roundtrip_preserves_adaptation() {
    let (catalog_cfg, session_cfg) = DatasetProfile::YC.configs(Scale::Fraction(0.002), 3);
    let (_, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);
    let dir = tmpdir("clickstream");
    let path = dir.join("cs.jsonl");
    preference_cover::clickstream::io::write_jsonl(&sessions, &path).unwrap();
    let back = preference_cover::clickstream::io::read_jsonl(&path).unwrap();
    assert_eq!(back, sessions);

    let a = adapt(&sessions, &AdaptOptions::default()).unwrap();
    let b = adapt(&back, &AdaptOptions::default()).unwrap();
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.external_ids, b.external_ids);
}

//! Whole-pipeline determinism: identical seeds must yield byte-identical
//! artifacts at every stage — generation, adaptation, solving, reports.
//! Experiment reproducibility (EXPERIMENTS.md) rests on this.

#![allow(clippy::unwrap_used)] // integration tests: panicking on setup failure is the right behavior

use preference_cover::graph::io::json;
use preference_cover::prelude::*;

fn run_pipeline(seed: u64) -> (String, Vec<ItemId>, Vec<f64>) {
    let (catalog_cfg, session_cfg) = DatasetProfile::PE.configs(Scale::Fraction(0.002), seed);
    let (_, sessions) = generate_clickstream(&catalog_cfg, &session_cfg);
    let adapted = adapt(
        &sessions,
        &AdaptOptions {
            variant: Variant::Independent,
            label_nodes: false,
            min_edge_support: 1,
        },
    )
    .unwrap();
    let graph_json = json::to_json_string(&adapted.graph);
    let report = lazy::solve::<Independent>(&adapted.graph, 100).unwrap();
    (graph_json, report.order, report.trajectory)
}

#[test]
fn same_seed_same_everything() {
    let (ga, oa, ta) = run_pipeline(77);
    let (gb, ob, tb) = run_pipeline(77);
    assert_eq!(ga, gb, "graph JSON diverged");
    assert_eq!(oa, ob, "selection order diverged");
    assert_eq!(ta, tb, "trajectory diverged");
}

#[test]
fn different_seed_different_data() {
    let (ga, ..) = run_pipeline(77);
    let (gb, ..) = run_pipeline(78);
    assert_ne!(ga, gb, "seeds should produce different datasets");
}

#[test]
fn all_solvers_are_internally_deterministic() {
    let g = generate_graph(&GraphGenConfig {
        nodes: 500,
        seed: 5,
        ..GraphGenConfig::default()
    })
    .unwrap();
    let k = 50;

    let runs = |n: usize| -> Vec<Vec<Vec<ItemId>>> {
        (0..n)
            .map(|_| {
                vec![
                    greedy::solve::<Independent>(&g, k).unwrap().order,
                    lazy::solve::<Independent>(&g, k).unwrap().order,
                    parallel::solve::<Independent>(&g, k, 3).unwrap().0.order,
                    preference_cover::solver::partitioned::solve::<Independent>(&g, k)
                        .unwrap()
                        .order,
                    stochastic::solve::<Independent>(
                        &g,
                        k,
                        &preference_cover::solver::stochastic::StochasticOptions::default(),
                    )
                    .unwrap()
                    .order,
                    streaming::solve::<Independent>(&g, k, &Default::default())
                        .unwrap()
                        .order,
                    baselines::random::<Independent>(&g, k, 9).unwrap().order,
                ]
            })
            .collect()
    };
    let two = runs(2);
    assert_eq!(two[0], two[1], "some solver is nondeterministic");
}

//! Every concrete number the paper quotes, verified end to end through the
//! public facade API.

#![allow(clippy::unwrap_used)] // integration tests: panicking on setup failure is the right behavior

use preference_cover::prelude::*;
use preference_cover::solver::bounds;
use preference_cover::solver::brute_force::{self, BruteForceOptions};

#[test]
fn example_1_1_and_3_2_all_numbers() {
    let g = preference_cover::graph::examples::figure1();

    // "A is the best selling item (purchased by 33% of customers) while D
    // is the least sold (6%)".
    let weights: Vec<f64> = g.node_weights().to_vec();
    let max = weights.iter().cloned().fold(f64::MIN, f64::max);
    let min = weights.iter().cloned().fold(f64::MAX, f64::min);
    assert!((max - 0.33).abs() < 1e-12);
    assert!((min - 0.06).abs() < 1e-12);

    for run_normalized in [true, false] {
        let (r, label) = if run_normalized {
            (greedy::solve::<Normalized>(&g, 2).unwrap(), "normalized")
        } else {
            (greedy::solve::<Independent>(&g, 2).unwrap(), "independent")
        };
        // Example 3.2: first pick B at 66%, final cover 87.3%.
        assert!((r.trajectory[0] - 0.66).abs() < 1e-9, "{label}");
        assert!((r.cover - 0.873).abs() < 1e-9, "{label}");
        // Names: B is node 1, D is node 3.
        assert_eq!(r.order, vec![ItemId::new(1), ItemId::new(3)], "{label}");
    }

    // "Selecting the two best-sold items, A and B, is likely to satisfy
    // about 77% of the customers."
    let naive = baselines::top_k_weight::<Normalized>(&g, 2).unwrap();
    assert!((naive.cover - 0.77).abs() < 1e-9);

    // "...which in this case is also the optimal possible pair."
    let bf = brute_force::solve::<Normalized>(&g, 2, &BruteForceOptions::default()).unwrap();
    assert!((bf.cover - 0.873).abs() < 1e-9);
}

#[test]
fn figure_2_walkthrough_coverage_percentages() {
    // "The coverage of the non-retained item C is also 100% ... The
    // coverage of items A and E is 67% and 90%."
    let (g, ids) = preference_cover::graph::examples::figure1_ids();
    let r = greedy::solve::<Normalized>(&g, 2).unwrap();
    assert!((r.coverage_of(&g, ids.c) - 1.0).abs() < 1e-9);
    assert!((r.coverage_of(&g, ids.a) - 2.0 / 3.0).abs() < 1e-9);
    assert!((r.coverage_of(&g, ids.e) - 0.9).abs() < 1e-9);
}

#[test]
fn figure_3_graph_construction() {
    // The five iPhone sessions of Figure 3a produce exactly the Figure 3b
    // graph; built here through the public adapt() API.
    let sessions = Clickstream::new(vec![
        Session::new(1, vec![3], 3),
        Session::new(2, vec![3, 1], 3),
        Session::new(3, vec![1, 2], 1),
        Session::new(4, vec![1, 3], 1),
        Session::new(5, vec![2, 3], 2),
    ]);
    let adapted = adapt(
        &sessions,
        &AdaptOptions {
            variant: Variant::Normalized,
            ..AdaptOptions::default()
        },
    )
    .unwrap();
    let g = &adapted.graph;
    let silver = adapted.node_of(1).unwrap();
    let gold = adapted.node_of(2).unwrap();
    let gray = adapted.node_of(3).unwrap();
    assert!((g.node_weight(silver) - 0.4).abs() < 1e-12);
    assert!((g.node_weight(gold) - 0.2).abs() < 1e-12);
    assert!((g.node_weight(gray) - 0.4).abs() < 1e-12);
    assert_eq!(g.edge_weight(silver, gold), Some(0.5));
    assert_eq!(g.edge_weight(silver, gray), Some(0.5));
    assert_eq!(g.edge_weight(gray, silver), Some(0.5));
    assert_eq!(g.edge_weight(gold, gray), Some(1.0));

    // "It is clear that the Normalized variant is a good fit, since no
    // session implies more than one alternative."
    let d = diagnose(
        &sessions,
        &DiagnosticThresholds {
            min_sessions_per_item: 1,
            ..Default::default()
        },
    );
    assert_eq!(d.recommendation, Recommendation::Normalized);
    assert!((d.single_alt_fraction - 1.0).abs() < 1e-12);
}

#[test]
fn table_1_greedy_column() {
    // Greedy bound: max{1 - 1/e, 1 - (1 - k/n)^2}.
    let e = 1.0 - 1.0 / std::f64::consts::E;
    assert!((bounds::greedy_ratio_ipc() - e).abs() < 1e-12);
    // Crossover at 1 - 1/sqrt(e) ≈ 0.39 (the table's "≈0.39").
    assert!((bounds::quadratic_crossover() - 0.39347).abs() < 1e-4);
    // "for k >= 0.74n it is the best known guarantee, exceeding a 0.93
    // factor".
    assert!(bounds::greedy_ratio_npc(0.74) > 0.93);
    let t = bounds::table1();
    assert_eq!(t.len(), 5);
}

#[test]
fn table_2_profile_constants() {
    // The Table 2 row constants drive the generator profiles.
    assert_eq!(DatasetProfile::PE.full_sessions(), 10_782_918);
    assert_eq!(DatasetProfile::PE.full_items(), 1_921_701);
    assert_eq!(DatasetProfile::PE.full_edges(), 9_250_131);
    assert_eq!(DatasetProfile::PF.full_sessions(), 8_630_541);
    assert_eq!(DatasetProfile::PM.full_items(), 1_396_674);
    assert_eq!(DatasetProfile::YC.full_edges(), 249_008);
}

#[test]
fn brute_force_subset_count_quote() {
    // "even for n = 30 and k = 15, there are 155M possible solutions"
    assert_eq!(brute_force::subset_count(30, 15), 155_117_520);
}

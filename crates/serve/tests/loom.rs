//! Model-checked interleavings of the serve sync primitives.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the nightly CI job): the
//! `crate::sync` shim then builds [`pcover_serve::queue::WorkQueue`] and
//! [`pcover_serve::SnapshotManager`] on the vendored `loom` primitives,
//! and [`loom::model`] explores every schedule of the threads below (DFS
//! with bounded preemption), failing with a repro schedule on any
//! assertion failure, deadlock, or lost wakeup.
//!
//! Run locally with:
//! `RUSTFLAGS="--cfg loom" cargo test -p pcover-serve --test loom --release`

#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;

use pcover_graph::delta::{Change, GraphDelta};
use pcover_graph::examples::figure1_ids;
use pcover_serve::queue::WorkQueue;
use pcover_serve::SnapshotManager;

/// Shed/drain/shutdown: one producer pushing past capacity, one draining
/// worker, close racing both. Every accepted item must be popped exactly
/// once and in order, the shed item must come back to the producer, and
/// `pop` must return `None` once closed and drained (no worker may hang —
/// a lost `notify` here shows up as a modeled deadlock).
#[test]
fn queue_sheds_drains_and_shuts_down_under_every_schedule() {
    loom::model(|| {
        let q = Arc::new(WorkQueue::new(1));
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        let mut accepted = Vec::new();
        for v in [1u32, 2] {
            if q.push(v).is_ok() {
                accepted.push(v);
            }
        }
        q.close();
        assert!(q.push(3).is_err(), "closed queue must shed");
        let got = worker.join().expect("worker exits after close");
        assert_eq!(got, accepted, "every accepted item pops exactly once");
    });
}

/// Swap vs. read: a reader's snapshot must be internally consistent — the
/// generation number and the graph it carries always agree, whichever side
/// of the hot-swap the read lands on, and the pre-swap `Arc` keeps the old
/// generation alive.
#[test]
fn snapshot_swap_never_tears_a_concurrent_read() {
    loom::model(|| {
        let (g, ids) = figure1_ids();
        let mgr = Arc::new(SnapshotManager::new(g));
        let writer = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || {
                let delta = GraphDelta::new().push(Change::Delist { node: ids.d });
                mgr.apply_delta(&delta).expect("valid delta")
            })
        };
        let snap = mgr.current();
        if snap.generation == 1 {
            assert!(
                snap.graph.node_weight(ids.d) > 0.0,
                "generation 1 must still carry D"
            );
        } else {
            assert_eq!(snap.generation, 2, "only generations 1 and 2 exist");
            assert!(
                snap.graph.node_weight(ids.d) <= 0.0,
                "generation 2 must have delisted D"
            );
        }
        assert_eq!(writer.join().expect("writer"), 2);
        assert_eq!(mgr.generation(), 2);
        // The handle taken mid-race still reads consistently afterwards.
        let after = if snap.generation == 1 { 1 } else { 2 };
        assert_eq!(snap.generation, after);
    });
}

/// Two racing writers: the writer mutex must serialize them into distinct
/// generations 2 and 3 with no update lost, under every schedule.
#[test]
fn concurrent_deltas_serialize_into_distinct_generations() {
    loom::model(|| {
        let (g, ids) = figure1_ids();
        let mgr = Arc::new(SnapshotManager::new(g));
        let other = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || {
                let delta = GraphDelta::new().push(Change::SetNodeWeight {
                    node: ids.e,
                    weight: 0.5,
                });
                mgr.apply_delta(&delta).expect("valid delta")
            })
        };
        let delta = GraphDelta::new().push(Change::SetNodeWeight {
            node: ids.e,
            weight: 0.25,
        });
        let mine = mgr.apply_delta(&delta).expect("valid delta");
        let theirs = other.join().expect("writer");
        let mut gens = [mine, theirs];
        gens.sort_unstable();
        assert_eq!(gens, [2, 3], "no generation lost or duplicated");
        assert_eq!(mgr.generation(), 3);
    });
}

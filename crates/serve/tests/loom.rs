//! Model-checked interleavings of the serve sync primitives.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the nightly CI job): the
//! `crate::sync` shim then builds [`pcover_serve::queue::WorkQueue`] and
//! [`pcover_serve::SnapshotManager`] on the vendored `loom` primitives,
//! and [`loom::model`] explores every schedule of the threads below (DFS
//! with bounded preemption), failing with a repro schedule on any
//! assertion failure, deadlock, or lost wakeup.
//!
//! Run locally with:
//! `RUSTFLAGS="--cfg loom" cargo test -p pcover-serve --test loom --release`

#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;

use pcover_graph::delta::{Change, GraphDelta};
use pcover_graph::examples::figure1_ids;
use pcover_serve::queue::WorkQueue;
use pcover_serve::{Flight, SingleFlight, SnapshotManager};

/// Shed/drain/shutdown: one producer pushing past capacity, one draining
/// worker, close racing both. Every accepted item must be popped exactly
/// once and in order, the shed item must come back to the producer, and
/// `pop` must return `None` once closed and drained (no worker may hang —
/// a lost `notify` here shows up as a modeled deadlock).
#[test]
fn queue_sheds_drains_and_shuts_down_under_every_schedule() {
    loom::model(|| {
        let q = Arc::new(WorkQueue::new(1));
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        let mut accepted = Vec::new();
        for v in [1u32, 2] {
            if q.push(v).is_ok() {
                accepted.push(v);
            }
        }
        q.close();
        assert!(q.push(3).is_err(), "closed queue must shed");
        let got = worker.join().expect("worker exits after close");
        assert_eq!(got, accepted, "every accepted item pops exactly once");
    });
}

/// Swap vs. read: a reader's snapshot must be internally consistent — the
/// generation number and the graph it carries always agree, whichever side
/// of the hot-swap the read lands on, and the pre-swap `Arc` keeps the old
/// generation alive.
#[test]
fn snapshot_swap_never_tears_a_concurrent_read() {
    loom::model(|| {
        let (g, ids) = figure1_ids();
        let mgr = Arc::new(SnapshotManager::new(g));
        let writer = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || {
                let delta = GraphDelta::new().push(Change::Delist { node: ids.d });
                mgr.apply_delta(&delta).expect("valid delta")
            })
        };
        let snap = mgr.current();
        if snap.generation == 1 {
            assert!(
                snap.graph.node_weight(ids.d) > 0.0,
                "generation 1 must still carry D"
            );
        } else {
            assert_eq!(snap.generation, 2, "only generations 1 and 2 exist");
            assert!(
                snap.graph.node_weight(ids.d) <= 0.0,
                "generation 2 must have delisted D"
            );
        }
        assert_eq!(writer.join().expect("writer"), 2);
        assert_eq!(mgr.generation(), 2);
        // The handle taken mid-race still reads consistently afterwards.
        let after = if snap.generation == 1 { 1 } else { 2 };
        assert_eq!(snap.generation, after);
    });
}

/// Two racing writers: the writer mutex must serialize them into distinct
/// generations 2 and 3 with no update lost, under every schedule.
#[test]
fn concurrent_deltas_serialize_into_distinct_generations() {
    loom::model(|| {
        let (g, ids) = figure1_ids();
        let mgr = Arc::new(SnapshotManager::new(g));
        let other = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || {
                let delta = GraphDelta::new().push(Change::SetNodeWeight {
                    node: ids.e,
                    weight: 0.5,
                });
                mgr.apply_delta(&delta).expect("valid delta")
            })
        };
        let delta = GraphDelta::new().push(Change::SetNodeWeight {
            node: ids.e,
            weight: 0.25,
        });
        let mine = mgr.apply_delta(&delta).expect("valid delta");
        let theirs = other.join().expect("writer");
        let mut gens = [mine, theirs];
        gens.sort_unstable();
        assert_eq!(gens, [2, 3], "no generation lost or duplicated");
        assert_eq!(mgr.generation(), 3);
    });
}

/// Single-flight coalescing: with a leader computing key 0, two racing
/// followers must each either join the leader's published value or — if
/// the schedule lands them after the flight drained — lead a fresh flight
/// of their own. Never a double-solve *during* the leader's flight (a
/// follower can only lead once the slot is gone), never a lost wakeup (a
/// parked follower that misses its `notify_all` shows up as a modeled
/// deadlock), and the table always drains to empty.
#[test]
fn coalesced_followers_join_or_lead_fresh_never_hang() {
    loom::model(|| {
        let table: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let Flight::Leader(token) = table.begin(0) else {
            panic!("first arrival must lead");
        };
        let followers: Vec<_> = (0..2)
            .map(|_| {
                let table = Arc::clone(&table);
                thread::spawn(move || match table.begin(0) {
                    Flight::Joined(v) => v,
                    Flight::Leader(t) => {
                        // Arrived after the first flight drained entirely.
                        t.publish(99);
                        99
                    }
                    Flight::Bypass => panic!("open table never bypasses"),
                })
            })
            .collect();
        token.publish(42);
        for f in followers {
            let v = f.join().expect("follower");
            assert!(v == 42 || v == 99, "value must come from a real publish");
        }
        assert!(table.is_empty(), "table must drain under every schedule");
    });
}

/// Leader abort: if the leader's token drops without publishing (solver
/// panic), a racing follower must wake and fall back to computing itself
/// — `Bypass` if it parked, or `Leader` of a fresh flight if it arrived
/// after the abort drained. It must never receive a value and never hang.
#[test]
fn aborted_leader_releases_every_waiter() {
    loom::model(|| {
        let table: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let Flight::Leader(token) = table.begin(0) else {
            panic!("leader");
        };
        let follower = {
            let table = Arc::clone(&table);
            thread::spawn(move || match table.begin(0) {
                Flight::Bypass => true,
                Flight::Leader(t) => {
                    t.publish(1);
                    true
                }
                Flight::Joined(_) => false,
            })
        };
        drop(token); // abort without publishing
        assert!(
            follower.join().expect("follower"),
            "an aborted flight must never hand out a value"
        );
        assert!(table.is_empty());
    });
}

/// Shutdown racing a parked waiter: `close()` may land before the waiter
/// registers, while it is parked, or after the leader published. In every
/// schedule the waiter must resolve — `Joined` with the published value or
/// `Bypass` — and post-close arrivals always bypass.
#[test]
fn close_races_a_parked_waiter_without_stranding_it() {
    loom::model(|| {
        let table: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let Flight::Leader(token) = table.begin(0) else {
            panic!("leader");
        };
        let waiter = {
            let table = Arc::clone(&table);
            thread::spawn(move || match table.begin(0) {
                Flight::Joined(v) => v == 7,
                Flight::Bypass => true,
                // Post-drain arrival on a still-open table.
                Flight::Leader(t) => {
                    t.publish(7);
                    true
                }
            })
        };
        let closer = {
            let table = Arc::clone(&table);
            thread::spawn(move || table.close())
        };
        token.publish(7);
        assert!(
            waiter.join().expect("waiter"),
            "waiter must resolve cleanly"
        );
        closer.join().expect("closer");
        assert!(
            matches!(table.begin(1), Flight::Bypass),
            "a closed table bypasses new arrivals"
        );
    });
}

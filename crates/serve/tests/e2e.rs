//! Process-level end-to-end test: a real server on an ephemeral port,
//! exercised over raw [`TcpStream`]s exactly as an external client would —
//! including the acceptance scenarios: consistent answers during a
//! snapshot swap, cache hits visible in `/metrics`, and a deadline that
//! errors cleanly with the worker staying usable.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use pcover_graph::examples::figure1_ids;
use pcover_serve::{Server, ServerConfig};

/// Issues one request and returns `(status code, body)`. One connection
/// per request, `Connection: close` — matching the server's model.
fn request(addr: std::net::SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn get_json(addr: std::net::SocketAddr, target: &str) -> (u16, serde_json::Value) {
    let (status, body) = request(addr, "GET", target, "");
    let value = serde_json::from_str(&body)
        .unwrap_or_else(|e| panic!("non-JSON body for {target}: {e}\n{body}"));
    (status, value)
}

fn field<'a>(v: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
    v.get(key)
        .unwrap_or_else(|| panic!("missing field '{key}' in {v}"))
}

fn uint(v: &serde_json::Value, key: &str) -> u64 {
    field(v, key)
        .as_u64()
        .unwrap_or_else(|| panic!("field '{key}' is not an integer in {v}"))
}

fn text(v: &serde_json::Value, key: &str) -> String {
    field(v, key)
        .as_str()
        .unwrap_or_else(|| panic!("field '{key}' is not a string in {v}"))
        .to_owned()
}

fn cover_of(v: &serde_json::Value) -> f64 {
    field(v, "cover").as_f64().expect("cover is a number")
}

fn order_of(v: &serde_json::Value) -> Vec<u64> {
    field(v, "order")
        .as_array()
        .expect("order is an array")
        .iter()
        .map(|id| id.as_u64().expect("item id"))
        .collect()
}

fn start_server() -> pcover_serve::ServerHandle {
    let (graph, _) = figure1_ids();
    Server::start(
        graph,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 32,
            default_deadline: None,
            read_timeout: Duration::from_secs(5),
        },
    )
    .expect("server starts")
}

#[test]
fn end_to_end_solve_cache_swap_deadline_and_shutdown() {
    let handle = start_server();
    let addr = handle.addr();

    // --- healthz ---------------------------------------------------------
    let (status, health) = get_json(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(uint(&health, "generation"), 1);
    assert_eq!(text(&health, "status"), "ok");

    // --- solve: miss, then exact hit, then prefix hit --------------------
    let (status, first) = get_json(addr, "/solve?k=2");
    assert_eq!(status, 200, "{first}");
    assert_eq!(uint(&first, "generation"), 1);
    assert_eq!(text(&first, "cache"), "miss");
    // Figure 1: greedy/lazy picks B (id 1) then D (id 3), cover 0.873.
    assert_eq!(order_of(&first), vec![1, 3]);
    assert!((cover_of(&first) - 0.873).abs() < 1e-9);

    let (status, second) = get_json(addr, "/solve?k=2");
    assert_eq!(status, 200);
    assert_eq!(
        text(&second, "cache"),
        "hit",
        "repeated /solve must hit the cache"
    );
    assert!((cover_of(&second) - cover_of(&first)).abs() < 1e-15);

    let (status, smaller) = get_json(addr, "/solve?k=1");
    assert_eq!(status, 200);
    assert_eq!(
        text(&smaller, "cache"),
        "prefix",
        "k=1 must ride the cached k=2 trajectory"
    );
    assert_eq!(order_of(&smaller), vec![1]);

    // --- cover and minimize ride the same trajectory ---------------------
    let (status, cover) = get_json(addr, "/cover?k=2");
    assert_eq!(status, 200);
    assert!((cover_of(&cover) - cover_of(&first)).abs() < 1e-15);

    let (status, minimized) = get_json(addr, "/minimize?threshold=0.8");
    assert_eq!(status, 200, "{minimized}");
    assert_eq!(
        uint(&minimized, "k"),
        2,
        "cover 0.873 >= 0.8 needs exactly B and D"
    );
    assert!(cover_of(&minimized) >= 0.8);

    // Cache-hit counters are visible in /metrics.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let hit_line = metrics
        .lines()
        .find(|l| l.starts_with("cache_hits "))
        .expect("cache_hits metric");
    let hits: u64 = hit_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("cache_hits value");
    assert!(hits >= 1, "repeated /solve must be counted: {hit_line}");
    assert!(metrics.contains("snapshot_generation 1"));
    assert!(metrics.contains("queue_capacity 64"));
    assert!(metrics.contains("endpoint_solve_latency_ms_le_inf"));

    // --- deadline: clean error, worker reusable afterward ----------------
    let (status, timed_out) = get_json(addr, "/solve?k=2&deadline_ms=0&seed=7");
    assert_eq!(status, 504, "exceeded deadline must be 504: {timed_out}");
    assert!(text(&timed_out, "error").contains("deadline"));
    let (status, after) = get_json(addr, "/solve?k=2");
    assert_eq!(status, 200, "worker must be reusable after a deadline");
    assert!((cover_of(&after) - cover_of(&first)).abs() < 1e-15);

    // --- bad input paths --------------------------------------------------
    assert_eq!(get_json(addr, "/solve").0, 400, "missing k");
    let (status, unknown) = get_json(addr, "/solve?k=2&algorithm=quantum");
    assert_eq!(status, 400);
    assert!(text(&unknown, "error").contains("quantum"));
    assert_eq!(request(addr, "GET", "/nope", "").0, 404);
    assert_eq!(request(addr, "DELETE", "/solve?k=2", "").0, 405);

    // --- concurrent queries during a snapshot swap -----------------------
    // Readers hammer /solve while the main thread applies a delta that
    // delists D (greedy's second pick). Every response must be internally
    // consistent: generation 1 answers carry the generation-1 cover,
    // generation 2 answers the generation-2 cover — never a mix.
    let gen1_cover = cover_of(&first);
    let readers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                (0..25)
                    .map(|_| get_json(addr, "/solve?k=2"))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let delta = r#"{"changes":[{"Delist":{"node":3}}]}"#;
    let (status, swapped) = request(addr, "POST", "/admin/delta", delta);
    assert_eq!(status, 200, "{swapped}");
    let swapped: serde_json::Value = serde_json::from_str(&swapped).expect("delta response");
    assert_eq!(
        uint(&swapped, "generation"),
        2,
        "delta must bump the generation"
    );

    // The post-swap answer defines the generation-2 expectation. (The
    // cache tag is unasserted here: a concurrent reader may already have
    // populated generation 2 — invalidation is proven race-free below.)
    let (status, gen2) = get_json(addr, "/solve?k=2");
    assert_eq!(status, 200);
    assert_eq!(uint(&gen2, "generation"), 2);
    let gen2_cover = cover_of(&gen2);
    assert!(
        (gen2_cover - gen1_cover).abs() > 1e-6,
        "delisting greedy's second pick must change the optimum"
    );

    for reader in readers {
        for (status, resp) in reader.join().expect("reader thread") {
            assert_eq!(status, 200, "{resp}");
            let expected = match uint(&resp, "generation") {
                1 => gen1_cover,
                2 => gen2_cover,
                g => panic!("impossible generation {g}"),
            };
            assert!(
                (cover_of(&resp) - expected).abs() < 1e-15,
                "mixed-generation answer: {resp}"
            );
        }
    }

    // Generation 2 answers are cached like any other.
    let (_, again) = get_json(addr, "/solve?k=2");
    assert_eq!(text(&again, "cache"), "hit");

    // With no concurrent traffic: a swap invalidates the cached answer for
    // the *same* query — the next solve is a miss on the new generation.
    let delta2 = r#"{"changes":[{"SetNodeWeight":{"node":4,"weight":0.5}}]}"#;
    let (status, swapped2) = request(addr, "POST", "/admin/delta", delta2);
    assert_eq!(status, 200, "{swapped2}");
    let (status, gen3) = get_json(addr, "/solve?k=2");
    assert_eq!(status, 200);
    assert_eq!(uint(&gen3, "generation"), 3);
    assert_eq!(
        text(&gen3, "cache"),
        "miss",
        "the swap must invalidate cached answers from older generations"
    );

    // --- graceful shutdown ------------------------------------------------
    let (status, bye) = request(addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200, "{bye}");
    handle.join();
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener must be gone after shutdown"
    );
}

fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split_ascii_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("missing metric '{name}' in:\n{metrics}"))
}

#[test]
fn warm_resolve_after_swap_matches_a_cold_server_byte_for_byte() {
    let warm_srv = start_server();
    let cold_srv = start_server();
    let wa = warm_srv.addr();
    let ca = cold_srv.addr();

    // Seed the warm server's cache with a full-budget delta-greedy solve on
    // generation 1; its order + round-0 gains become the warm state.
    let (status, seeded) = get_json(wa, "/solve?k=5&algorithm=delta");
    assert_eq!(status, 200, "{seeded}");
    assert_eq!(text(&seeded, "cache"), "miss");

    // Apply the same edge-only delta to both servers (reweights A→B; no
    // node-weight renormalization, so the warm state's weights stay valid).
    let delta = r#"{"changes":[{"UpsertEdge":{"source":0,"target":1,"weight":0.25}}]}"#;
    assert_eq!(request(wa, "POST", "/admin/delta", delta).0, 200);
    assert_eq!(request(ca, "POST", "/admin/delta", delta).0, 200);

    // Warm server repairs the harvested state; cold server solves fresh.
    let (status, warm) = get_json(wa, "/solve?k=5&algorithm=delta");
    assert_eq!(status, 200, "{warm}");
    assert_eq!(uint(&warm, "generation"), 2);
    assert_eq!(
        text(&warm, "cache"),
        "warm",
        "post-swap delta-greedy solve must repair the warm state"
    );
    let (status, cold) = get_json(ca, "/solve?k=5&algorithm=delta");
    assert_eq!(status, 200, "{cold}");
    assert_eq!(uint(&cold, "generation"), 2);
    assert_eq!(text(&cold, "cache"), "miss");

    // Byte-for-byte equality of the re-serialized answer fields: JSON float
    // printing is shortest-roundtrip, so equal strings mean equal f64 bits.
    for key in ["cover", "order", "variant", "k"] {
        assert_eq!(
            serde_json::to_string(field(&warm, key)).expect("serializable"),
            serde_json::to_string(field(&cold, key)).expect("serializable"),
            "warm and cold must agree byte-for-byte on '{key}'"
        );
    }

    // The repair is visible in /metrics, and every round is accounted for.
    let (_, metrics) = request(wa, "GET", "/metrics", "");
    assert_eq!(metric_value(&metrics, "warm_start_hits"), 1);
    assert_eq!(
        metric_value(&metrics, "warm_rounds_reused")
            + metric_value(&metrics, "warm_rounds_repaired"),
        5,
        "reused + repaired must cover all k rounds"
    );

    // A bitwise no-op delta (same edge, same weight) migrates the cache
    // instead of dropping it: the same query stays an exact hit afterward.
    let noop = r#"{"changes":[{"UpsertEdge":{"source":0,"target":1,"weight":0.25}}]}"#;
    assert_eq!(request(wa, "POST", "/admin/delta", noop).0, 200);
    let (status, carried) = get_json(wa, "/solve?k=5&algorithm=delta");
    assert_eq!(status, 200, "{carried}");
    assert_eq!(uint(&carried, "generation"), 3);
    assert_eq!(
        text(&carried, "cache"),
        "hit",
        "identity swap must carry cached answers across the generation"
    );
    let (_, metrics) = request(wa, "GET", "/metrics", "");
    assert!(
        metric_value(&metrics, "cache_survived_swap") >= 1,
        "{metrics}"
    );

    warm_srv.shutdown();
    warm_srv.join();
    cold_srv.shutdown();
    cold_srv.join();
}

#[test]
fn shutdown_via_handle_drains_and_joins() {
    let handle = start_server();
    let addr = handle.addr();
    assert_eq!(get_json(addr, "/healthz").0, 200);
    handle.shutdown();
    handle.join();
}

#[test]
fn minimize_full_solve_seeds_the_cache_for_solve() {
    let handle = start_server();
    let addr = handle.addr();
    // /minimize runs a full-budget (k = n) lazy solve…
    let (status, min) = get_json(addr, "/minimize?threshold=0.99");
    assert_eq!(status, 200, "{min}");
    // …whose trajectory then answers any /solve for free.
    let (status, solved) = get_json(addr, "/solve?k=3");
    assert_eq!(status, 200);
    assert_eq!(
        text(&solved, "cache"),
        "prefix",
        "minimize's full trajectory must serve /solve k=3"
    );
    handle.shutdown();
    handle.join();
}

//! Process-level end-to-end test: a real server on an ephemeral port,
//! exercised over raw [`TcpStream`]s exactly as an external client would —
//! including the acceptance scenarios: consistent answers during a
//! snapshot swap, cache hits visible in `/metrics`, and a deadline that
//! errors cleanly with the worker staying usable.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use pcover_graph::examples::figure1_ids;
use pcover_serve::{Server, ServerConfig};

/// Issues one request and returns `(status code, body)`. One connection
/// per request, `Connection: close` — matching the server's model.
fn request(addr: std::net::SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn get_json(addr: std::net::SocketAddr, target: &str) -> (u16, serde_json::Value) {
    let (status, body) = request(addr, "GET", target, "");
    let value = serde_json::from_str(&body)
        .unwrap_or_else(|e| panic!("non-JSON body for {target}: {e}\n{body}"));
    (status, value)
}

fn field<'a>(v: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
    v.get(key)
        .unwrap_or_else(|| panic!("missing field '{key}' in {v}"))
}

fn uint(v: &serde_json::Value, key: &str) -> u64 {
    field(v, key)
        .as_u64()
        .unwrap_or_else(|| panic!("field '{key}' is not an integer in {v}"))
}

fn text(v: &serde_json::Value, key: &str) -> String {
    field(v, key)
        .as_str()
        .unwrap_or_else(|| panic!("field '{key}' is not a string in {v}"))
        .to_owned()
}

fn cover_of(v: &serde_json::Value) -> f64 {
    field(v, "cover").as_f64().expect("cover is a number")
}

fn order_of(v: &serde_json::Value) -> Vec<u64> {
    field(v, "order")
        .as_array()
        .expect("order is an array")
        .iter()
        .map(|id| id.as_u64().expect("item id"))
        .collect()
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        queue_capacity: 64,
        cache_capacity: 32,
        default_deadline: None,
        read_timeout: Duration::from_secs(5),
        idle_timeout: Duration::from_secs(5),
        max_requests_per_connection: 1000,
    }
}

fn start_server() -> pcover_serve::ServerHandle {
    let (graph, _) = figure1_ids();
    Server::start(graph, test_config()).expect("server starts")
}

fn start_server_with(config: ServerConfig) -> pcover_serve::ServerHandle {
    let (graph, _) = figure1_ids();
    Server::start(graph, config).expect("server starts")
}

/// A persistent client connection: sends requests with
/// `Connection: keep-alive` and reads `Content-Length`-framed responses
/// one at a time, so several can ride the same TCP stream.
struct KeepAliveConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KeepAliveConn {
    fn open(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        Self {
            stream,
            buf: Vec::new(),
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write request");
        self.stream.flush().expect("flush");
    }

    fn send(&mut self, method: &str, target: &str, body: &str) {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        );
        self.send_raw(&[head.as_bytes(), body.as_bytes()].concat());
    }

    /// Reads exactly one response; returns `(status, head text, body)`.
    fn read_response(&mut self) -> (u16, String, String) {
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read response");
            assert!(n > 0, "connection closed while a response was expected");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end - 4]).into_owned();
        let status: u16 = head
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let content_length: usize = head
            .split("\r\n")
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().expect("content-length"))
            })
            .expect("every response must carry Content-Length");
        while self.buf.len() < head_end + content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "connection closed mid-body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body =
            String::from_utf8_lossy(&self.buf[head_end..head_end + content_length]).into_owned();
        self.buf.drain(..head_end + content_length);
        (status, head, body)
    }

    fn get_json(&mut self, target: &str) -> (u16, serde_json::Value) {
        self.send("GET", target, "");
        let (status, _, body) = self.read_response();
        let value = serde_json::from_str(&body)
            .unwrap_or_else(|e| panic!("non-JSON body for {target}: {e}\n{body}"));
        (status, value)
    }

    /// True once the server has hung up (clean EOF, no stray bytes).
    fn at_eof(&mut self) -> bool {
        let mut probe = [0u8; 64];
        match self.stream.read(&mut probe) {
            Ok(0) => true,
            Ok(n) => panic!(
                "expected EOF, got {n} stray bytes: {:?}",
                String::from_utf8_lossy(&probe[..n])
            ),
            Err(e) => panic!("expected clean EOF, got error: {e}"),
        }
    }
}

fn says_close(head: &str) -> bool {
    head.split("\r\n").any(|l| {
        l.split_once(':').is_some_and(|(name, value)| {
            name.eq_ignore_ascii_case("connection") && value.trim().eq_ignore_ascii_case("close")
        })
    })
}

#[test]
fn end_to_end_solve_cache_swap_deadline_and_shutdown() {
    let handle = start_server();
    let addr = handle.addr();

    // --- healthz ---------------------------------------------------------
    let (status, health) = get_json(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(uint(&health, "generation"), 1);
    assert_eq!(text(&health, "status"), "ok");

    // --- solve: miss, then exact hit, then prefix hit --------------------
    let (status, first) = get_json(addr, "/solve?k=2");
    assert_eq!(status, 200, "{first}");
    assert_eq!(uint(&first, "generation"), 1);
    assert_eq!(text(&first, "cache"), "miss");
    // Figure 1: greedy/lazy picks B (id 1) then D (id 3), cover 0.873.
    assert_eq!(order_of(&first), vec![1, 3]);
    assert!((cover_of(&first) - 0.873).abs() < 1e-9);

    let (status, second) = get_json(addr, "/solve?k=2");
    assert_eq!(status, 200);
    assert_eq!(
        text(&second, "cache"),
        "hit",
        "repeated /solve must hit the cache"
    );
    assert!((cover_of(&second) - cover_of(&first)).abs() < 1e-15);

    let (status, smaller) = get_json(addr, "/solve?k=1");
    assert_eq!(status, 200);
    assert_eq!(
        text(&smaller, "cache"),
        "prefix",
        "k=1 must ride the cached k=2 trajectory"
    );
    assert_eq!(order_of(&smaller), vec![1]);

    // --- cover and minimize ride the same trajectory ---------------------
    let (status, cover) = get_json(addr, "/cover?k=2");
    assert_eq!(status, 200);
    assert!((cover_of(&cover) - cover_of(&first)).abs() < 1e-15);

    let (status, minimized) = get_json(addr, "/minimize?threshold=0.8");
    assert_eq!(status, 200, "{minimized}");
    assert_eq!(
        uint(&minimized, "k"),
        2,
        "cover 0.873 >= 0.8 needs exactly B and D"
    );
    assert!(cover_of(&minimized) >= 0.8);

    // Cache-hit counters are visible in /metrics.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let hit_line = metrics
        .lines()
        .find(|l| l.starts_with("cache_hits "))
        .expect("cache_hits metric");
    let hits: u64 = hit_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("cache_hits value");
    assert!(hits >= 1, "repeated /solve must be counted: {hit_line}");
    assert!(metrics.contains("snapshot_generation 1"));
    assert!(metrics.contains("queue_capacity 64"));
    assert!(metrics.contains("endpoint_solve_latency_ms_le_inf"));
    // Sub-millisecond buckets make p999 resolvable for cache-hit traffic.
    assert!(metrics.contains("endpoint_solve_latency_ms_le_0.05"));
    assert!(metrics.contains("endpoint_solve_latency_ms_le_0.5"));
    // Connection and coalescing accounting are part of the surface.
    assert!(metric_value(&metrics, "connections_total") >= 1);
    assert!(metrics.contains("keepalive_reuse_total"));
    assert!(metrics.contains("coalesced_hits"));
    assert!(metrics.contains("inflight_solves"));

    // --- deadline: clean error, worker reusable afterward ----------------
    let (status, timed_out) = get_json(addr, "/solve?k=2&deadline_ms=0&seed=7");
    assert_eq!(status, 504, "exceeded deadline must be 504: {timed_out}");
    assert!(text(&timed_out, "error").contains("deadline"));
    let (status, after) = get_json(addr, "/solve?k=2");
    assert_eq!(status, 200, "worker must be reusable after a deadline");
    assert!((cover_of(&after) - cover_of(&first)).abs() < 1e-15);

    // --- bad input paths --------------------------------------------------
    assert_eq!(get_json(addr, "/solve").0, 400, "missing k");
    let (status, unknown) = get_json(addr, "/solve?k=2&algorithm=quantum");
    assert_eq!(status, 400);
    assert!(text(&unknown, "error").contains("quantum"));
    assert_eq!(request(addr, "GET", "/nope", "").0, 404);
    assert_eq!(request(addr, "DELETE", "/solve?k=2", "").0, 405);

    // --- concurrent queries during a snapshot swap -----------------------
    // Readers hammer /solve while the main thread applies a delta that
    // delists D (greedy's second pick). Every response must be internally
    // consistent: generation 1 answers carry the generation-1 cover,
    // generation 2 answers the generation-2 cover — never a mix.
    let gen1_cover = cover_of(&first);
    let readers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                (0..25)
                    .map(|_| get_json(addr, "/solve?k=2"))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let delta = r#"{"changes":[{"Delist":{"node":3}}]}"#;
    let (status, swapped) = request(addr, "POST", "/admin/delta", delta);
    assert_eq!(status, 200, "{swapped}");
    let swapped: serde_json::Value = serde_json::from_str(&swapped).expect("delta response");
    assert_eq!(
        uint(&swapped, "generation"),
        2,
        "delta must bump the generation"
    );

    // The post-swap answer defines the generation-2 expectation. (The
    // cache tag is unasserted here: a concurrent reader may already have
    // populated generation 2 — invalidation is proven race-free below.)
    let (status, gen2) = get_json(addr, "/solve?k=2");
    assert_eq!(status, 200);
    assert_eq!(uint(&gen2, "generation"), 2);
    let gen2_cover = cover_of(&gen2);
    assert!(
        (gen2_cover - gen1_cover).abs() > 1e-6,
        "delisting greedy's second pick must change the optimum"
    );

    for reader in readers {
        for (status, resp) in reader.join().expect("reader thread") {
            assert_eq!(status, 200, "{resp}");
            let expected = match uint(&resp, "generation") {
                1 => gen1_cover,
                2 => gen2_cover,
                g => panic!("impossible generation {g}"),
            };
            assert!(
                (cover_of(&resp) - expected).abs() < 1e-15,
                "mixed-generation answer: {resp}"
            );
        }
    }

    // Generation 2 answers are cached like any other.
    let (_, again) = get_json(addr, "/solve?k=2");
    assert_eq!(text(&again, "cache"), "hit");

    // With no concurrent traffic: a swap invalidates the cached answer for
    // the *same* query — the next solve is a miss on the new generation.
    let delta2 = r#"{"changes":[{"SetNodeWeight":{"node":4,"weight":0.5}}]}"#;
    let (status, swapped2) = request(addr, "POST", "/admin/delta", delta2);
    assert_eq!(status, 200, "{swapped2}");
    let (status, gen3) = get_json(addr, "/solve?k=2");
    assert_eq!(status, 200);
    assert_eq!(uint(&gen3, "generation"), 3);
    assert_eq!(
        text(&gen3, "cache"),
        "miss",
        "the swap must invalidate cached answers from older generations"
    );

    // --- graceful shutdown ------------------------------------------------
    let (status, bye) = request(addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200, "{bye}");
    handle.join();
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener must be gone after shutdown"
    );
}

fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split_ascii_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("missing metric '{name}' in:\n{metrics}"))
}

#[test]
fn warm_resolve_after_swap_matches_a_cold_server_byte_for_byte() {
    let warm_srv = start_server();
    let cold_srv = start_server();
    let wa = warm_srv.addr();
    let ca = cold_srv.addr();

    // Seed the warm server's cache with a full-budget delta-greedy solve on
    // generation 1; its order + round-0 gains become the warm state.
    let (status, seeded) = get_json(wa, "/solve?k=5&algorithm=delta");
    assert_eq!(status, 200, "{seeded}");
    assert_eq!(text(&seeded, "cache"), "miss");

    // Apply the same edge-only delta to both servers (reweights A→B; no
    // node-weight renormalization, so the warm state's weights stay valid).
    let delta = r#"{"changes":[{"UpsertEdge":{"source":0,"target":1,"weight":0.25}}]}"#;
    assert_eq!(request(wa, "POST", "/admin/delta", delta).0, 200);
    assert_eq!(request(ca, "POST", "/admin/delta", delta).0, 200);

    // Warm server repairs the harvested state; cold server solves fresh.
    let (status, warm) = get_json(wa, "/solve?k=5&algorithm=delta");
    assert_eq!(status, 200, "{warm}");
    assert_eq!(uint(&warm, "generation"), 2);
    assert_eq!(
        text(&warm, "cache"),
        "warm",
        "post-swap delta-greedy solve must repair the warm state"
    );
    let (status, cold) = get_json(ca, "/solve?k=5&algorithm=delta");
    assert_eq!(status, 200, "{cold}");
    assert_eq!(uint(&cold, "generation"), 2);
    assert_eq!(text(&cold, "cache"), "miss");

    // Byte-for-byte equality of the re-serialized answer fields: JSON float
    // printing is shortest-roundtrip, so equal strings mean equal f64 bits.
    for key in ["cover", "order", "variant", "k"] {
        assert_eq!(
            serde_json::to_string(field(&warm, key)).expect("serializable"),
            serde_json::to_string(field(&cold, key)).expect("serializable"),
            "warm and cold must agree byte-for-byte on '{key}'"
        );
    }

    // The repair is visible in /metrics, and every round is accounted for.
    let (_, metrics) = request(wa, "GET", "/metrics", "");
    assert_eq!(metric_value(&metrics, "warm_start_hits"), 1);
    assert_eq!(
        metric_value(&metrics, "warm_rounds_reused")
            + metric_value(&metrics, "warm_rounds_repaired"),
        5,
        "reused + repaired must cover all k rounds"
    );

    // A bitwise no-op delta (same edge, same weight) migrates the cache
    // instead of dropping it: the same query stays an exact hit afterward.
    let noop = r#"{"changes":[{"UpsertEdge":{"source":0,"target":1,"weight":0.25}}]}"#;
    assert_eq!(request(wa, "POST", "/admin/delta", noop).0, 200);
    let (status, carried) = get_json(wa, "/solve?k=5&algorithm=delta");
    assert_eq!(status, 200, "{carried}");
    assert_eq!(uint(&carried, "generation"), 3);
    assert_eq!(
        text(&carried, "cache"),
        "hit",
        "identity swap must carry cached answers across the generation"
    );
    let (_, metrics) = request(wa, "GET", "/metrics", "");
    assert!(
        metric_value(&metrics, "cache_survived_swap") >= 1,
        "{metrics}"
    );

    warm_srv.shutdown();
    warm_srv.join();
    cold_srv.shutdown();
    cold_srv.join();
}

#[test]
fn shutdown_via_handle_drains_and_joins() {
    let handle = start_server();
    let addr = handle.addr();
    assert_eq!(get_json(addr, "/healthz").0, 200);
    handle.shutdown();
    handle.join();
}

#[test]
fn keep_alive_serves_pipelined_and_sequential_requests_on_one_connection() {
    let handle = start_server();
    let addr = handle.addr();
    let mut conn = KeepAliveConn::open(addr);

    // Two requests pipelined back-to-back in a single write: the server
    // must answer both, in order, on the same connection — the second is
    // parsed out of bytes already buffered by the first read.
    conn.send_raw(
        b"GET /solve?k=2 HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: keep-alive\r\n\r\n\
          GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: keep-alive\r\n\r\n",
    );
    let (status, head, body) = conn.read_response();
    assert_eq!(status, 200, "{body}");
    assert!(!says_close(&head), "keep-alive response must not close");
    assert!(
        body.contains("\"order\""),
        "first answer is the solve: {body}"
    );
    let (status, _, body) = conn.read_response();
    assert_eq!(status, 200);
    assert!(
        body.contains("\"status\""),
        "second answer is healthz: {body}"
    );

    // A third, separate request still rides the same connection.
    let (status, health) = conn.get_json("/healthz");
    assert_eq!(status, 200);
    assert_eq!(text(&health, "status"), "ok");

    // The reuse is visible in /metrics: one connection, several requests.
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(
        metric_value(&metrics, "keepalive_reuse_total") >= 2,
        "{metrics}"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn malformed_request_after_a_good_one_gets_400_then_close() {
    let handle = start_server();
    let mut conn = KeepAliveConn::open(handle.addr());
    let (status, _, _) = {
        conn.send("GET", "/healthz", "");
        conn.read_response()
    };
    assert_eq!(status, 200);

    // Garbage where the next request line should be: the server must
    // answer 400 with exact framing and then hang up — resynchronizing
    // a corrupted stream is not possible.
    conn.send_raw(b"NOT A REQUEST\r\n\r\n");
    let (status, head, body) = conn.read_response();
    assert_eq!(status, 400, "{body}");
    assert!(
        says_close(&head),
        "a malformed request forces Connection: close"
    );
    assert!(conn.at_eof(), "server must close after a malformed request");
    handle.shutdown();
    handle.join();
}

#[test]
fn idle_keep_alive_connection_is_hung_up_after_the_idle_timeout() {
    let handle = start_server_with(ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..test_config()
    });
    let mut conn = KeepAliveConn::open(handle.addr());
    conn.send("GET", "/healthz", "");
    assert_eq!(conn.read_response().0, 200);

    // Stay quiet past the idle timeout: the worker hangs up silently (no
    // response bytes — there is no request to answer) and moves on.
    std::thread::sleep(Duration::from_millis(600));
    assert!(conn.at_eof(), "idle connection must be disconnected");

    // The worker that hung up is immediately reusable.
    let (status, _) = get_json(handle.addr(), "/healthz");
    assert_eq!(status, 200);
    handle.shutdown();
    handle.join();
}

#[test]
fn requests_per_connection_cap_closes_after_the_final_response() {
    let handle = start_server_with(ServerConfig {
        max_requests_per_connection: 2,
        ..test_config()
    });
    let mut conn = KeepAliveConn::open(handle.addr());
    conn.send("GET", "/healthz", "");
    let (status, head, _) = conn.read_response();
    assert_eq!(status, 200);
    assert!(!says_close(&head), "first response keeps the connection");

    conn.send("GET", "/healthz", "");
    let (status, head, _) = conn.read_response();
    assert_eq!(status, 200);
    assert!(
        says_close(&head),
        "the cap'th response must announce Connection: close"
    );
    assert!(conn.at_eof(), "server must close once the cap is reached");
    handle.shutdown();
    handle.join();
}

#[test]
fn oversized_body_gets_413_with_exact_framing() {
    let handle = start_server();
    let mut conn = KeepAliveConn::open(handle.addr());
    // Announce a body beyond the 4 MiB cap; the server must refuse from
    // the head alone without waiting for (or reading) the body.
    conn.send_raw(
        b"POST /admin/delta HTTP/1.1\r\nHost: t\r\nContent-Length: 5000000\r\nConnection: keep-alive\r\n\r\n",
    );
    let (status, head, body) = conn.read_response();
    assert_eq!(status, 413, "{body}");
    assert!(says_close(&head), "oversize requests force a close");
    let len: usize = head
        .split("\r\n")
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .expect("Content-Length header");
    assert_eq!(len, body.len(), "framing must be byte-exact");
    assert!(conn.at_eof());
    handle.shutdown();
    handle.join();
}

#[test]
fn snapshot_swap_races_open_persistent_connections_consistently() {
    let handle = start_server();
    let addr = handle.addr();

    let (status, first) = get_json(addr, "/solve?k=2");
    assert_eq!(status, 200, "{first}");
    let gen1_cover = cover_of(&first);

    // Persistent connections hammer /solve while the main thread swaps the
    // snapshot underneath them. Each response must be internally
    // consistent — generation and cover always agree — and the connection
    // itself must survive the swap.
    let readers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut conn = KeepAliveConn::open(addr);
                (0..25)
                    .map(|_| conn.get_json("/solve?k=2"))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let delta = r#"{"changes":[{"Delist":{"node":3}}]}"#;
    let (status, swapped) = request(addr, "POST", "/admin/delta", delta);
    assert_eq!(status, 200, "{swapped}");

    let (status, gen2) = get_json(addr, "/solve?k=2");
    assert_eq!(status, 200);
    assert_eq!(uint(&gen2, "generation"), 2);
    let gen2_cover = cover_of(&gen2);

    for reader in readers {
        for (status, resp) in reader.join().expect("reader thread") {
            assert_eq!(status, 200, "{resp}");
            let expected = match uint(&resp, "generation") {
                1 => gen1_cover,
                2 => gen2_cover,
                g => panic!("impossible generation {g}"),
            };
            assert!(
                (cover_of(&resp) - expected).abs() < 1e-15,
                "mixed-generation answer on a persistent connection: {resp}"
            );
        }
    }
    handle.shutdown();
    handle.join();
}

#[test]
fn concurrent_identical_solves_coalesce_into_one_run() {
    // A graph big enough that one solve takes tens of milliseconds in
    // release (seconds in debug, still inside the client's 10 s read
    // timeout) — plenty of window for every racer to arrive while the
    // leader is still computing.
    let graph =
        pcover_datagen::graphgen::generate_graph(&pcover_datagen::graphgen::GraphGenConfig {
            nodes: 10_000,
            avg_out_degree: 8,
            popularity_exponent: 1.0,
            locality: 16,
            normalized: false,
            seed: 42,
        })
        .expect("generated graph");
    let handle = Server::start(
        graph,
        ServerConfig {
            workers: 8,
            ..test_config()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    const RACERS: usize = 8;
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(RACERS));
    let racers: Vec<_> = (0..RACERS)
        .map(|_| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Connect first so the race is over request handling, not
                // connection setup, then fire simultaneously.
                let mut conn = KeepAliveConn::open(addr);
                barrier.wait();
                let (status, resp) = conn.get_json("/solve?k=150&algorithm=greedy");
                assert_eq!(status, 200, "{resp}");
                text(&resp, "cache")
            })
        })
        .collect();
    let outcomes: Vec<String> = racers
        .into_iter()
        .map(|r| r.join().expect("racer"))
        .collect();

    let misses = outcomes.iter().filter(|o| *o == "miss").count();
    let coalesced = outcomes.iter().filter(|o| *o == "coalesced").count();
    assert_eq!(
        (misses, coalesced),
        (1, RACERS - 1),
        "exactly one solve, everyone else coalesces: {outcomes:?}"
    );

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(metric_value(&metrics, "cache_misses"), 1, "{metrics}");
    assert_eq!(
        metric_value(&metrics, "coalesced_hits"),
        (RACERS - 1) as u64,
        "{metrics}"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn minimize_full_solve_seeds_the_cache_for_solve() {
    let handle = start_server();
    let addr = handle.addr();
    // /minimize runs a full-budget (k = n) lazy solve…
    let (status, min) = get_json(addr, "/minimize?threshold=0.99");
    assert_eq!(status, 200, "{min}");
    // …whose trajectory then answers any /solve for free.
    let (status, solved) = get_json(addr, "/solve?k=3");
    assert_eq!(status, 200);
    assert_eq!(
        text(&solved, "cache"),
        "prefix",
        "minimize's full trajectory must serve /solve k=3"
    );
    handle.shutdown();
    handle.join();
}

//! Single-flight request coalescing: an in-flight table that collapses N
//! concurrent identical solves into one.
//!
//! When several requests race to the same [`crate::cache::CacheKey`]
//! before the first one finishes, the cache alone cannot help — every
//! racer misses and solves redundantly (the classic cache stampede). The
//! [`SingleFlight`] table closes that window: the first arrival becomes
//! the *leader* and computes; later arrivals park on a `Condvar` and all
//! receive the leader's published value.
//!
//! Built on the `crate::sync` shim (`Mutex<HashMap>` + `Condvar`), so a
//! `--cfg loom` build model-checks the protocol in `tests/loom.rs`: no
//! lost wakeups, no double-solve on the same key, and a clean drain on
//! shutdown. Guard discipline matches [`crate::queue::WorkQueue`]: waits
//! happen only in a predicate loop on the table's own guard, and every
//! `notify_all` runs guard-free.
//!
//! The leader's token publishes through [`FlightLeader::publish`]; if the
//! leader unwinds without publishing (solver panic), the token's `Drop`
//! aborts the flight so waiters wake and fall back to solving themselves
//! — a waiter can never hang on a dead leader.

use std::collections::HashMap;
use std::hash::Hash;

use crate::sync::{Condvar, Mutex, MutexGuard};

/// How [`SingleFlight::begin`] classified the caller.
pub enum Flight<'a, K: Eq + Hash + Clone, V: Clone> {
    /// First arrival for the key: compute, then [`FlightLeader::publish`].
    Leader(FlightLeader<'a, K, V>),
    /// A leader already computed (or is being waited out): here is its
    /// published value.
    Joined(V),
    /// No coalescing available (table closed, or the previous leader
    /// aborted): compute independently and do not publish.
    Bypass,
}

/// The leader's obligation token (see [`Flight::Leader`]).
pub struct FlightLeader<'a, K: Eq + Hash + Clone, V: Clone> {
    table: &'a SingleFlight<K, V>,
    key: Option<K>,
}

impl<K: Eq + Hash + Clone, V: Clone> FlightLeader<'_, K, V> {
    /// Publishes the computed value to every parked waiter.
    pub fn publish(mut self, value: V) {
        if let Some(key) = self.key.take() {
            self.table.finish(&key, Some(value));
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for FlightLeader<'_, K, V> {
    fn drop(&mut self) {
        // Leader unwound without publishing: abort so waiters never hang.
        if let Some(key) = self.key.take() {
            self.table.finish(&key, None);
        }
    }
}

enum SlotState<V> {
    /// The leader is computing.
    Running,
    /// The leader published; waiters drain this value.
    Done(V),
    /// The leader dropped without publishing; waiters bypass.
    Aborted,
}

struct Slot<V> {
    state: SlotState<V>,
    /// Parked followers still owed a wakeup; the last one out removes the
    /// finished slot.
    waiters: usize,
}

struct FlightMap<K, V> {
    flights: HashMap<K, Slot<V>>,
    open: bool,
}

/// The in-flight table (see the module docs).
pub struct SingleFlight<K: Eq + Hash + Clone, V: Clone> {
    inner: Mutex<FlightMap<K, V>>,
    done: Condvar,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> std::fmt::Debug for SingleFlight<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleFlight")
            .field("in_flight", &self.len())
            .finish_non_exhaustive()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlight<K, V> {
    /// An open table with nothing in flight.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(FlightMap {
                flights: HashMap::new(),
                open: true,
            }),
            done: Condvar::new(),
        }
    }

    /// Recovers from a poisoned lock: the table's invariants (a map and a
    /// flag) cannot be left torn by a panicking holder, and the leader's
    /// `Drop` abort runs *during* unwinding — waiters must still drain.
    fn lock(&self) -> MutexGuard<'_, FlightMap<K, V>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Joins or starts the flight for `key`; blocks while a leader for the
    /// same key is computing. See [`Flight`] for the three outcomes.
    pub fn begin(&self, key: K) -> Flight<'_, K, V> {
        let mut inner = self.lock();
        if !inner.open {
            return Flight::Bypass;
        }
        match inner.flights.get_mut(&key) {
            None => {
                inner.flights.insert(
                    key.clone(),
                    Slot {
                        state: SlotState::Running,
                        waiters: 0,
                    },
                );
                return Flight::Leader(FlightLeader {
                    table: self,
                    key: Some(key),
                });
            }
            Some(slot) => match &slot.state {
                // A finished flight still draining its waiters: take the
                // value without registering.
                SlotState::Done(v) => return Flight::Joined(v.clone()),
                SlotState::Aborted => return Flight::Bypass,
                SlotState::Running => slot.waiters += 1,
            },
        }
        // Registered as a waiter: park until the leader finishes (or the
        // table closes). Predicate loop on this table's own guard — the
        // sanctioned wait shape.
        loop {
            inner = match self.done.wait(inner) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            if !inner.open {
                Self::detach(&mut inner, &key);
                return Flight::Bypass;
            }
            let Some(slot) = inner.flights.get(&key) else {
                // Defensive: a registered waiter pins the slot, so it
                // cannot vanish — but bypassing beats hanging if it did.
                return Flight::Bypass;
            };
            match &slot.state {
                SlotState::Running => continue,
                SlotState::Done(v) => {
                    let value = v.clone();
                    Self::detach(&mut inner, &key);
                    return Flight::Joined(value);
                }
                SlotState::Aborted => {
                    Self::detach(&mut inner, &key);
                    return Flight::Bypass;
                }
            }
        }
    }

    /// Unregisters a waiter; the last one out removes a finished slot so
    /// the table drains to empty.
    fn detach(inner: &mut FlightMap<K, V>, key: &K) {
        let remove = match inner.flights.get_mut(key) {
            Some(slot) => {
                slot.waiters = slot.waiters.saturating_sub(1);
                slot.waiters == 0 && !matches!(slot.state, SlotState::Running)
            }
            None => false,
        };
        if remove {
            inner.flights.remove(key);
        }
    }

    /// Leader completion: publish `Some(value)` or abort with `None`.
    fn finish(&self, key: &K, value: Option<V>) {
        let mut inner = self.lock();
        if let Some(slot) = inner.flights.get_mut(key) {
            if slot.waiters == 0 {
                // Nobody is parked; remove immediately so a later request
                // for the same key starts fresh.
                inner.flights.remove(key);
            } else {
                slot.state = match value {
                    Some(v) => SlotState::Done(v),
                    None => SlotState::Aborted,
                };
            }
        }
        drop(inner);
        self.done.notify_all();
    }

    /// Closes the table for shutdown: parked waiters wake and bypass, new
    /// [`SingleFlight::begin`] calls bypass, running leaders may still
    /// finish harmlessly. Idempotent.
    pub fn close(&self) {
        self.lock().open = false;
        self.done.notify_all();
    }

    /// Number of keys currently tracked (running or draining).
    pub fn len(&self) -> usize {
        // lint: allow(lock-order-cycle) — name-collision false positive: the inner `len` is HashMap::len on the guarded map, not a re-entrant SingleFlight::len
        self.lock().flights.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn leader_publishes_and_waiters_join() {
        let table: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let Flight::Leader(token) = table.begin(7) else {
            panic!("first arrival must lead");
        };
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || match table.begin(7) {
                    Flight::Joined(v) => v,
                    Flight::Leader(t) => {
                        // Raced in after the table drained: lead a fresh
                        // flight (the coalescing window simply closed).
                        t.publish(99);
                        99
                    }
                    Flight::Bypass => panic!("open table never bypasses"),
                })
            })
            .collect();
        // Give the waiters a moment to park (correctness does not depend
        // on it — late arrivals lead their own flight).
        std::thread::sleep(std::time::Duration::from_millis(20));
        token.publish(42);
        for w in waiters {
            let v = w.join().expect("waiter");
            assert!(v == 42 || v == 99, "unexpected value {v}");
        }
        assert!(table.is_empty(), "table must drain to empty");
    }

    #[test]
    fn dropped_leader_aborts_instead_of_stranding_waiters() {
        let table: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let Flight::Leader(token) = table.begin(1) else {
            panic!("leader");
        };
        let waiter = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || matches!(table.begin(1), Flight::Bypass | Flight::Leader(_)))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(token); // abort
        assert!(
            waiter.join().expect("waiter"),
            "waiter must bypass (or lead a fresh flight), never receive a value"
        );
        assert!(table.is_empty());
    }

    #[test]
    fn closed_table_bypasses_everyone() {
        let table: SingleFlight<u32, u32> = SingleFlight::new();
        table.close();
        assert!(matches!(table.begin(5), Flight::Bypass));
        table.close(); // idempotent
        assert!(table.is_empty());
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let table: SingleFlight<u32, u32> = SingleFlight::new();
        let Flight::Leader(a) = table.begin(1) else {
            panic!("a leads");
        };
        let Flight::Leader(b) = table.begin(2) else {
            panic!("b leads independently");
        };
        assert_eq!(table.len(), 2);
        a.publish(10);
        b.publish(20);
        assert!(table.is_empty());
    }

    #[test]
    fn sequential_flights_on_one_key_each_lead() {
        let table: SingleFlight<u32, u32> = SingleFlight::new();
        for round in 0..3 {
            let Flight::Leader(t) = table.begin(9) else {
                panic!("round {round} must lead after the previous drained");
            };
            t.publish(round);
        }
        assert!(table.is_empty());
    }
}

//! The server: accept loop, bounded work queue with load shedding, worker
//! pool, request routing, and graceful shutdown.
//!
//! Shape: one acceptor thread pushes connections into a bounded
//! [`WorkQueue`]; `workers` threads pop and handle one request per
//! connection. When the queue is full the *acceptor* answers 503
//! immediately — shedding costs a constant amount of work no matter how
//! slow the solvers are. Shutdown (via [`ServerHandle::shutdown`] or
//! `POST /admin/shutdown`) flips a flag, closes the queue, and drains:
//! already-queued requests are still answered, new ones get 503.
//! Everything is in-band `std::net` — the workspace forbids `unsafe`, so
//! there is no signal handler; process managers should use the admin
//! endpoint (or just SIGKILL, which is safe: the graph is immutable on
//! disk and all serving state is in memory).

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pcover_core::{Observer, Registry, SolveCtx, SolveError, SolveReport, SolverConfig, Variant};
use pcover_graph::delta::GraphDelta;
use pcover_graph::PreferenceGraph;

use crate::cache::{fingerprint, CacheKey, CacheOutcome, SolveCache, WarmKey, WarmStore};
use crate::http::{read_request, write_json, write_response, HttpError, Request, Status};
use crate::metrics::Metrics;
use crate::queue::WorkQueue;
use crate::snapshot::SnapshotManager;

/// Tunables for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded queue capacity; connections beyond it are shed with 503.
    pub queue_capacity: usize,
    /// Solve-cache capacity in reports (0 disables caching).
    pub cache_capacity: usize,
    /// Default per-request wall-clock deadline; `None` means no deadline
    /// unless the request carries `deadline_ms`.
    pub default_deadline: Option<Duration>,
    /// Per-connection socket read timeout (guards against stalled clients).
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 128,
            default_deadline: None,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// State shared by the acceptor, the workers, and the handle.
struct AppState {
    registry: Registry,
    snapshots: SnapshotManager,
    cache: SolveCache,
    warm: WarmStore,
    metrics: Metrics,
    queue: WorkQueue<TcpStream>,
    shutdown: AtomicBool,
    config: ServerConfig,
    local_addr: SocketAddr,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or hit `POST /admin/shutdown`) then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    state: Arc<AppState>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.state.local_addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// The service entry point.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds, spawns the acceptor and worker pool, and returns immediately.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn start(graph: PreferenceGraph, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(
            config
                .addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?,
        )?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(AppState {
            registry: Registry::builtin(),
            snapshots: SnapshotManager::new(graph),
            cache: SolveCache::new(config.cache_capacity),
            warm: WarmStore::new(config.cache_capacity),
            metrics: Metrics::default(),
            queue: WorkQueue::new(config.queue_capacity),
            shutdown: AtomicBool::new(false),
            config,
            local_addr,
        });

        // Pre-warm the process-wide rayon pool the parallel solvers use at
        // the default thread count, so the first request that dispatches a
        // pool-backed solver never pays pool construction on the hot path
        // (subsequent solves at the same count reuse the cached pool).
        let _ = pcover_core::pool::shared_pool(SolverConfig::default().threads);

        let workers = (0..state.config.workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("pcover-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("pcover-serve-acceptor".to_owned())
                .spawn(move || accept_loop(&listener, &state))?
        };

        Ok(ServerHandle {
            state,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// Like [`start`](Self::start) but loads the graph from a file first:
    /// a `.pcov` container (instant cold-start — the CSR is mmapped, not
    /// re-parsed) or a JSON graph. Returns the handle plus the load path
    /// used (`"mmap"`, `"pread"` or `"json"`).
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] for bind failures and for unreadable or corrupt
    /// graph files (store errors are wrapped).
    pub fn start_from_path(
        path: &std::path::Path,
        config: ServerConfig,
    ) -> std::io::Result<(ServerHandle, &'static str)> {
        let (graph, how) = pcover_store::read_graph_auto(path, pcover_store::OpenMode::Auto)
            .map_err(std::io::Error::other)?;
        let handle = Self::start(graph, config)?;
        Ok((handle, how))
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Current snapshot generation.
    pub fn generation(&self) -> u64 {
        self.state.snapshots.generation()
    }

    /// Signals shutdown: the queue closes (draining what is queued) and the
    /// acceptor stops. Idempotent; does not block — follow with
    /// [`ServerHandle::join`].
    pub fn shutdown(&self) {
        request_shutdown(&self.state);
    }

    /// Waits for the acceptor and every worker to finish. Call after
    /// [`ServerHandle::shutdown`] (or after something hit the admin
    /// endpoint), otherwise this blocks for the server's lifetime.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Flips the shutdown flag, closes the queue, and pokes the acceptor loose
/// with a throwaway connection to its own socket.
fn request_shutdown(state: &AppState) {
    if state.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    state.queue.close();
    // Unblock the acceptor's blocking `accept` — a connect that may
    // legitimately fail if the acceptor already exited.
    let _ = TcpStream::connect_timeout(&state.local_addr, Duration::from_millis(250));
}

fn accept_loop(listener: &TcpListener, state: &AppState) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_read_timeout(Some(state.config.read_timeout));
        let _ = stream.set_nodelay(true);
        if let Err(mut rejected) = state.queue.push(stream) {
            state
                .metrics
                .queue_shed_total
                .fetch_add(1, Ordering::Relaxed);
            // Shedding is the slow path by definition; a stack-local head
            // buffer here keeps the acceptor free of worker state.
            let mut head_buf = Vec::new();
            let _ = write_json(
                &mut rejected,
                &mut head_buf,
                Status::Unavailable,
                "{\"error\":\"overloaded: request queue full\"}",
            );
        }
    }
}

fn worker_loop(state: &AppState) {
    // One response-head buffer per worker, reused across every request
    // this worker answers (see `http::write_response`).
    // lint: allow(alloc-per-request) — allocated once per worker before the request loop: this IS the reuse buffer
    let mut head_buf = Vec::with_capacity(128);
    while let Some(mut stream) = state.queue.pop() {
        handle_connection(&mut stream, state, &mut head_buf);
    }
}

fn handle_connection(stream: &mut TcpStream, state: &AppState, head_buf: &mut Vec<u8>) {
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(HttpError::Io(_)) => return, // client went away; nothing to answer
        Err(e) => {
            state
                .metrics
                .bad_request_total
                .fetch_add(1, Ordering::Relaxed);
            let body = serde_json::json!({ "error": e.to_string() }).to_string();
            let _ = write_json(stream, head_buf, Status::BadRequest, &body);
            return;
        }
    };
    route(stream, &request, state, head_buf);
}

fn route(stream: &mut TcpStream, req: &Request, state: &AppState, head_buf: &mut Vec<u8>) {
    let started = Instant::now();
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let body = serde_json::json!({
                "status": "ok",
                "generation": state.snapshots.generation(),
            })
            .to_string();
            let _ = write_json(stream, head_buf, Status::Ok, &body);
        }
        ("GET", "/metrics") => {
            let mut text = state.metrics.render();
            use std::fmt::Write;
            let _ = writeln!(text, "snapshot_generation {}", state.snapshots.generation());
            let _ = writeln!(text, "queue_depth {}", state.queue.depth());
            let _ = writeln!(text, "queue_capacity {}", state.config.queue_capacity);
            let _ = writeln!(text, "cache_entries {}", state.cache.len());
            let _ = writeln!(text, "cache_evictions {}", state.cache.evictions());
            let _ = writeln!(text, "warm_states {}", state.warm.len());
            let _ = writeln!(text, "workers {}", state.config.workers);
            let _ = write_response(
                stream,
                head_buf,
                Status::Ok,
                "text/plain; charset=utf-8",
                text.as_bytes(),
            );
        }
        ("GET", "/solve") => {
            let outcome = solve_endpoint(req, state, SolveMode::Full);
            state.metrics.solve.observe(started.elapsed());
            respond(stream, head_buf, outcome);
        }
        ("GET", "/cover") => {
            let outcome = solve_endpoint(req, state, SolveMode::CoverOnly);
            state.metrics.cover.observe(started.elapsed());
            respond(stream, head_buf, outcome);
        }
        ("GET", "/minimize") => {
            let outcome = minimize_endpoint(req, state);
            state.metrics.minimize.observe(started.elapsed());
            respond(stream, head_buf, outcome);
        }
        ("POST", "/admin/delta") => {
            let outcome = delta_endpoint(req, state);
            state.metrics.delta.observe(started.elapsed());
            respond(stream, head_buf, outcome);
        }
        ("POST", "/admin/shutdown") => {
            let _ = write_json(
                stream,
                head_buf,
                Status::Ok,
                "{\"status\":\"shutting down\"}",
            );
            request_shutdown(state);
        }
        (
            _,
            "/healthz" | "/metrics" | "/solve" | "/cover" | "/minimize" | "/admin/delta"
            | "/admin/shutdown",
        ) => {
            let _ = write_json(
                stream,
                head_buf,
                Status::MethodNotAllowed,
                "{\"error\":\"method not allowed\"}",
            );
        }
        _ => {
            let _ = write_json(
                stream,
                head_buf,
                Status::NotFound,
                "{\"error\":\"no such endpoint\"}",
            );
        }
    }
}

fn respond(
    stream: &mut TcpStream,
    head_buf: &mut Vec<u8>,
    outcome: Result<String, (Status, String)>,
) {
    match outcome {
        Ok(body) => {
            let _ = write_json(stream, head_buf, Status::Ok, &body);
        }
        Err((status, message)) => {
            let body = serde_json::json!({ "error": message }).to_string();
            let _ = write_json(stream, head_buf, status, &body);
        }
    }
}

/// An [`Observer`] that cancels the solve once a wall-clock deadline
/// passes; polled by the harness between rounds (and on solver entry).
#[derive(Debug)]
pub struct DeadlineObserver {
    deadline: Instant,
}

impl DeadlineObserver {
    /// Cancels any solve still running at `deadline`.
    pub fn new(deadline: Instant) -> Self {
        Self { deadline }
    }
}

impl Observer for DeadlineObserver {
    fn cancelled(&mut self) -> bool {
        Instant::now() >= self.deadline
    }
}

/// What `/solve`-family endpoints return.
enum SolveMode {
    /// Full report: order + cover.
    Full,
    /// Just the cover value (cheaper response for dashboards).
    CoverOnly,
}

struct SolveParams {
    solver: String,
    variant: Variant,
    config: SolverConfig,
    deadline: Option<Duration>,
}

fn parse_common(req: &Request, state: &AppState) -> Result<SolveParams, (Status, String)> {
    let solver = req.param("algorithm").unwrap_or("lazy").to_owned();
    if state.registry.get(&solver).is_none() {
        return Err((
            Status::BadRequest,
            state.registry.unknown_algorithm_message(&solver),
        ));
    }
    let variant = match req.param("variant") {
        None => Variant::Normalized,
        Some(s) => Variant::parse(s)
            .ok_or_else(|| (Status::BadRequest, format!("unknown variant '{s}'")))?,
    };
    let mut config = SolverConfig::default();
    if let Some(s) = req.param("seed") {
        config.seed = s
            .parse()
            .map_err(|_| (Status::BadRequest, format!("bad seed '{s}'")))?;
    }
    if let Some(s) = req.param("threads") {
        config.threads = s
            .parse()
            .map_err(|_| (Status::BadRequest, format!("bad threads '{s}'")))?;
    }
    if let Some(s) = req.param("epsilon") {
        let eps: f64 = s
            .parse()
            .map_err(|_| (Status::BadRequest, format!("bad epsilon '{s}'")))?;
        config.epsilon = Some(eps);
    }
    let deadline = match req.param("deadline_ms") {
        Some(s) => {
            let ms: u64 = s
                .parse()
                .map_err(|_| (Status::BadRequest, format!("bad deadline_ms '{s}'")))?;
            Some(Duration::from_millis(ms))
        }
        None => state.config.default_deadline,
    };
    Ok(SolveParams {
        solver,
        variant,
        config,
        deadline,
    })
}

/// Runs (or cache-serves) one solve against the current snapshot. Returns
/// the usable report, the generation it belongs to, and how the cache
/// answered. The snapshot `Arc` is held for the whole solve, so a swap
/// mid-solve cannot mix generations.
fn cached_solve(
    state: &AppState,
    params: &SolveParams,
    k: usize,
) -> Result<(Arc<SolveReport>, u64, CacheOutcome), (Status, String)> {
    let snapshot = state.snapshots.current();
    let key = CacheKey {
        generation: snapshot.generation,
        solver: params.solver.clone(),
        variant: params.variant,
        k,
        fingerprint: fingerprint(&params.config),
    };
    let (cached, outcome) = state.cache.lookup(&key);
    if let Some(report) = cached {
        match outcome {
            CacheOutcome::Exact => {
                state.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            CacheOutcome::Prefix => {
                state
                    .metrics
                    .cache_prefix_hits
                    .fetch_add(1, Ordering::Relaxed);
            }
            CacheOutcome::Warm | CacheOutcome::Miss => {}
        }
        return Ok((report, snapshot.generation, outcome));
    }

    let spec = state
        .registry
        .get(&params.solver)
        .ok_or_else(|| (Status::Internal, "solver vanished from registry".to_owned()))?;

    // Warm path: a previous generation's state for this lineage, repaired
    // against the current snapshot through the registry spec — strictly
    // fewer gain recomputations, bit-identical answer. Any repair error
    // other than a deadline falls back to the cold path below.
    if spec.supports_warm_start() {
        let warm_key = WarmKey {
            solver: params.solver.clone(),
            variant: params.variant,
            fingerprint: key.fingerprint,
        };
        if let Some((warm_state, touched)) = state.warm.lookup(&warm_key, snapshot.generation) {
            if warm_state.accepts(params.variant, &snapshot.graph) {
                let result = match params.deadline {
                    Some(deadline) => {
                        let mut observer = DeadlineObserver::new(Instant::now() + deadline);
                        let mut ctx = SolveCtx::with_observer(params.config, &mut observer);
                        spec.solve_warm(
                            params.variant,
                            &snapshot.graph,
                            k,
                            &touched,
                            &warm_state,
                            &mut ctx,
                        )
                    }
                    None => {
                        let mut ctx = SolveCtx::new(params.config);
                        spec.solve_warm(
                            params.variant,
                            &snapshot.graph,
                            k,
                            &touched,
                            &warm_state,
                            &mut ctx,
                        )
                    }
                };
                match result {
                    Ok(warm) => {
                        state
                            .metrics
                            .warm_start_hits
                            .fetch_add(1, Ordering::Relaxed);
                        state
                            .metrics
                            .warm_rounds_reused
                            .fetch_add(warm.rounds_reused as u64, Ordering::Relaxed);
                        state
                            .metrics
                            .warm_rounds_repaired
                            .fetch_add(warm.rounds_repaired as u64, Ordering::Relaxed);
                        let report = Arc::new(warm.report);
                        state.cache.insert(key, Arc::clone(&report));
                        return Ok((report, snapshot.generation, CacheOutcome::Warm));
                    }
                    Err(SolveError::Cancelled) => {
                        state
                            .metrics
                            .deadline_cancelled_total
                            .fetch_add(1, Ordering::Relaxed);
                        return Err((
                            Status::DeadlineExceeded,
                            format!("deadline exceeded after {:?}", params.deadline),
                        ));
                    }
                    Err(_) => {}
                }
            }
        }
    }

    state.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    let result = match params.deadline {
        Some(deadline) => {
            let mut observer = DeadlineObserver::new(Instant::now() + deadline);
            let mut ctx = SolveCtx::with_observer(params.config, &mut observer);
            spec.solve(params.variant, &snapshot.graph, k, &mut ctx)
        }
        None => {
            let mut ctx = SolveCtx::new(params.config);
            spec.solve(params.variant, &snapshot.graph, k, &mut ctx)
        }
    };
    match result {
        Ok(report) => {
            let report = Arc::new(report);
            state.cache.insert(key, Arc::clone(&report));
            Ok((report, snapshot.generation, CacheOutcome::Miss))
        }
        Err(SolveError::Cancelled) => {
            state
                .metrics
                .deadline_cancelled_total
                .fetch_add(1, Ordering::Relaxed);
            Err((
                Status::DeadlineExceeded,
                format!("deadline exceeded after {:?}", params.deadline),
            ))
        }
        Err(e) => Err((Status::BadRequest, e.to_string())),
    }
}

fn solve_endpoint(
    req: &Request,
    state: &AppState,
    mode: SolveMode,
) -> Result<String, (Status, String)> {
    let params = parse_common(req, state)?;
    let k: usize = match req.param("k") {
        Some(s) => s
            .parse()
            .map_err(|_| (Status::BadRequest, format!("bad k '{s}'")))?,
        None => {
            return Err((
                Status::BadRequest,
                "missing required parameter k".to_owned(),
            ))
        }
    };
    let (report, generation, outcome) = cached_solve(state, &params, k)?;
    // A prefix donor has a larger budget; read the k-answer off its
    // trajectory (§3.2 incremental property).
    let (order, cover) = if report.k() == k {
        (report.order.as_slice(), report.cover)
    } else {
        report
            .prefix(k)
            .ok_or_else(|| (Status::Internal, "prefix donor shorter than k".to_owned()))?
    };
    let body = match mode {
        SolveMode::Full => serde_json::json!({
            "generation": generation,
            "algorithm": params.solver,
            "variant": params.variant.name(),
            "k": k,
            "cover": cover,
            "order": order.iter().map(|id| id.raw()).collect::<Vec<_>>(),
            "cache": outcome.as_str(),
        }),
        SolveMode::CoverOnly => serde_json::json!({
            "generation": generation,
            "algorithm": params.solver,
            "variant": params.variant.name(),
            "k": k,
            "cover": cover,
            "cache": outcome.as_str(),
        }),
    };
    Ok(body.to_string())
}

fn minimize_endpoint(req: &Request, state: &AppState) -> Result<String, (Status, String)> {
    let params = parse_common(req, state)?;
    let threshold: f64 = match req.param("threshold") {
        Some(s) => s
            .parse()
            .map_err(|_| (Status::BadRequest, format!("bad threshold '{s}'")))?,
        None => {
            return Err((
                Status::BadRequest,
                "missing required parameter threshold".to_owned(),
            ))
        }
    };
    if !(0.0..=1.0).contains(&threshold) {
        return Err((
            Status::BadRequest,
            format!("threshold {threshold} is not a probability in [0, 1]"),
        ));
    }
    if !crate::cache::is_prefix_reusable(&params.solver) {
        return Err((
            Status::BadRequest,
            format!(
                "algorithm '{}' has no incremental trajectory; minimize supports \
                 greedy-family solvers (e.g. lazy, greedy, parallel)",
                params.solver
            ),
        ));
    }
    // One full-budget solve answers every threshold — and seeds the cache
    // for all subsequent /solve and /cover calls at any k.
    let n = state.snapshots.current().graph.node_count();
    let (report, generation, outcome) = cached_solve(state, &params, n)?;
    let Some(k_min) = report.smallest_prefix_reaching(threshold) else {
        return Err((
            Status::BadRequest,
            format!(
                "cover threshold {threshold} unreachable; retaining everything covers only {}",
                report.cover
            ),
        ));
    };
    let (order, cover) = report
        .prefix(k_min)
        .ok_or_else(|| (Status::Internal, "minimize prefix out of range".to_owned()))?;
    let body = serde_json::json!({
        "generation": generation,
        "algorithm": params.solver,
        "variant": params.variant.name(),
        "threshold": threshold,
        "k": k_min,
        "cover": cover,
        "order": order.iter().map(|id| id.raw()).collect::<Vec<_>>(),
        "cache": outcome.as_str(),
    });
    Ok(body.to_string())
}

fn delta_endpoint(req: &Request, state: &AppState) -> Result<String, (Status, String)> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| (Status::BadRequest, "delta body is not UTF-8".to_owned()))?;
    let delta = GraphDelta::from_json_str(text)
        .map_err(|e| (Status::BadRequest, format!("bad delta: {e}")))?;
    let receipt = state
        .snapshots
        .apply_delta_swap(&delta)
        .map_err(|e| (Status::BadRequest, format!("delta rejected: {e}")))?;
    let generation = receipt.new.generation;
    let touched = delta.touched_nodes(&receipt.old.graph);

    // An empty touched frontier means the swap was a bitwise identity:
    // every cached answer is still valid and migrates to the new
    // generation instead of being dropped.
    if touched.is_empty() {
        let survived = state
            .cache
            .migrate_generation(receipt.old.generation, generation);
        state
            .metrics
            .cache_survived_swap
            .fetch_add(survived, Ordering::Relaxed);
    }
    // Harvest warm states from the superseded generation's warm-capable
    // entries (their orders + the old graph's round-0 gains), then record
    // the swap in the warm store — its generation guard keeps racing
    // bookkeeping sound.
    let fresh = state
        .cache
        .harvest_warm(receipt.old.generation, &receipt.old.graph, |name| {
            state
                .registry
                .get(name)
                .is_some_and(|spec| spec.supports_warm_start())
        });
    state
        .warm
        .apply_swap(receipt.old.generation, generation, &touched, fresh);
    state.cache.retain_generation(generation);
    state
        .metrics
        .delta_applied_total
        .fetch_add(1, Ordering::Relaxed);
    let body = serde_json::json!({
        "generation": generation,
        "changes": delta.len(),
    });
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_observer_flips_after_the_deadline() {
        let mut obs = DeadlineObserver::new(Instant::now() - Duration::from_millis(1));
        assert!(obs.cancelled());
        let mut obs = DeadlineObserver::new(Instant::now() + Duration::from_secs(60));
        assert!(!obs.cancelled());
    }
}

//! The server: accept loop, bounded work queue with load shedding, worker
//! pool, keep-alive request loop, single-flight solve coalescing, request
//! routing, and graceful shutdown.
//!
//! Shape: one acceptor thread pushes connections into a bounded
//! [`WorkQueue`]; `workers` threads pop a connection each and serve it
//! with an HTTP/1.1 keep-alive loop — many requests per connection,
//! bounded by [`ServerConfig::max_requests_per_connection`] and an
//! [`ServerConfig::idle_timeout`] between requests, honoring the
//! client's `Connection: close`/`keep-alive` preference. Steady-state
//! request handling allocates nothing: the response head renders into a
//! per-worker buffer and request bytes land in a per-worker
//! [`ConnBuffer`], both reused across connections.
//!
//! Concurrent identical solves coalesce through a [`SingleFlight`]
//! table: the first arrival computes, the rest park and share the one
//! result (`coalesced_hits` in `/metrics`) — a cache stampede costs one
//! solve instead of N.
//!
//! When the queue is full the *acceptor* answers 503 immediately —
//! shedding costs a constant amount of work no matter how slow the
//! solvers are. Shutdown (via [`ServerHandle::shutdown`] or
//! `POST /admin/shutdown`) flips a flag, closes the queue and the
//! in-flight table, and drains: already-queued requests are still
//! answered, new ones get 503.
//! Everything is in-band `std::net` — the workspace forbids `unsafe`, so
//! there is no signal handler; process managers should use the admin
//! endpoint (or just SIGKILL, which is safe: the graph is immutable on
//! disk and all serving state is in memory).

use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pcover_core::{Observer, Registry, SolveCtx, SolveError, SolveReport, SolverConfig, Variant};
use pcover_graph::delta::GraphDelta;
use pcover_graph::PreferenceGraph;

use crate::cache::{fingerprint, CacheKey, CacheOutcome, SolveCache, WarmKey, WarmStore};
use crate::flight::{Flight, SingleFlight};
use crate::http::{write_json, write_response, ConnBuffer, HttpError, Request, Status};
use crate::metrics::Metrics;
use crate::queue::WorkQueue;
use crate::snapshot::{Snapshot, SnapshotManager};

/// Tunables for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded queue capacity; connections beyond it are shed with 503.
    pub queue_capacity: usize,
    /// Solve-cache capacity in reports (0 disables caching).
    pub cache_capacity: usize,
    /// Default per-request wall-clock deadline; `None` means no deadline
    /// unless the request carries `deadline_ms`.
    pub default_deadline: Option<Duration>,
    /// Socket read timeout while a request is being received (guards
    /// against stalled clients mid-request).
    pub read_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before the worker hangs up and moves on.
    pub idle_timeout: Duration,
    /// Requests served per connection before the server closes it (the
    /// final response says `Connection: close`); values below 1 behave
    /// as 1.
    pub max_requests_per_connection: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 128,
            default_deadline: None,
            read_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1000,
        }
    }
}

/// State shared by the acceptor, the workers, and the handle.
struct AppState {
    registry: Registry,
    snapshots: SnapshotManager,
    cache: SolveCache,
    warm: WarmStore,
    flight: SingleFlight<FlightKey, FlightResult>,
    metrics: Metrics,
    queue: WorkQueue<TcpStream>,
    shutdown: AtomicBool,
    config: ServerConfig,
    local_addr: SocketAddr,
}

/// What one solve's leader publishes to its coalesced followers.
type FlightResult = Result<Arc<SolveReport>, (Status, String)>;

/// Single-flight identity: the cache key plus the effective deadline, so
/// a tight-deadline request never receives (or delays behind) a
/// no-deadline solve for the same answer.
#[derive(Clone, PartialEq, Eq, Hash)]
struct FlightKey {
    key: CacheKey,
    deadline_ms: Option<u64>,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or hit `POST /admin/shutdown`) then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    state: Arc<AppState>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.state.local_addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// The service entry point.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds, spawns the acceptor and worker pool, and returns immediately.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn start(graph: PreferenceGraph, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(
            config
                .addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?,
        )?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(AppState {
            registry: Registry::builtin(),
            snapshots: SnapshotManager::new(graph),
            cache: SolveCache::new(config.cache_capacity),
            warm: WarmStore::new(config.cache_capacity),
            flight: SingleFlight::new(),
            metrics: Metrics::default(),
            queue: WorkQueue::new(config.queue_capacity),
            shutdown: AtomicBool::new(false),
            config,
            local_addr,
        });

        // Pre-warm the process-wide rayon pool the parallel solvers use at
        // the default thread count, so the first request that dispatches a
        // pool-backed solver never pays pool construction on the hot path
        // (subsequent solves at the same count reuse the cached pool).
        let _ = pcover_core::pool::shared_pool(SolverConfig::default().threads);

        let workers = (0..state.config.workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("pcover-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("pcover-serve-acceptor".to_owned())
                .spawn(move || accept_loop(&listener, &state))?
        };

        Ok(ServerHandle {
            state,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// Like [`start`](Self::start) but loads the graph from a file first:
    /// a `.pcov` container (instant cold-start — the CSR is mmapped, not
    /// re-parsed) or a JSON graph. Returns the handle plus the load path
    /// used (`"mmap"`, `"pread"` or `"json"`).
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] for bind failures and for unreadable or corrupt
    /// graph files (store errors are wrapped).
    pub fn start_from_path(
        path: &std::path::Path,
        config: ServerConfig,
    ) -> std::io::Result<(ServerHandle, &'static str)> {
        let (graph, how) = pcover_store::read_graph_auto(path, pcover_store::OpenMode::Auto)
            .map_err(std::io::Error::other)?;
        let handle = Self::start(graph, config)?;
        Ok((handle, how))
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Current snapshot generation.
    pub fn generation(&self) -> u64 {
        self.state.snapshots.generation()
    }

    /// Signals shutdown: the queue closes (draining what is queued) and the
    /// acceptor stops. Idempotent; does not block — follow with
    /// [`ServerHandle::join`].
    pub fn shutdown(&self) {
        request_shutdown(&self.state);
    }

    /// Waits for the acceptor and every worker to finish. Call after
    /// [`ServerHandle::shutdown`] (or after something hit the admin
    /// endpoint), otherwise this blocks for the server's lifetime.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Flips the shutdown flag, closes the queue and the in-flight table, and
/// pokes the acceptor loose with a throwaway connection to its own socket.
fn request_shutdown(state: &AppState) {
    if state.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    state.queue.close();
    // Parked single-flight waiters wake and solve for themselves, so the
    // drain cannot strand a request behind a leader that never returns.
    state.flight.close();
    // Unblock the acceptor's blocking `accept` — a connect that may
    // legitimately fail if the acceptor already exited.
    let _ = TcpStream::connect_timeout(&state.local_addr, Duration::from_millis(250));
}

fn accept_loop(listener: &TcpListener, state: &AppState) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(state.config.read_timeout));
        let _ = stream.set_nodelay(true);
        if let Err(mut rejected) = state.queue.push(stream) {
            state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
            state
                .metrics
                .queue_shed_total
                .fetch_add(1, Ordering::Relaxed);
            // Shedding is the slow path by definition; a stack-local head
            // buffer here keeps the acceptor free of worker state.
            let mut head_buf = Vec::new();
            let _ = write_json(
                &mut rejected,
                &mut head_buf,
                Status::Unavailable,
                true,
                "{\"error\":\"overloaded: request queue full\"}",
            );
        }
    }
}

fn worker_loop(state: &AppState) {
    // One response-head buffer per worker, reused across every request
    // this worker answers (see `http::write_response`).
    // lint: allow(alloc-per-request) — allocated once per worker before the request loop: this IS the reuse buffer
    let mut head_buf = Vec::with_capacity(128);
    // One connection read buffer per worker, reused across connections and
    // requests alike (zero-capacity until the first request grows it, so
    // this is not a per-request allocation either).
    let mut conn = ConnBuffer::new();
    while let Some(mut stream) = state.queue.pop() {
        handle_connection(&mut stream, state, &mut head_buf, &mut conn);
    }
}

/// The keep-alive request loop: serve requests off one connection until
/// the client asks to close (or hangs up), the per-connection request cap
/// is reached, the idle timeout fires between requests, or the server
/// starts shutting down. A malformed or oversized request is answered
/// (400/413, `Connection: close`) and the connection dropped — the stream
/// can no longer be trusted to be framed.
fn handle_connection(
    stream: &mut TcpStream,
    state: &AppState,
    head_buf: &mut Vec<u8>,
    conn: &mut ConnBuffer,
) {
    conn.reset();
    state
        .metrics
        .connections_total
        .fetch_add(1, Ordering::Relaxed);
    let cap = state.config.max_requests_per_connection.max(1);
    let mut served = 0usize;
    loop {
        if served == 1 {
            // From the second request on, the socket waits at most the
            // idle timeout between requests; a timeout surfaces as
            // `HttpError::Io` below and closes quietly. Set once per
            // connection — it is a syscall, and the keep-alive loop is
            // the hot path.
            let _ = stream.set_read_timeout(Some(state.config.idle_timeout));
        }
        let request = match conn.read_request(stream) {
            Ok(r) => r,
            // Client went away (clean EOF, reset, or idle/read timeout);
            // nothing to answer.
            Err(HttpError::Io(_) | HttpError::Closed) => return,
            Err(e) => {
                state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                state
                    .metrics
                    .bad_request_total
                    .fetch_add(1, Ordering::Relaxed);
                let status = match e {
                    HttpError::TooLarge(_) => Status::PayloadTooLarge,
                    _ => Status::BadRequest,
                };
                let body = serde_json::json!({ "error": e.to_string() }).to_string();
                let _ = write_json(stream, head_buf, status, true, &body);
                return;
            }
        };
        served += 1;
        state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        if served > 1 {
            state
                .metrics
                .keepalive_reuse_total
                .fetch_add(1, Ordering::Relaxed);
        }
        // Decide the connection's fate *before* answering so the response
        // can carry the truthful `Connection:` disposition.
        let close = !request.keep_alive || served >= cap || state.shutdown.load(Ordering::SeqCst);
        if route(stream, &request, state, head_buf, close) || close {
            return;
        }
    }
}

/// Routes one request. `close` is the connection disposition every
/// response must carry. Returns `true` when the connection must close
/// regardless of `close` (the shutdown endpoint was hit).
fn route(
    stream: &mut TcpStream,
    req: &Request,
    state: &AppState,
    head_buf: &mut Vec<u8>,
    close: bool,
) -> bool {
    let started = Instant::now();
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let body = serde_json::json!({
                "status": "ok",
                "generation": state.snapshots.generation(),
            })
            .to_string();
            let _ = write_json(stream, head_buf, Status::Ok, close, &body);
        }
        ("GET", "/metrics") => {
            let mut text = state.metrics.render();
            use std::fmt::Write;
            let _ = writeln!(text, "snapshot_generation {}", state.snapshots.generation());
            let _ = writeln!(text, "queue_depth {}", state.queue.depth());
            let _ = writeln!(text, "queue_capacity {}", state.config.queue_capacity);
            let _ = writeln!(text, "cache_entries {}", state.cache.len());
            let _ = writeln!(text, "cache_evictions {}", state.cache.evictions());
            let _ = writeln!(text, "warm_states {}", state.warm.len());
            let _ = writeln!(text, "inflight_solves {}", state.flight.len());
            let _ = writeln!(text, "workers {}", state.config.workers);
            let _ = write_response(
                stream,
                head_buf,
                Status::Ok,
                "text/plain; charset=utf-8",
                close,
                text.as_bytes(),
            );
        }
        ("GET", "/solve") => {
            let outcome = solve_endpoint(req, state, SolveMode::Full);
            state.metrics.solve.observe(started.elapsed());
            respond(stream, head_buf, close, outcome);
        }
        ("GET", "/cover") => {
            let outcome = solve_endpoint(req, state, SolveMode::CoverOnly);
            state.metrics.cover.observe(started.elapsed());
            respond(stream, head_buf, close, outcome);
        }
        ("GET", "/minimize") => {
            let outcome = minimize_endpoint(req, state);
            state.metrics.minimize.observe(started.elapsed());
            respond(stream, head_buf, close, outcome);
        }
        ("POST", "/admin/delta") => {
            let outcome = delta_endpoint(req, state);
            state.metrics.delta.observe(started.elapsed());
            respond(stream, head_buf, close, outcome);
        }
        ("POST", "/admin/shutdown") => {
            let _ = write_json(
                stream,
                head_buf,
                Status::Ok,
                true,
                "{\"status\":\"shutting down\"}",
            );
            request_shutdown(state);
            return true;
        }
        (
            _,
            "/healthz" | "/metrics" | "/solve" | "/cover" | "/minimize" | "/admin/delta"
            | "/admin/shutdown",
        ) => {
            let _ = write_json(
                stream,
                head_buf,
                Status::MethodNotAllowed,
                close,
                "{\"error\":\"method not allowed\"}",
            );
        }
        _ => {
            let _ = write_json(
                stream,
                head_buf,
                Status::NotFound,
                close,
                "{\"error\":\"no such endpoint\"}",
            );
        }
    }
    false
}

fn respond(
    stream: &mut TcpStream,
    head_buf: &mut Vec<u8>,
    close: bool,
    outcome: Result<String, (Status, String)>,
) {
    match outcome {
        Ok(body) => {
            let _ = write_json(stream, head_buf, Status::Ok, close, &body);
        }
        Err((status, message)) => {
            let body = serde_json::json!({ "error": message }).to_string();
            let _ = write_json(stream, head_buf, status, close, &body);
        }
    }
}

/// An [`Observer`] that cancels the solve once a wall-clock deadline
/// passes; polled by the harness between rounds (and on solver entry).
#[derive(Debug)]
pub struct DeadlineObserver {
    deadline: Instant,
}

impl DeadlineObserver {
    /// Cancels any solve still running at `deadline`.
    pub fn new(deadline: Instant) -> Self {
        Self { deadline }
    }
}

impl Observer for DeadlineObserver {
    fn cancelled(&mut self) -> bool {
        Instant::now() >= self.deadline
    }
}

/// What `/solve`-family endpoints return.
enum SolveMode {
    /// Full report: order + cover.
    Full,
    /// Just the cover value (cheaper response for dashboards).
    CoverOnly,
}

struct SolveParams {
    solver: String,
    variant: Variant,
    config: SolverConfig,
    deadline: Option<Duration>,
}

fn parse_common(req: &Request, state: &AppState) -> Result<SolveParams, (Status, String)> {
    let solver = req.param("algorithm").unwrap_or("lazy").to_owned();
    if state.registry.get(&solver).is_none() {
        return Err((
            Status::BadRequest,
            state.registry.unknown_algorithm_message(&solver),
        ));
    }
    let variant = match req.param("variant") {
        None => Variant::Normalized,
        Some(s) => Variant::parse(s)
            .ok_or_else(|| (Status::BadRequest, format!("unknown variant '{s}'")))?,
    };
    let mut config = SolverConfig::default();
    if let Some(s) = req.param("seed") {
        config.seed = s
            .parse()
            .map_err(|_| (Status::BadRequest, format!("bad seed '{s}'")))?;
    }
    if let Some(s) = req.param("threads") {
        config.threads = s
            .parse()
            .map_err(|_| (Status::BadRequest, format!("bad threads '{s}'")))?;
    }
    if let Some(s) = req.param("epsilon") {
        let eps: f64 = s
            .parse()
            .map_err(|_| (Status::BadRequest, format!("bad epsilon '{s}'")))?;
        config.epsilon = Some(eps);
    }
    let deadline = match req.param("deadline_ms") {
        Some(s) => {
            let ms: u64 = s
                .parse()
                .map_err(|_| (Status::BadRequest, format!("bad deadline_ms '{s}'")))?;
            Some(Duration::from_millis(ms))
        }
        None => state.config.default_deadline,
    };
    Ok(SolveParams {
        solver,
        variant,
        config,
        deadline,
    })
}

/// Runs (or cache-serves) one solve against the current snapshot. Returns
/// the usable report, the generation it belongs to, and how the cache
/// answered. The snapshot `Arc` is held for the whole solve, so a swap
/// mid-solve cannot mix generations.
///
/// On a cache miss the request enters the [`SingleFlight`] table: the
/// first arrival for a `(cache key, deadline)` pair solves (warm or
/// cold, below) and publishes; concurrent arrivals park and receive the
/// published result as [`CacheOutcome::Coalesced`] — N racing identical
/// requests cost 1 solve, not N.
fn cached_solve(
    state: &AppState,
    params: &SolveParams,
    k: usize,
) -> Result<(Arc<SolveReport>, u64, CacheOutcome), (Status, String)> {
    let snapshot = state.snapshots.current();
    let key = CacheKey {
        generation: snapshot.generation,
        solver: params.solver.clone(),
        variant: params.variant,
        k,
        fingerprint: fingerprint(&params.config),
    };
    let (cached, outcome) = state.cache.lookup(&key);
    if let Some(report) = cached {
        match outcome {
            CacheOutcome::Exact => {
                state.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            CacheOutcome::Prefix => {
                state
                    .metrics
                    .cache_prefix_hits
                    .fetch_add(1, Ordering::Relaxed);
            }
            CacheOutcome::Warm | CacheOutcome::Miss | CacheOutcome::Coalesced => {}
        }
        return Ok((report, snapshot.generation, outcome));
    }

    let flight_key = FlightKey {
        key: key.clone(),
        deadline_ms: params
            .deadline
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
    };
    match state.flight.begin(flight_key) {
        Flight::Joined(result) => {
            state.metrics.coalesced_hits.fetch_add(1, Ordering::Relaxed);
            result.map(|report| (report, snapshot.generation, CacheOutcome::Coalesced))
        }
        Flight::Leader(token) => {
            let solved = solve_uncached(state, params, k, &snapshot, key);
            token.publish(
                solved
                    .as_ref()
                    .map(|(report, _)| Arc::clone(report))
                    .map_err(Clone::clone),
            );
            solved.map(|(report, outcome)| (report, snapshot.generation, outcome))
        }
        // Table closed (shutdown drain) or the previous leader panicked:
        // solve independently rather than hang or propagate.
        Flight::Bypass => solve_uncached(state, params, k, &snapshot, key)
            .map(|(report, outcome)| (report, snapshot.generation, outcome)),
    }
}

/// The warm-or-cold solve behind [`cached_solve`], run by single-flight
/// leaders (and bypassers): repairs a harvested warm state when the
/// solver supports it, otherwise solves cold; inserts the answer into the
/// cache either way.
fn solve_uncached(
    state: &AppState,
    params: &SolveParams,
    k: usize,
    snapshot: &Arc<Snapshot>,
    key: CacheKey,
) -> Result<(Arc<SolveReport>, CacheOutcome), (Status, String)> {
    let spec = state
        .registry
        .get(&params.solver)
        .ok_or_else(|| (Status::Internal, "solver vanished from registry".to_owned()))?;

    // Warm path: a previous generation's state for this lineage, repaired
    // against the current snapshot through the registry spec — strictly
    // fewer gain recomputations, bit-identical answer. Any repair error
    // other than a deadline falls back to the cold path below.
    if spec.supports_warm_start() {
        let warm_key = WarmKey {
            solver: params.solver.clone(),
            variant: params.variant,
            fingerprint: key.fingerprint,
        };
        if let Some((warm_state, touched)) = state.warm.lookup(&warm_key, snapshot.generation) {
            if warm_state.accepts(params.variant, &snapshot.graph) {
                let result = match params.deadline {
                    Some(deadline) => {
                        let mut observer = DeadlineObserver::new(Instant::now() + deadline);
                        let mut ctx = SolveCtx::with_observer(params.config, &mut observer);
                        spec.solve_warm(
                            params.variant,
                            &snapshot.graph,
                            k,
                            &touched,
                            &warm_state,
                            &mut ctx,
                        )
                    }
                    None => {
                        let mut ctx = SolveCtx::new(params.config);
                        spec.solve_warm(
                            params.variant,
                            &snapshot.graph,
                            k,
                            &touched,
                            &warm_state,
                            &mut ctx,
                        )
                    }
                };
                match result {
                    Ok(warm) => {
                        state
                            .metrics
                            .warm_start_hits
                            .fetch_add(1, Ordering::Relaxed);
                        state
                            .metrics
                            .warm_rounds_reused
                            .fetch_add(warm.rounds_reused as u64, Ordering::Relaxed);
                        state
                            .metrics
                            .warm_rounds_repaired
                            .fetch_add(warm.rounds_repaired as u64, Ordering::Relaxed);
                        let report = Arc::new(warm.report);
                        state.cache.insert(key, Arc::clone(&report));
                        return Ok((report, CacheOutcome::Warm));
                    }
                    Err(SolveError::Cancelled) => {
                        state
                            .metrics
                            .deadline_cancelled_total
                            .fetch_add(1, Ordering::Relaxed);
                        return Err((
                            Status::DeadlineExceeded,
                            format!("deadline exceeded after {:?}", params.deadline),
                        ));
                    }
                    Err(_) => {}
                }
            }
        }
    }

    state.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    let result = match params.deadline {
        Some(deadline) => {
            let mut observer = DeadlineObserver::new(Instant::now() + deadline);
            let mut ctx = SolveCtx::with_observer(params.config, &mut observer);
            spec.solve(params.variant, &snapshot.graph, k, &mut ctx)
        }
        None => {
            let mut ctx = SolveCtx::new(params.config);
            spec.solve(params.variant, &snapshot.graph, k, &mut ctx)
        }
    };
    match result {
        Ok(report) => {
            let report = Arc::new(report);
            state.cache.insert(key, Arc::clone(&report));
            Ok((report, CacheOutcome::Miss))
        }
        Err(SolveError::Cancelled) => {
            state
                .metrics
                .deadline_cancelled_total
                .fetch_add(1, Ordering::Relaxed);
            Err((
                Status::DeadlineExceeded,
                format!("deadline exceeded after {:?}", params.deadline),
            ))
        }
        Err(e) => Err((Status::BadRequest, e.to_string())),
    }
}

fn solve_endpoint(
    req: &Request,
    state: &AppState,
    mode: SolveMode,
) -> Result<String, (Status, String)> {
    let params = parse_common(req, state)?;
    let k: usize = match req.param("k") {
        Some(s) => s
            .parse()
            .map_err(|_| (Status::BadRequest, format!("bad k '{s}'")))?,
        None => {
            return Err((
                Status::BadRequest,
                "missing required parameter k".to_owned(),
            ))
        }
    };
    let (report, generation, outcome) = cached_solve(state, &params, k)?;
    // A prefix donor has a larger budget; read the k-answer off its
    // trajectory (§3.2 incremental property).
    let (order, cover) = if report.k() == k {
        (report.order.as_slice(), report.cover)
    } else {
        report
            .prefix(k)
            .ok_or_else(|| (Status::Internal, "prefix donor shorter than k".to_owned()))?
    };
    // Rendered directly rather than through a `serde_json::Value` tree:
    // the order array carries up to k ids, and building k boxed `Value`s
    // per response was the dominant per-request cost for cache-hit
    // traffic (every field here is a number or a registry-validated
    // token, so no escaping is needed).
    let mut body = String::new();
    let _ = write!(
        body,
        "{{\"generation\":{generation},\"algorithm\":\"{}\",\"variant\":\"{}\",\"k\":{k},\"cover\":",
        params.solver,
        params.variant.name(),
    );
    push_f64(&mut body, cover);
    if matches!(mode, SolveMode::Full) {
        body.push_str(",\"order\":[");
        for (i, id) in order.iter().enumerate() {
            let _ = write!(body, "{}{}", if i > 0 { "," } else { "" }, id.raw());
        }
        body.push(']');
    }
    let _ = write!(body, ",\"cache\":\"{}\"}}", outcome.as_str());
    Ok(body)
}

/// Appends `v` exactly as the workspace JSON serializer renders floats
/// (non-finite → `null`, integral keeps a trailing `.0`), so hand-rendered
/// response bodies stay byte-compatible with `serde_json`-rendered ones.
#[allow(clippy::float_cmp)] // integrality test must match the serializer's bit-exact comparison
fn push_f64(out: &mut String, v: f64) {
    let _ = if !v.is_finite() {
        write!(out, "null")
    } else if v == v.trunc() && v.abs() < 1e15 {
        write!(out, "{v:.1}")
    } else {
        write!(out, "{v}")
    };
}

fn minimize_endpoint(req: &Request, state: &AppState) -> Result<String, (Status, String)> {
    let params = parse_common(req, state)?;
    let threshold: f64 = match req.param("threshold") {
        Some(s) => s
            .parse()
            .map_err(|_| (Status::BadRequest, format!("bad threshold '{s}'")))?,
        None => {
            return Err((
                Status::BadRequest,
                "missing required parameter threshold".to_owned(),
            ))
        }
    };
    if !(0.0..=1.0).contains(&threshold) {
        return Err((
            Status::BadRequest,
            format!("threshold {threshold} is not a probability in [0, 1]"),
        ));
    }
    if !crate::cache::is_prefix_reusable(&params.solver) {
        return Err((
            Status::BadRequest,
            format!(
                "algorithm '{}' has no incremental trajectory; minimize supports \
                 greedy-family solvers (e.g. lazy, greedy, parallel)",
                params.solver
            ),
        ));
    }
    // One full-budget solve answers every threshold — and seeds the cache
    // for all subsequent /solve and /cover calls at any k.
    let n = state.snapshots.current().graph.node_count();
    let (report, generation, outcome) = cached_solve(state, &params, n)?;
    let Some(k_min) = report.smallest_prefix_reaching(threshold) else {
        return Err((
            Status::BadRequest,
            format!(
                "cover threshold {threshold} unreachable; retaining everything covers only {}",
                report.cover
            ),
        ));
    };
    let (order, cover) = report
        .prefix(k_min)
        .ok_or_else(|| (Status::Internal, "minimize prefix out of range".to_owned()))?;
    // Hand-rendered for the same reason as `solve_endpoint`: the retained
    // set can run to thousands of ids, and a `Value` tree per response is
    // the expensive way to print integers.
    let mut body = String::new();
    let _ = write!(
        body,
        "{{\"generation\":{generation},\"algorithm\":\"{}\",\"variant\":\"{}\",\"threshold\":",
        params.solver,
        params.variant.name(),
    );
    push_f64(&mut body, threshold);
    let _ = write!(body, ",\"k\":{k_min},\"cover\":");
    push_f64(&mut body, cover);
    body.push_str(",\"order\":[");
    for (i, id) in order.iter().enumerate() {
        let _ = write!(body, "{}{}", if i > 0 { "," } else { "" }, id.raw());
    }
    let _ = write!(body, "],\"cache\":\"{}\"}}", outcome.as_str());
    Ok(body)
}

fn delta_endpoint(req: &Request, state: &AppState) -> Result<String, (Status, String)> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| (Status::BadRequest, "delta body is not UTF-8".to_owned()))?;
    let delta = GraphDelta::from_json_str(text)
        .map_err(|e| (Status::BadRequest, format!("bad delta: {e}")))?;
    let receipt = state
        .snapshots
        .apply_delta_swap(&delta)
        .map_err(|e| (Status::BadRequest, format!("delta rejected: {e}")))?;
    let generation = receipt.new.generation;
    let touched = delta.touched_nodes(&receipt.old.graph);

    // An empty touched frontier means the swap was a bitwise identity:
    // every cached answer is still valid and migrates to the new
    // generation instead of being dropped.
    if touched.is_empty() {
        let survived = state
            .cache
            .migrate_generation(receipt.old.generation, generation);
        state
            .metrics
            .cache_survived_swap
            .fetch_add(survived, Ordering::Relaxed);
    }
    // Harvest warm states from the superseded generation's warm-capable
    // entries (their orders + the old graph's round-0 gains), then record
    // the swap in the warm store — its generation guard keeps racing
    // bookkeeping sound.
    let fresh = state
        .cache
        .harvest_warm(receipt.old.generation, &receipt.old.graph, |name| {
            state
                .registry
                .get(name)
                .is_some_and(|spec| spec.supports_warm_start())
        });
    state
        .warm
        .apply_swap(receipt.old.generation, generation, &touched, fresh);
    state.cache.retain_generation(generation);
    state
        .metrics
        .delta_applied_total
        .fetch_add(1, Ordering::Relaxed);
    let body = serde_json::json!({
        "generation": generation,
        "changes": delta.len(),
    });
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_observer_flips_after_the_deadline() {
        let mut obs = DeadlineObserver::new(Instant::now() - Duration::from_millis(1));
        assert!(obs.cancelled());
        let mut obs = DeadlineObserver::new(Instant::now() + Duration::from_secs(60));
        assert!(!obs.cancelled());
    }
}

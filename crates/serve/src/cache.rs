//! The solve cache: LRU over finished [`SolveReport`]s with trajectory
//! reuse.
//!
//! Reports from greedy-family solvers are *incremental* (paper §3.2): the
//! first `k'` selections of a budget-`k` run are exactly the budget-`k'`
//! answer, and the smallest prefix reaching a cover threshold answers the
//! complementary minimization problem. The cache exploits this: a stored
//! report for `(generation, solver, variant, fingerprint, k)` satisfies
//!
//! * an **exact** lookup for the same key,
//! * a **prefix** lookup for any `k' ≤ k` under the same solver/config —
//!   but only for solvers whose output is a true prefix chain (see
//!   [`is_prefix_reusable`]; stochastic/sieve/brute-force outputs depend
//!   on `k` itself and must not be truncated), and
//! * any `/minimize` threshold query against a full-budget report.
//!
//! Entries are keyed by snapshot generation, so a hot-swap implicitly
//! invalidates every cached answer; [`SolveCache::retain_generation`]
//! additionally drops stale entries eagerly to free memory.

use std::collections::HashMap;
use std::sync::Arc;

use pcover_core::{SolveReport, SolverConfig, Variant};

use crate::sync::{Mutex, MutexGuard};

/// Cache key: everything that determines a solve's output.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Snapshot generation the solve ran against.
    pub generation: u64,
    /// Registry solver name (`"lazy"`, …).
    pub solver: String,
    /// Cover variant.
    pub variant: Variant,
    /// Requested budget.
    pub k: usize,
    /// [`fingerprint`] of the [`SolverConfig`].
    pub fingerprint: u64,
}

/// FNV-1a over every [`SolverConfig`] field, floats via `to_bits` — two
/// configs with the same fingerprint produce bit-identical solves (the
/// determinism the conformance suite pins down).
pub fn fingerprint(config: &SolverConfig) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(&(config.threads as u64).to_le_bytes());
    mix(&config.seed.to_le_bytes());
    match config.epsilon {
        Some(e) => {
            mix(&[1]);
            mix(&e.to_bits().to_le_bytes());
        }
        None => mix(&[0]),
    }
    mix(&(config.random_attempts as u64).to_le_bytes());
    mix(&(config.max_swaps as u64).to_le_bytes());
    mix(&config.max_subsets.to_le_bytes());
    h
}

/// Whether a solver's budget-`k` report is a prefix chain: its first `k'`
/// selections equal its budget-`k'` report for every `k' ≤ k`.
///
/// True for the greedy family (the paper's incremental property) and the
/// sorted top-k baselines; false for solvers whose per-round behaviour
/// depends on `k` (stochastic sampling rates, sieve thresholds, partitioned
/// merge budgets) or that optimize the set as a whole (brute force, local
/// search, random best-of, the VC reduction).
pub fn is_prefix_reusable(solver: &str) -> bool {
    matches!(
        solver,
        "greedy" | "greedy-lowmem" | "lazy" | "parallel" | "topk-w" | "topk-c"
    )
}

/// How a lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Same key, stored report returned as-is.
    Exact,
    /// A stored report with a larger budget covered this one via the
    /// trajectory property.
    Prefix,
    /// Nothing usable; the caller solves and [`SolveCache::insert`]s.
    Miss,
}

impl CacheOutcome {
    /// Lowercase tag used in responses and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Exact => "hit",
            CacheOutcome::Prefix => "prefix",
            CacheOutcome::Miss => "miss",
        }
    }
}

struct Entry {
    report: Arc<SolveReport>,
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    evictions: u64,
}

/// A thread-safe LRU cache of solve reports.
pub struct SolveCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl std::fmt::Debug for SolveCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveCache")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl SolveCache {
    /// A cache holding at most `capacity` reports (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                evictions: 0,
            }),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks up `key`, trying exact first, then a larger-budget prefix
    /// donor when the solver's trajectory allows it. The returned report is
    /// the *stored* one — for a prefix outcome its budget exceeds `key.k`
    /// and the caller reads the answer off `report.prefix(key.k)`.
    pub fn lookup(&self, key: &CacheKey) -> (Option<Arc<SolveReport>>, CacheOutcome) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(key) {
            entry.last_used = tick;
            return (Some(Arc::clone(&entry.report)), CacheOutcome::Exact);
        }
        if is_prefix_reusable(&key.solver) {
            // Smallest stored budget that still covers k, for tightest reuse.
            let donor = inner
                .map
                .iter()
                .filter(|(stored, _)| {
                    stored.generation == key.generation
                        && stored.solver == key.solver
                        && stored.variant == key.variant
                        && stored.fingerprint == key.fingerprint
                        && stored.k >= key.k
                })
                .min_by_key(|(stored, _)| stored.k)
                .map(|(stored, _)| stored.clone());
            if let Some(donor_key) = donor {
                if let Some(entry) = inner.map.get_mut(&donor_key) {
                    entry.last_used = tick;
                    return (Some(Arc::clone(&entry.report)), CacheOutcome::Prefix);
                }
            }
        }
        (None, CacheOutcome::Miss)
    }

    /// Stores a finished report, evicting the least-recently-used entry
    /// when full. No-op for a zero-capacity cache.
    pub fn insert(&self, key: CacheKey, report: Arc<SolveReport>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                report,
                last_used: tick,
            },
        );
    }

    /// Drops every entry from a generation other than `generation` —
    /// called after a snapshot swap to free superseded answers eagerly.
    pub fn retain_generation(&self, generation: u64) {
        self.lock().map.retain(|k, _| k.generation == generation);
    }

    /// Current number of stored reports.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total LRU evictions since startup.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcover_core::Algorithm;

    fn report(k: usize) -> Arc<SolveReport> {
        Arc::new(SolveReport {
            algorithm: Algorithm::LazyGreedy,
            variant: Variant::Normalized,
            order: (0..k).map(pcover_graph::ItemId::from_index).collect(),
            trajectory: (1..=k).map(|i| i as f64 / k.max(1) as f64).collect(),
            cover: 1.0,
            item_cover: vec![],
            elapsed: std::time::Duration::from_millis(1),
            gain_evaluations: k as u64,
        })
    }

    fn key(generation: u64, solver: &str, k: usize) -> CacheKey {
        CacheKey {
            generation,
            solver: solver.to_owned(),
            variant: Variant::Normalized,
            k,
            fingerprint: fingerprint(&SolverConfig::default()),
        }
    }

    #[test]
    fn exact_and_prefix_hits() {
        let cache = SolveCache::new(8);
        cache.insert(key(1, "lazy", 10), report(10));

        let (hit, outcome) = cache.lookup(&key(1, "lazy", 10));
        assert_eq!(outcome, CacheOutcome::Exact);
        assert_eq!(hit.map(|r| r.k()), Some(10));

        // Smaller budget rides the stored trajectory.
        let (hit, outcome) = cache.lookup(&key(1, "lazy", 4));
        assert_eq!(outcome, CacheOutcome::Prefix);
        let donor = hit.expect("prefix donor");
        let (order, cover) = donor.prefix(4).expect("prefix in range");
        assert_eq!(order.len(), 4);
        assert!(cover > 0.0);

        // Larger budget, other generation, other solver: all misses.
        assert_eq!(cache.lookup(&key(1, "lazy", 11)).1, CacheOutcome::Miss);
        assert_eq!(cache.lookup(&key(2, "lazy", 4)).1, CacheOutcome::Miss);
        assert_eq!(cache.lookup(&key(1, "greedy", 4)).1, CacheOutcome::Miss);
    }

    #[test]
    fn non_prefix_solvers_never_reuse_trajectories() {
        let cache = SolveCache::new(8);
        cache.insert(key(1, "stochastic", 10), report(10));
        assert_eq!(
            cache.lookup(&key(1, "stochastic", 4)).1,
            CacheOutcome::Miss,
            "stochastic output depends on k; truncation would be wrong"
        );
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = SolveCache::new(2);
        cache.insert(key(1, "lazy", 1), report(1));
        cache.insert(key(1, "lazy", 2), report(2));
        // Touch k=1 so k=2 is the LRU victim.
        assert_eq!(cache.lookup(&key(1, "lazy", 1)).1, CacheOutcome::Exact);
        cache.insert(key(1, "greedy", 3), report(3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.lookup(&key(1, "lazy", 1)).1, CacheOutcome::Exact);
        assert_eq!(cache.lookup(&key(1, "lazy", 2)).1, CacheOutcome::Miss);
    }

    #[test]
    fn generation_swap_invalidates() {
        let cache = SolveCache::new(8);
        cache.insert(key(1, "lazy", 5), report(5));
        cache.insert(key(2, "lazy", 5), report(5));
        cache.retain_generation(2);
        assert_eq!(cache.lookup(&key(1, "lazy", 5)).1, CacheOutcome::Miss);
        assert_eq!(cache.lookup(&key(2, "lazy", 5)).1, CacheOutcome::Exact);
    }

    #[test]
    fn fingerprint_separates_configs() {
        let a = SolverConfig::default();
        let b = SolverConfig {
            seed: 43,
            ..SolverConfig::default()
        };
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let c = SolverConfig {
            epsilon: Some(0.05),
            ..SolverConfig::default()
        };
        assert_ne!(fingerprint(&a), fingerprint(&c));
        assert_eq!(fingerprint(&a), fingerprint(&SolverConfig::default()));
    }
}

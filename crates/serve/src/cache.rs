//! The solve cache: LRU over finished [`SolveReport`]s with trajectory
//! reuse.
//!
//! Reports from greedy-family solvers are *incremental* (paper §3.2): the
//! first `k'` selections of a budget-`k` run are exactly the budget-`k'`
//! answer, and the smallest prefix reaching a cover threshold answers the
//! complementary minimization problem. The cache exploits this: a stored
//! report for `(generation, solver, variant, fingerprint, k)` satisfies
//!
//! * an **exact** lookup for the same key,
//! * a **prefix** lookup for any `k' ≤ k` under the same solver/config —
//!   but only for solvers whose output is a true prefix chain (see
//!   [`is_prefix_reusable`]; stochastic/sieve/brute-force outputs depend
//!   on `k` itself and must not be truncated), and
//! * any `/minimize` threshold query against a full-budget report.
//!
//! Entries are keyed by snapshot generation, so a hot-swap implicitly
//! invalidates every cached answer; [`SolveCache::retain_generation`]
//! additionally drops stale entries eagerly to free memory.

use std::collections::HashMap;
use std::sync::Arc;

use pcover_core::{SolveReport, SolverConfig, Variant, WarmState};
use pcover_graph::{ItemId, PreferenceGraph};

use crate::sync::{Mutex, MutexGuard};

/// Cache key: everything that determines a solve's output.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Snapshot generation the solve ran against.
    pub generation: u64,
    /// Registry solver name (`"lazy"`, …).
    pub solver: String,
    /// Cover variant.
    pub variant: Variant,
    /// Requested budget.
    pub k: usize,
    /// [`fingerprint`] of the [`SolverConfig`].
    pub fingerprint: u64,
}

/// FNV-1a over every [`SolverConfig`] field, floats via `to_bits` — two
/// configs with the same fingerprint produce bit-identical solves (the
/// determinism the conformance suite pins down).
pub fn fingerprint(config: &SolverConfig) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(&(config.threads as u64).to_le_bytes());
    mix(&config.seed.to_le_bytes());
    match config.epsilon {
        Some(e) => {
            mix(&[1]);
            mix(&e.to_bits().to_le_bytes());
        }
        None => mix(&[0]),
    }
    mix(&(config.random_attempts as u64).to_le_bytes());
    mix(&(config.max_swaps as u64).to_le_bytes());
    mix(&config.max_subsets.to_le_bytes());
    h
}

/// Whether a solver's budget-`k` report is a prefix chain: its first `k'`
/// selections equal its budget-`k'` report for every `k' ≤ k`.
///
/// True for the greedy family (the paper's incremental property) and the
/// sorted top-k baselines; false for solvers whose per-round behaviour
/// depends on `k` (stochastic sampling rates, sieve thresholds, partitioned
/// merge budgets) or that optimize the set as a whole (brute force, local
/// search, random best-of, the VC reduction).
pub fn is_prefix_reusable(solver: &str) -> bool {
    matches!(
        solver,
        "greedy"
            | "greedy-lowmem"
            | "lazy"
            | "parallel"
            | "delta"
            | "delta-parallel"
            | "topk-w"
            | "topk-c"
    )
}

/// How a lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Same key, stored report returned as-is.
    Exact,
    /// A stored report with a larger budget covered this one via the
    /// trajectory property.
    Prefix,
    /// No cached report, but a previous generation's [`WarmState`] was
    /// repaired into the answer instead of solving cold.
    Warm,
    /// Nothing usable; the caller solves and [`SolveCache::insert`]s.
    Miss,
    /// Another request was already solving the same key; this one parked
    /// on the single-flight table and received that solve's result
    /// (`crate::flight`).
    Coalesced,
}

impl CacheOutcome {
    /// Lowercase tag used in responses and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Exact => "hit",
            CacheOutcome::Prefix => "prefix",
            CacheOutcome::Warm => "warm",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
        }
    }
}

struct Entry {
    report: Arc<SolveReport>,
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    evictions: u64,
}

/// A thread-safe LRU cache of solve reports.
pub struct SolveCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl std::fmt::Debug for SolveCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveCache")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl SolveCache {
    /// A cache holding at most `capacity` reports (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                evictions: 0,
            }),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks up `key`, trying exact first, then a larger-budget prefix
    /// donor when the solver's trajectory allows it. The returned report is
    /// the *stored* one — for a prefix outcome its budget exceeds `key.k`
    /// and the caller reads the answer off `report.prefix(key.k)`.
    pub fn lookup(&self, key: &CacheKey) -> (Option<Arc<SolveReport>>, CacheOutcome) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(key) {
            entry.last_used = tick;
            return (Some(Arc::clone(&entry.report)), CacheOutcome::Exact);
        }
        if is_prefix_reusable(&key.solver) {
            // Smallest stored budget that still covers k, for tightest reuse.
            let donor = inner
                .map
                .iter()
                .filter(|(stored, _)| {
                    stored.generation == key.generation
                        && stored.solver == key.solver
                        && stored.variant == key.variant
                        && stored.fingerprint == key.fingerprint
                        && stored.k >= key.k
                })
                .min_by_key(|(stored, _)| stored.k)
                .map(|(stored, _)| stored.clone());
            if let Some(donor_key) = donor {
                if let Some(entry) = inner.map.get_mut(&donor_key) {
                    entry.last_used = tick;
                    return (Some(Arc::clone(&entry.report)), CacheOutcome::Prefix);
                }
            }
        }
        (None, CacheOutcome::Miss)
    }

    /// Stores a finished report, evicting the least-recently-used entry
    /// when full. No-op for a zero-capacity cache.
    pub fn insert(&self, key: CacheKey, report: Arc<SolveReport>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                report,
                last_used: tick,
            },
        );
    }

    /// Drops every entry from a generation other than `generation` —
    /// called after a snapshot swap to free superseded answers eagerly.
    pub fn retain_generation(&self, generation: u64) {
        self.lock().map.retain(|k, _| k.generation == generation);
    }

    /// Re-keys every generation-`from` entry to generation `to`, returning
    /// how many survived. Sound only when the two generations' graphs are
    /// bitwise identical — i.e. the applied delta's
    /// [`touched_nodes`](pcover_graph::delta::GraphDelta::touched_nodes)
    /// frontier was empty (a solve reads the whole graph, so any actual
    /// touch intersects every entry's inputs); the caller checks that. An
    /// entry whose target key already exists is dropped, not overwritten
    /// (the existing entry was solved *on* generation `to` and is at least
    /// as trustworthy). Exact-pair re-keying keeps this correct under
    /// racing swaps: the bitwise-identity claim is per `(from, to)` pair.
    pub fn migrate_generation(&self, from: u64, to: u64) -> u64 {
        if from == to {
            return 0;
        }
        let mut inner = self.lock();
        let moved: Vec<CacheKey> = inner
            .map
            .keys()
            .filter(|k| k.generation == from)
            .cloned()
            .collect();
        let mut survived = 0u64;
        for old_key in moved {
            let Some(entry) = inner.map.remove(&old_key) else {
                continue;
            };
            let new_key = CacheKey {
                generation: to,
                ..old_key
            };
            if let std::collections::hash_map::Entry::Vacant(slot) = inner.map.entry(new_key) {
                slot.insert(entry);
                survived += 1;
            }
        }
        survived
    }

    /// Collects the raw material for warm states from generation
    /// `generation`'s entries: for every warm-capable, prefix-reusable
    /// lineage (solver × variant × fingerprint), the stored order with the
    /// largest budget (longest verified prefix → most reuse). Returns
    /// captured [`WarmState`]s; the `O(n + m)` gain capture runs *after*
    /// the cache lock is released.
    pub fn harvest_warm(
        &self,
        generation: u64,
        graph: &PreferenceGraph,
        is_warm_capable: impl Fn(&str) -> bool,
    ) -> Vec<(WarmKey, WarmState)> {
        let mut best: HashMap<WarmKey, (usize, Vec<ItemId>)> = HashMap::new();
        {
            // lint: allow(lock-order-cycle) — the `insert` below is HashMap::insert on the local `best`, not SolveCache::insert; no lock is re-acquired
            let inner = self.lock();
            for (key, entry) in &inner.map {
                if key.generation != generation
                    || !is_prefix_reusable(&key.solver)
                    || !is_warm_capable(&key.solver)
                {
                    continue;
                }
                let wkey = WarmKey {
                    solver: key.solver.clone(),
                    variant: key.variant,
                    fingerprint: key.fingerprint,
                };
                let order = entry.report.order.clone();
                match best.get(&wkey) {
                    Some((k, _)) if *k >= key.k => {}
                    _ => {
                        best.insert(wkey, (key.k, order));
                    }
                }
            }
        }
        best.into_iter()
            .map(|(wkey, (_, order))| {
                let state = WarmState::capture_variant(wkey.variant, graph, &order);
                (wkey, state)
            })
            .collect()
    }

    /// Current number of stored reports.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total LRU evictions since startup.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }
}

/// Identity of a warm lineage across generations: the solver/config tuple
/// that determines a bit-identical solve. Deliberately excludes the
/// generation (the state survives swaps — that is the point) and the
/// budget `k` (a warm state's round-0 gains are valid for every `k`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WarmKey {
    /// Registry solver name (`"delta"`, `"delta-parallel"`).
    pub solver: String,
    /// Cover variant the state was captured under.
    pub variant: Variant,
    /// [`fingerprint`] of the [`SolverConfig`].
    pub fingerprint: u64,
}

struct WarmEntry {
    state: Arc<WarmState>,
    /// Accumulated touched frontier of every delta applied since capture —
    /// the dirty set a warm re-solve must recompute. Conservative for
    /// queries still on an older generation `≥ min_generation` (extra
    /// dirty nodes cost evaluations, never correctness).
    touched: Vec<ItemId>,
    /// The generation the state was captured on; the entry must not serve
    /// snapshots older than this (their deltas are not in `touched`).
    min_generation: u64,
}

struct WarmInner {
    map: HashMap<WarmKey, WarmEntry>,
    /// The last swap this store has fully accounted for. Swap bookkeeping
    /// runs outside the snapshot writer lock, so it can arrive out of
    /// order; this guard keeps the accumulated `touched` sets honest (see
    /// [`WarmStore::apply_swap`]).
    generation: u64,
}

/// Warm solver states surviving across snapshot generations, keyed by
/// lineage ([`WarmKey`]).
///
/// Locking is leaf-only: no method acquires any other lock while holding
/// the store's, and the `O(n + m)` state capture happens in the caller
/// before [`Self::apply_swap`].
pub struct WarmStore {
    inner: Mutex<WarmInner>,
    capacity: usize,
}

impl std::fmt::Debug for WarmStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmStore")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl WarmStore {
    /// A store holding at most `capacity` lineages (0 disables warm
    /// starts), beginning at snapshot generation 1 (the first generation
    /// [`crate::SnapshotManager`] publishes).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(WarmInner {
                map: HashMap::new(),
                generation: 1,
            }),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, WarmInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Number of stored lineages.
    pub fn len(&self) -> usize {
        // lint: allow(lock-order-cycle) — name-collision false positive: SolveCache::len never calls WarmStore::len; each locks only its own leaf mutex
        self.lock().map.len()
    }

    /// True when no warm state is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The warm state and accumulated touched frontier for `key`, usable
    /// for a query pinned to snapshot `generation`. `None` when the lineage
    /// is unknown, was captured after `generation` (an in-flight query on
    /// an older snapshot must not use gains that postdate it), or when
    /// `generation` is *ahead* of the store's last recorded swap (a query
    /// racing the swap bookkeeping would use a touched set missing that
    /// delta — it solves cold instead).
    pub fn lookup(&self, key: &WarmKey, generation: u64) -> Option<(Arc<WarmState>, Vec<ItemId>)> {
        let inner = self.lock();
        if generation > inner.generation {
            return None;
        }
        let entry = inner.map.get(key)?;
        if generation < entry.min_generation {
            return None;
        }
        Some((Arc::clone(&entry.state), entry.touched.clone()))
    }

    /// Records one snapshot swap `old_gen → new_gen`: folds `touched` into
    /// every stored lineage and installs `fresh` states (captured on the
    /// `old_gen` graph) with `touched` as their initial dirty set.
    ///
    /// The generation guard makes out-of-order bookkeeping safe without
    /// holding any lock across the swap: when the store is exactly at
    /// `old_gen` the swap chain is unbroken and everything accumulates;
    /// when a later swap was already recorded (`new_gen` ≤ the store's
    /// generation) this call is dropped wholesale — its fresh states would
    /// overwrite entries that already account for newer deltas; when this
    /// swap reveals a *gap* (`new_gen` ahead, but the store wasn't at
    /// `old_gen`) the stored entries have missed a delta and are cleared
    /// before installing the fresh ones. Dropping states costs warm starts,
    /// never correctness.
    pub fn apply_swap(
        &self,
        old_gen: u64,
        new_gen: u64,
        touched: &[ItemId],
        fresh: Vec<(WarmKey, WarmState)>,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        if inner.generation == old_gen {
            for entry in inner.map.values_mut() {
                entry.touched.extend_from_slice(touched);
                entry.touched.sort_unstable();
                entry.touched.dedup();
            }
        } else if inner.generation < new_gen {
            inner.map.clear();
        } else {
            return;
        }
        inner.generation = new_gen;
        for (key, state) in fresh {
            if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
                continue;
            }
            inner.map.insert(
                key,
                WarmEntry {
                    state: Arc::new(state),
                    touched: touched.to_vec(),
                    min_generation: old_gen,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcover_core::Algorithm;

    fn report(k: usize) -> Arc<SolveReport> {
        Arc::new(SolveReport {
            algorithm: Algorithm::LazyGreedy,
            variant: Variant::Normalized,
            order: (0..k).map(pcover_graph::ItemId::from_index).collect(),
            trajectory: (1..=k).map(|i| i as f64 / k.max(1) as f64).collect(),
            cover: 1.0,
            item_cover: vec![],
            elapsed: std::time::Duration::from_millis(1),
            gain_evaluations: k as u64,
        })
    }

    fn key(generation: u64, solver: &str, k: usize) -> CacheKey {
        CacheKey {
            generation,
            solver: solver.to_owned(),
            variant: Variant::Normalized,
            k,
            fingerprint: fingerprint(&SolverConfig::default()),
        }
    }

    #[test]
    fn exact_and_prefix_hits() {
        let cache = SolveCache::new(8);
        cache.insert(key(1, "lazy", 10), report(10));

        let (hit, outcome) = cache.lookup(&key(1, "lazy", 10));
        assert_eq!(outcome, CacheOutcome::Exact);
        assert_eq!(hit.map(|r| r.k()), Some(10));

        // Smaller budget rides the stored trajectory.
        let (hit, outcome) = cache.lookup(&key(1, "lazy", 4));
        assert_eq!(outcome, CacheOutcome::Prefix);
        let donor = hit.expect("prefix donor");
        let (order, cover) = donor.prefix(4).expect("prefix in range");
        assert_eq!(order.len(), 4);
        assert!(cover > 0.0);

        // Larger budget, other generation, other solver: all misses.
        assert_eq!(cache.lookup(&key(1, "lazy", 11)).1, CacheOutcome::Miss);
        assert_eq!(cache.lookup(&key(2, "lazy", 4)).1, CacheOutcome::Miss);
        assert_eq!(cache.lookup(&key(1, "greedy", 4)).1, CacheOutcome::Miss);
    }

    #[test]
    fn non_prefix_solvers_never_reuse_trajectories() {
        let cache = SolveCache::new(8);
        cache.insert(key(1, "stochastic", 10), report(10));
        assert_eq!(
            cache.lookup(&key(1, "stochastic", 4)).1,
            CacheOutcome::Miss,
            "stochastic output depends on k; truncation would be wrong"
        );
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = SolveCache::new(2);
        cache.insert(key(1, "lazy", 1), report(1));
        cache.insert(key(1, "lazy", 2), report(2));
        // Touch k=1 so k=2 is the LRU victim.
        assert_eq!(cache.lookup(&key(1, "lazy", 1)).1, CacheOutcome::Exact);
        cache.insert(key(1, "greedy", 3), report(3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.lookup(&key(1, "lazy", 1)).1, CacheOutcome::Exact);
        assert_eq!(cache.lookup(&key(1, "lazy", 2)).1, CacheOutcome::Miss);
    }

    #[test]
    fn generation_swap_invalidates() {
        let cache = SolveCache::new(8);
        cache.insert(key(1, "lazy", 5), report(5));
        cache.insert(key(2, "lazy", 5), report(5));
        cache.retain_generation(2);
        assert_eq!(cache.lookup(&key(1, "lazy", 5)).1, CacheOutcome::Miss);
        assert_eq!(cache.lookup(&key(2, "lazy", 5)).1, CacheOutcome::Exact);
    }

    #[test]
    fn migration_rekeys_survivors_and_defers_to_existing_targets() {
        let cache = SolveCache::new(8);
        cache.insert(key(1, "lazy", 3), report(3));
        cache.insert(key(1, "lazy", 5), report(5));
        cache.insert(key(2, "lazy", 5), report(5));

        // k=5 collides with the entry already solved on generation 2 and is
        // dropped; k=3 migrates.
        assert_eq!(cache.migrate_generation(1, 2), 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(&key(1, "lazy", 3)).1, CacheOutcome::Miss);
        assert_eq!(cache.lookup(&key(2, "lazy", 3)).1, CacheOutcome::Exact);
        assert_eq!(cache.lookup(&key(2, "lazy", 5)).1, CacheOutcome::Exact);

        // Degenerate same-generation migration is a counted no-op.
        assert_eq!(cache.migrate_generation(2, 2), 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn harvest_keeps_the_largest_budget_per_warm_capable_lineage() {
        let (g, _) = pcover_graph::examples::figure1_ids();
        let cache = SolveCache::new(8);
        cache.insert(key(1, "delta", 2), report(2));
        cache.insert(key(1, "delta", 4), report(4));
        cache.insert(key(1, "lazy", 5), report(5)); // prefix-reusable, not warm-capable
        cache.insert(key(1, "stochastic", 5), report(5)); // neither
        cache.insert(key(2, "delta", 5), report(5)); // wrong generation

        let harvested = cache.harvest_warm(1, &g, |s| s == "delta");
        assert_eq!(harvested.len(), 1);
        let (wkey, state) = &harvested[0];
        assert_eq!(wkey.solver, "delta");
        assert_eq!(wkey.variant, Variant::Normalized);
        assert_eq!(state.order().len(), 4, "largest budget wins the lineage");
        assert!(state.accepts(Variant::Normalized, &g));
    }

    fn warm_state(g: &PreferenceGraph, order: &[ItemId]) -> WarmState {
        WarmState::capture_variant(Variant::Normalized, g, order)
    }

    fn wkey(tag: u64) -> WarmKey {
        WarmKey {
            solver: "delta".to_owned(),
            variant: Variant::Normalized,
            fingerprint: tag,
        }
    }

    #[test]
    fn warm_store_accumulates_touched_across_chained_swaps() {
        let (g, ids) = pcover_graph::examples::figure1_ids();
        let store = WarmStore::new(4);
        assert!(store.is_empty());

        store.apply_swap(1, 2, &[ids.a], vec![(wkey(7), warm_state(&g, &[ids.b]))]);
        let (state, touched) = store.lookup(&wkey(7), 2).expect("fresh entry");
        assert_eq!(state.order(), &[ids.b]);
        assert_eq!(touched, vec![ids.a]);

        // The next swap folds its frontier into the surviving entry.
        store.apply_swap(2, 3, &[ids.c, ids.a], Vec::new());
        let (_, touched) = store.lookup(&wkey(7), 3).expect("survivor");
        assert_eq!(touched, vec![ids.a, ids.c], "deduped union of both deltas");

        // A query pinned ahead of the recorded swaps must solve cold: the
        // accumulated touched set cannot vouch for deltas it has not seen.
        assert!(store.lookup(&wkey(7), 4).is_none());
    }

    #[test]
    fn warm_store_drops_entries_on_gaps_and_late_swaps() {
        let (g, ids) = pcover_graph::examples::figure1_ids();
        let store = WarmStore::new(4);
        store.apply_swap(1, 2, &[ids.a], vec![(wkey(1), warm_state(&g, &[ids.b]))]);

        // Gap: the store never saw 2 → 5, so stale entries are cleared and
        // only the fresh state survives.
        store.apply_swap(5, 6, &[ids.d], vec![(wkey(2), warm_state(&g, &[ids.e]))]);
        assert!(store.lookup(&wkey(1), 6).is_none());
        let (_, touched) = store.lookup(&wkey(2), 6).expect("fresh after gap");
        assert_eq!(touched, vec![ids.d]);

        // Entries never serve snapshots older than their capture generation.
        assert!(store.lookup(&wkey(2), 4).is_none());

        // Late out-of-order bookkeeping is dropped wholesale.
        store.apply_swap(2, 3, &[ids.a], vec![(wkey(3), warm_state(&g, &[ids.a]))]);
        assert!(store.lookup(&wkey(3), 3).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn warm_store_respects_capacity() {
        let (g, ids) = pcover_graph::examples::figure1_ids();
        let disabled = WarmStore::new(0);
        disabled.apply_swap(1, 2, &[], vec![(wkey(1), warm_state(&g, &[ids.a]))]);
        assert!(disabled.is_empty());

        let store = WarmStore::new(1);
        store.apply_swap(
            1,
            2,
            &[],
            vec![
                (wkey(1), warm_state(&g, &[ids.a])),
                (wkey(2), warm_state(&g, &[ids.b])),
            ],
        );
        assert_eq!(store.len(), 1, "second lineage rejected at capacity");
    }

    #[test]
    fn fingerprint_separates_configs() {
        let a = SolverConfig::default();
        let b = SolverConfig {
            seed: 43,
            ..SolverConfig::default()
        };
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let c = SolverConfig {
            epsilon: Some(0.05),
            ..SolverConfig::default()
        };
        assert_ne!(fingerprint(&a), fingerprint(&c));
        assert_eq!(fingerprint(&a), fingerprint(&SolverConfig::default()));
    }
}

//! # pcover-serve
//!
//! The serving layer of the Preference Cover system: a long-running,
//! multi-threaded query service over an in-memory
//! [`pcover_graph::PreferenceGraph`], reachable as `pcover serve`.
//!
//! The paper frames Preference Cover as the engine behind a live
//! e-commerce stack (Figure 2: adaptation engine → solver → seller-facing
//! tools); this crate is the piece that keeps the solver *resident* —
//! loading the graph once and answering many queries from memory instead
//! of paying a full reload per CLI invocation.
//!
//! ## Pieces
//!
//! * [`snapshot::SnapshotManager`] — immutable graph generations with
//!   atomic hot-swap; `POST /admin/delta` applies a
//!   [`pcover_graph::delta::GraphDelta`] and publishes the next generation
//!   without disturbing in-flight queries.
//! * [`cache::SolveCache`] — LRU cache of solve reports keyed by
//!   `(generation, solver, variant, k, config fingerprint)` with
//!   trajectory reuse: one budget-`k` greedy-family report answers every
//!   `k' ≤ k` query and every `/minimize` threshold (paper §3.2). On a
//!   bitwise-identity swap (empty touched frontier) entries migrate to the
//!   new generation instead of being dropped.
//! * [`cache::WarmStore`] — warm solver states keyed by
//!   `(solver, variant, fingerprint)` lineage *across* generations: on a
//!   swap, warm-capable entries of the superseded generation are harvested
//!   into [`pcover_core::WarmState`]s and the next query repairs one via
//!   [`pcover_core::SolverSpec::solve_warm`] instead of solving cold
//!   (bit-identical answer, `O(touched)` round-0 work; DESIGN §9.1).
//! * [`flight::SingleFlight`] — single-flight request coalescing: N
//!   concurrent identical solve requests (same `SolveCache` key and
//!   deadline class) collapse into one solver run; the leader publishes
//!   and every parked follower receives the same `Arc`'d report. Built on
//!   the same `crate::sync` loom shim as the queue and model-checked in
//!   `tests/loom.rs`.
//! * [`queue::WorkQueue`] — the bounded MPMC work queue behind the load
//!   shedder, extracted so the `--cfg loom` model tests (`tests/loom.rs`)
//!   can exhaustively check its shed/drain/shutdown interleavings.
//! * [`server::Server`] — `std::net` accept loop, bounded work queue with
//!   503 load shedding, thread-per-worker pool with per-connection
//!   HTTP/1.1 keep-alive loops (idle timeout + requests-per-connection
//!   cap), per-request deadlines via a cancellation-checking
//!   [`pcover_core::Observer`], and graceful drain-then-exit shutdown.
//! * [`http`] — the minimal hand-rolled HTTP/1.1 layer (std-only by
//!   design: no vendored HTTP stack): [`http::ConnBuffer`] carries
//!   buffered bytes across pipelined requests on a persistent connection
//!   and allocates nothing in steady state.
//! * [`metrics::Metrics`] — request/cache/deadline/connection counters and
//!   per-endpoint latency histograms with p999-resolvable microsecond
//!   buckets, dumped as plain text on `/metrics`.
//! * [`loadgen`] — the client-side engine behind `pcover loadgen`:
//!   keep-alive HTTP client, multi-connection phase runner, and
//!   exact-percentile latency recording for the `pcover-bench-serve/1`
//!   snapshot.
//!
//! ## Endpoints
//!
//! | Endpoint | Parameters | Answer |
//! |---|---|---|
//! | `GET /solve` | `k` (required), `algorithm`, `variant`, `seed`, `threads`, `epsilon`, `deadline_ms` | order + cover as JSON |
//! | `GET /cover` | same as `/solve` | cover value only |
//! | `GET /minimize` | `threshold` (required) + the common parameters | smallest prefix reaching the threshold |
//! | `GET /healthz` | — | liveness + generation |
//! | `GET /metrics` | — | plain-text counters |
//! | `POST /admin/delta` | body: `GraphDelta` JSON | new generation |
//! | `POST /admin/shutdown` | — | drains and exits |
//!
//! Every solve dispatches through [`pcover_core::Registry`] /
//! [`pcover_core::SolverSpec`] — never through solver free functions — so
//! the workspace `solver-dispatch` audit rule holds here unwaived.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod flight;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod snapshot;
mod sync;

pub use cache::{CacheOutcome, SolveCache, WarmKey, WarmStore};
pub use flight::{Flight, FlightLeader, SingleFlight};
pub use loadgen::{LatencyRecorder, LoadClient, PhaseSummary, PlannedRequest};
pub use queue::WorkQueue;
pub use server::{DeadlineObserver, Server, ServerConfig, ServerHandle};
pub use snapshot::{Snapshot, SnapshotManager, SwapReceipt};

//! Serving metrics: lock-free counters and fixed-bucket latency
//! histograms, rendered as a plain-text `key value` dump on `/metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper edges (milliseconds) of the latency histogram buckets; the last
/// bucket is implicit `+inf`.
pub const LATENCY_BUCKETS_MS: [u64; 10] = [1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000];

/// One endpoint's request counter plus latency histogram.
#[derive(Debug, Default)]
pub struct EndpointStats {
    requests: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS_MS.len() + 1],
    total_ms: AtomicU64,
}

impl EndpointStats {
    /// Records one finished request.
    pub fn observe(&self, elapsed: Duration) {
        let ms = u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX);
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.total_ms.fetch_add(ms, Ordering::Relaxed);
        let idx = LATENCY_BUCKETS_MS
            .iter()
            .position(|&edge| ms <= edge)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Requests recorded so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    fn render(&self, name: &str, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "endpoint_{name}_requests {}", self.requests());
        let _ = writeln!(
            out,
            "endpoint_{name}_latency_ms_total {}",
            self.total_ms.load(Ordering::Relaxed)
        );
        for (i, bucket) in self.buckets.iter().enumerate() {
            let label = LATENCY_BUCKETS_MS
                .get(i)
                .map(|edge| edge.to_string())
                .unwrap_or_else(|| "inf".to_owned());
            let _ = writeln!(
                out,
                "endpoint_{name}_latency_ms_le_{label} {}",
                bucket.load(Ordering::Relaxed)
            );
        }
    }
}

/// All counters the service exports.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Accepted connections (shed ones included).
    pub requests_total: AtomicU64,
    /// Connections rejected with 503 because the queue was full.
    pub queue_shed_total: AtomicU64,
    /// Requests rejected because the head or body was malformed.
    pub bad_request_total: AtomicU64,
    /// Solves that hit the cache exactly.
    pub cache_hits: AtomicU64,
    /// Solves answered from a larger cached trajectory.
    pub cache_prefix_hits: AtomicU64,
    /// Solves that had to run a solver.
    pub cache_misses: AtomicU64,
    /// Solves answered by repairing a previous generation's warm state
    /// instead of solving cold.
    pub warm_start_hits: AtomicU64,
    /// Across all warm starts, rounds where the previous solution's pick
    /// was re-verified and reused.
    pub warm_rounds_reused: AtomicU64,
    /// Across all warm starts, rounds selected fresh after the first
    /// invalidated prefix position.
    pub warm_rounds_repaired: AtomicU64,
    /// Cache entries that survived a snapshot swap because the delta's
    /// touched frontier was empty (bitwise-identical graphs).
    pub cache_survived_swap: AtomicU64,
    /// Solves aborted by the per-request deadline.
    pub deadline_cancelled_total: AtomicU64,
    /// Snapshot swaps applied via `/admin/delta`.
    pub delta_applied_total: AtomicU64,
    /// `/solve` endpoint stats.
    pub solve: EndpointStats,
    /// `/cover` endpoint stats.
    pub cover: EndpointStats,
    /// `/minimize` endpoint stats.
    pub minimize: EndpointStats,
    /// `/admin/delta` endpoint stats.
    pub delta: EndpointStats,
}

impl Metrics {
    /// Renders every counter as `key value` lines. The caller appends
    /// point-in-time gauges (queue depth, generation, cache size).
    pub fn render(&self) -> String {
        // lint: allow(alloc-per-request) — /metrics is an admin endpoint; the rendered text is returned as an owned body
        let mut out = String::with_capacity(1024);
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "requests_total {}",
            self.requests_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "queue_shed_total {}",
            self.queue_shed_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "bad_request_total {}",
            self.bad_request_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "cache_hits {}",
            self.cache_hits.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "cache_prefix_hits {}",
            self.cache_prefix_hits.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "cache_misses {}",
            self.cache_misses.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "warm_start_hits {}",
            self.warm_start_hits.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "warm_rounds_reused {}",
            self.warm_rounds_reused.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "warm_rounds_repaired {}",
            self.warm_rounds_repaired.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "cache_survived_swap {}",
            self.cache_survived_swap.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "deadline_cancelled_total {}",
            self.deadline_cancelled_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "delta_applied_total {}",
            self.delta_applied_total.load(Ordering::Relaxed)
        );
        self.solve.render("solve", &mut out);
        self.cover.render("cover", &mut out);
        self.minimize.render("minimize", &mut out);
        self.delta.render("admin_delta", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_by_edge() {
        let stats = EndpointStats::default();
        stats.observe(Duration::from_millis(0));
        stats.observe(Duration::from_millis(3));
        stats.observe(Duration::from_millis(40));
        stats.observe(Duration::from_secs(60));
        assert_eq!(stats.requests(), 4);
        let mut out = String::new();
        stats.render("t", &mut out);
        assert!(out.contains("endpoint_t_requests 4"));
        assert!(out.contains("endpoint_t_latency_ms_le_1 1"));
        assert!(out.contains("endpoint_t_latency_ms_le_5 1"));
        assert!(out.contains("endpoint_t_latency_ms_le_50 1"));
        assert!(out.contains("endpoint_t_latency_ms_le_inf 1"));
    }

    #[test]
    fn render_lists_every_counter() {
        let m = Metrics::default();
        m.requests_total.fetch_add(2, Ordering::Relaxed);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("requests_total 2"));
        assert!(text.contains("cache_hits 1"));
        assert!(text.contains("queue_shed_total 0"));
        assert!(text.contains("warm_start_hits 0"));
        assert!(text.contains("warm_rounds_reused 0"));
        assert!(text.contains("warm_rounds_repaired 0"));
        assert!(text.contains("cache_survived_swap 0"));
        assert!(text.contains("endpoint_solve_requests 0"));
        assert!(text.contains("endpoint_admin_delta_requests 0"));
    }
}

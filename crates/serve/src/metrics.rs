//! Serving metrics: lock-free counters and fixed-bucket latency
//! histograms, rendered as a plain-text `key value` dump on `/metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper edges (microseconds) of the latency histogram buckets; the last
/// bucket is implicit `+inf`. Sub-millisecond edges exist so tail
/// quantiles (p99/p999) stay resolvable for cache-hit responses that
/// finish in tens of microseconds; labels still render in milliseconds
/// (`0.05`, `0.1`, …) and every edge of the original millisecond layout
/// (1, 2, 5, …, 5000) is preserved, so the exposition format is
/// backward-compatible — old labels keep existing, new ones interleave.
pub const LATENCY_BUCKETS_US: [u64; 16] = [
    50, 100, 250, 500, 1_000, 2_000, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

/// One endpoint's request counter plus latency histogram.
#[derive(Debug, Default)]
pub struct EndpointStats {
    requests: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    total_us: AtomicU64,
}

impl EndpointStats {
    /// Records one finished request.
    pub fn observe(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&edge| us <= edge)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Requests recorded so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Upper bound (milliseconds) on the latency quantile `q` in `0..=1`:
    /// the edge of the first bucket at which the cumulative count reaches
    /// `q` of all requests. `None` with no requests recorded;
    /// `f64::INFINITY` when the quantile lands in the overflow bucket.
    /// This is what makes p999 *resolvable* from the histogram — the gate
    /// `pcover loadgen` needs.
    pub fn quantile_upper_bound_ms(&self, q: f64) -> Option<f64> {
        let total = self.requests();
        if total == 0 {
            return None;
        }
        let needed = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= needed {
                return Some(
                    LATENCY_BUCKETS_US
                        .get(i)
                        .map(|&edge| edge as f64 / 1e3)
                        .unwrap_or(f64::INFINITY),
                );
            }
        }
        Some(f64::INFINITY)
    }

    fn render(&self, name: &str, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "endpoint_{name}_requests {}", self.requests());
        let _ = writeln!(
            out,
            "endpoint_{name}_latency_ms_total {}",
            self.total_us.load(Ordering::Relaxed) / 1000
        );
        for (i, bucket) in self.buckets.iter().enumerate() {
            let count = bucket.load(Ordering::Relaxed);
            match LATENCY_BUCKETS_US.get(i) {
                // f64 Display is shortest-roundtrip: 50us prints as
                // `0.05`, 1000us as `1` — integral edges keep their old
                // labels.
                Some(&edge) => {
                    let _ = writeln!(
                        out,
                        "endpoint_{name}_latency_ms_le_{} {count}",
                        edge as f64 / 1e3
                    );
                }
                None => {
                    let _ = writeln!(out, "endpoint_{name}_latency_ms_le_inf {count}");
                }
            }
        }
    }
}

/// All counters the service exports.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests answered (shed 503s included; one keep-alive
    /// connection contributes one count per request it carries).
    pub requests_total: AtomicU64,
    /// Connections accepted into the worker pool.
    pub connections_total: AtomicU64,
    /// Requests served on an already-used keep-alive connection (i.e.
    /// beyond the first request of their connection).
    pub keepalive_reuse_total: AtomicU64,
    /// Connections rejected with 503 because the queue was full.
    pub queue_shed_total: AtomicU64,
    /// Requests rejected because the head or body was malformed or
    /// oversized.
    pub bad_request_total: AtomicU64,
    /// Solves that hit the cache exactly.
    pub cache_hits: AtomicU64,
    /// Solves answered from a larger cached trajectory.
    pub cache_prefix_hits: AtomicU64,
    /// Solves that had to run a solver.
    pub cache_misses: AtomicU64,
    /// Solves that coalesced onto another request's in-flight solve
    /// (single-flight): N concurrent identical requests perform 1 solve
    /// and record N-1 here.
    pub coalesced_hits: AtomicU64,
    /// Solves answered by repairing a previous generation's warm state
    /// instead of solving cold.
    pub warm_start_hits: AtomicU64,
    /// Across all warm starts, rounds where the previous solution's pick
    /// was re-verified and reused.
    pub warm_rounds_reused: AtomicU64,
    /// Across all warm starts, rounds selected fresh after the first
    /// invalidated prefix position.
    pub warm_rounds_repaired: AtomicU64,
    /// Cache entries that survived a snapshot swap because the delta's
    /// touched frontier was empty (bitwise-identical graphs).
    pub cache_survived_swap: AtomicU64,
    /// Solves aborted by the per-request deadline.
    pub deadline_cancelled_total: AtomicU64,
    /// Snapshot swaps applied via `/admin/delta`.
    pub delta_applied_total: AtomicU64,
    /// `/solve` endpoint stats.
    pub solve: EndpointStats,
    /// `/cover` endpoint stats.
    pub cover: EndpointStats,
    /// `/minimize` endpoint stats.
    pub minimize: EndpointStats,
    /// `/admin/delta` endpoint stats.
    pub delta: EndpointStats,
}

impl Metrics {
    /// Renders every counter as `key value` lines. The caller appends
    /// point-in-time gauges (queue depth, generation, cache size).
    pub fn render(&self) -> String {
        // lint: allow(alloc-per-request) — /metrics is an admin endpoint; the rendered text is returned as an owned body
        let mut out = String::with_capacity(2048);
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "requests_total {}",
            self.requests_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "connections_total {}",
            self.connections_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "keepalive_reuse_total {}",
            self.keepalive_reuse_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "queue_shed_total {}",
            self.queue_shed_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "bad_request_total {}",
            self.bad_request_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "cache_hits {}",
            self.cache_hits.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "cache_prefix_hits {}",
            self.cache_prefix_hits.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "cache_misses {}",
            self.cache_misses.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "coalesced_hits {}",
            self.coalesced_hits.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "warm_start_hits {}",
            self.warm_start_hits.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "warm_rounds_reused {}",
            self.warm_rounds_reused.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "warm_rounds_repaired {}",
            self.warm_rounds_repaired.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "cache_survived_swap {}",
            self.cache_survived_swap.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "deadline_cancelled_total {}",
            self.deadline_cancelled_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "delta_applied_total {}",
            self.delta_applied_total.load(Ordering::Relaxed)
        );
        self.solve.render("solve", &mut out);
        self.cover.render("cover", &mut out);
        self.minimize.render("minimize", &mut out);
        self.delta.render("admin_delta", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_by_edge() {
        let stats = EndpointStats::default();
        stats.observe(Duration::from_millis(0));
        stats.observe(Duration::from_millis(3));
        stats.observe(Duration::from_millis(40));
        stats.observe(Duration::from_secs(60));
        assert_eq!(stats.requests(), 4);
        let mut out = String::new();
        stats.render("t", &mut out);
        assert!(out.contains("endpoint_t_requests 4"));
        assert!(out.contains("endpoint_t_latency_ms_le_0.05 1"));
        assert!(out.contains("endpoint_t_latency_ms_le_5 1"));
        assert!(out.contains("endpoint_t_latency_ms_le_50 1"));
        assert!(out.contains("endpoint_t_latency_ms_le_inf 1"));
    }

    #[test]
    fn old_millisecond_labels_survive_the_microsecond_layout() {
        // Backward compatibility: every label of the original layout
        // ([1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000] ms) must still be
        // emitted, so dashboards keyed on them keep working.
        let stats = EndpointStats::default();
        stats.observe(Duration::from_millis(1));
        let mut out = String::new();
        stats.render("t", &mut out);
        for label in [
            "1", "2", "5", "10", "25", "50", "100", "250", "1000", "5000",
        ] {
            assert!(
                out.contains(&format!("endpoint_t_latency_ms_le_{label} ")),
                "legacy bucket label {label} missing:\n{out}"
            );
        }
        for label in ["0.05", "0.1", "0.25", "0.5", "500", "2500"] {
            assert!(
                out.contains(&format!("endpoint_t_latency_ms_le_{label} ")),
                "new bucket label {label} missing:\n{out}"
            );
        }
    }

    #[test]
    fn p999_is_resolvable_from_the_histogram() {
        let stats = EndpointStats::default();
        // 999 fast requests and one slow one: p99 must stay at the fast
        // edge while p999 resolves the slow outlier — the old 10-bucket
        // millisecond layout lumped everything under 1ms together and
        // could not tell these apart.
        for _ in 0..999 {
            stats.observe(Duration::from_micros(40));
        }
        stats.observe(Duration::from_millis(400));
        assert_eq!(stats.quantile_upper_bound_ms(0.5), Some(0.05));
        assert_eq!(stats.quantile_upper_bound_ms(0.99), Some(0.05));
        assert_eq!(stats.quantile_upper_bound_ms(0.999), Some(0.05));
        assert_eq!(stats.quantile_upper_bound_ms(1.0), Some(500.0));
        assert_eq!(EndpointStats::default().quantile_upper_bound_ms(0.5), None);
    }

    #[test]
    fn render_lists_every_counter() {
        let m = Metrics::default();
        m.requests_total.fetch_add(2, Ordering::Relaxed);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("requests_total 2"));
        assert!(text.contains("connections_total 0"));
        assert!(text.contains("keepalive_reuse_total 0"));
        assert!(text.contains("cache_hits 1"));
        assert!(text.contains("coalesced_hits 0"));
        assert!(text.contains("queue_shed_total 0"));
        assert!(text.contains("warm_start_hits 0"));
        assert!(text.contains("warm_rounds_reused 0"));
        assert!(text.contains("warm_rounds_repaired 0"));
        assert!(text.contains("cache_survived_swap 0"));
        assert!(text.contains("endpoint_solve_requests 0"));
        assert!(text.contains("endpoint_admin_delta_requests 0"));
    }
}

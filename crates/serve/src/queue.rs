//! Bounded MPMC work queue with load shedding: `Mutex<VecDeque>` +
//! `Condvar`, extracted from the server so the `--cfg loom` model tests
//! can drive shed/drain/shutdown interleavings directly (`tests/loom.rs`).
//!
//! Guard discipline (enforced by the `lock-across-blocking` audit rule and
//! verified by the model tests): [`WorkQueue::push`] drops its guard
//! *before* `notify_one`, [`WorkQueue::pop`] parks only on the condvar
//! associated with its own guard inside a predicate loop, and
//! [`WorkQueue::close`] touches the lock through a temporary so the
//! `notify_all` runs guard-free.

use std::collections::VecDeque;

use crate::sync::{Condvar, Mutex, MutexGuard};

/// Bounded multi-producer multi-consumer queue; producers shed instead of
/// blocking when it is full.
pub struct WorkQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    open: bool,
}

impl<T> std::fmt::Debug for WorkQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkQueue")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl<T> WorkQueue<T> {
    /// An open queue admitting at most `capacity.max(1)` queued items.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Recovers from a poisoned lock: the queue's invariants (a deque and a
    /// flag) cannot be left torn by a panicking holder.
    fn lock(&self) -> MutexGuard<'_, QueueInner<T>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Enqueues an item; `Err` returns it when the queue is full or closed
    /// (the caller sheds — e.g. answers 503 — instead of blocking).
    ///
    /// # Errors
    ///
    /// The rejected item itself, so shedding never loses it.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.lock();
        if !inner.open || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once closed *and* drained — the
    /// consumer-exit signal that makes shutdown drain the backlog.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if !inner.open {
                return None;
            }
            inner = match self.ready.wait(inner) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Closes the queue: new pushes are rejected, queued items still drain.
    /// Idempotent.
    pub fn close(&self) {
        self.lock().open = false;
        self.ready.notify_all();
    }

    /// Number of items currently queued.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_sheds_when_full_and_drains_on_close() {
        let q = WorkQueue::new(1);
        assert!(q.push(1u32).is_ok());
        assert!(q.push(2u32).is_err(), "second push must shed");
        assert_eq!(q.depth(), 1);
        q.close();
        assert_eq!(q.pop(), Some(1), "queued work drains after close");
        assert!(q.pop().is_none(), "then consumers exit");
        assert!(q.push(3u32).is_err(), "closed queue rejects new work");
    }

    #[test]
    fn pop_blocks_until_a_push_arrives() {
        let q = std::sync::Arc::new(WorkQueue::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        q.push(7u32).expect("open queue accepts");
        assert_eq!(consumer.join().expect("no panic"), Some(7));
    }
}

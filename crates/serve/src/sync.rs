//! Lock primitives behind a `--cfg loom` switch.
//!
//! Every blocking primitive in this crate (`queue`, `snapshot`, `cache`)
//! imports `Mutex`/`Condvar`/`RwLock` from here instead of `std::sync`.
//! A normal build re-exports `std`; a `RUSTFLAGS="--cfg loom"` build (the
//! nightly model-checking CI job) swaps in the vendored `loom` stand-ins,
//! whose acquire/release/wait/notify are scheduling points of a
//! cooperative model checker — `tests/loom.rs` then explores every
//! interleaving of the serve primitives. The two surfaces are
//! signature-compatible, so production code never mentions the cfg.

#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex, MutexGuard, RwLock};

#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard, RwLock};

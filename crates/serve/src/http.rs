//! A deliberately minimal HTTP/1.1 layer over [`std::net`].
//!
//! The service is std-only by design (no vendored HTTP stack), so this
//! module implements exactly the slice of RFC 9112 the endpoints need:
//! one request per connection (`Connection: close` semantics), request
//! line + headers + optional `Content-Length` body on the way in, status
//! line + fixed headers + body on the way out. Header and body sizes are
//! capped so a misbehaving client cannot balloon worker memory.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (`POST /admin/delta` payloads).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (including read timeouts).
    Io(std::io::Error),
    /// The bytes on the wire are not a well-formed HTTP/1.1 request.
    Malformed(&'static str),
    /// The head or body exceeded its size cap.
    TooLarge(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string, e.g. `/solve`.
    pub path: String,
    /// Decoded query parameters, last occurrence wins.
    pub query: HashMap<String, String>,
    /// Raw request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }
}

/// Reads and parses one request from the stream.
///
/// # Errors
///
/// [`HttpError`] on socket failures, malformed syntax, or size-cap
/// violations; the caller turns these into a 400 and closes.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    // lint: allow(alloc-per-request) — the request head must own its bytes across parsing; capped at MAX_HEAD_BYTES
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Byte-at-a-time until CRLFCRLF: simple, and the head cap bounds the
    // cost; request heads here are a few hundred bytes.
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head"));
        }
        head.push(byte[0]);
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("head"));
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    let head_text =
        std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or(HttpError::Malformed("missing target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without colon"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("body"));
    }

    // lint: allow(alloc-per-request) — the body is moved into the Request and must own its bytes
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method,
        path: path.to_owned(),
        query: parse_query(query_str),
        body,
    })
}

/// Decodes `a=1&b=x%20y` into a map; `+` and `%XX` escapes are resolved.
pub fn parse_query(q: &str) -> HashMap<String, String> {
    let mut out = HashMap::new();
    for pair in q.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.insert(percent_decode(k), percent_decode(v));
    }
    out
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    // lint: allow(alloc-per-request) — decoded params are stored owned in the request's query map
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes.get(i) {
            Some(b'+') => {
                out.push(b' ');
                i += 1;
            }
            Some(b'%') => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            Some(&b) => {
                out.push(b);
                i += 1;
            }
            None => break,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An HTTP status we emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// 200 — success.
    Ok,
    /// 400 — unusable request (bad params, bad body).
    BadRequest,
    /// 404 — no such endpoint.
    NotFound,
    /// 405 — endpoint exists, wrong method.
    MethodNotAllowed,
    /// 503 — queue full (load shed) or shutting down.
    Unavailable,
    /// 504 — the per-request deadline expired mid-solve.
    DeadlineExceeded,
    /// 500 — internal failure.
    Internal,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::MethodNotAllowed => 405,
            Status::Unavailable => 503,
            Status::DeadlineExceeded => 504,
            Status::Internal => 500,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::BadRequest => "Bad Request",
            Status::NotFound => "Not Found",
            Status::MethodNotAllowed => "Method Not Allowed",
            Status::Unavailable => "Service Unavailable",
            Status::DeadlineExceeded => "Gateway Timeout",
            Status::Internal => "Internal Server Error",
        }
    }
}

/// Writes a complete response and flushes. The status line and headers are
/// rendered into `head_buf` — a reusable per-worker buffer (cleared here,
/// never reallocated once warm) rather than a per-response `format!`, so
/// the response head costs no heap traffic on the request path. Write
/// errors are returned so the worker can count them, but the connection is
/// closed either way.
pub fn write_response(
    stream: &mut TcpStream,
    head_buf: &mut Vec<u8>,
    status: Status,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    head_buf.clear();
    write!(
        head_buf,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status.code(),
        status.reason(),
        content_type,
        body.len()
    )?;
    stream.write_all(head_buf)?;
    stream.write_all(body)?;
    stream.flush()
}

/// [`write_response`] with a JSON body.
pub fn write_json(
    stream: &mut TcpStream,
    head_buf: &mut Vec<u8>,
    status: Status,
    body: &str,
) -> std::io::Result<()> {
    write_response(
        stream,
        head_buf,
        status,
        "application/json",
        body.as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_decoding() {
        let q = parse_query("k=3&label=a%20b+c&flag&bad=%zz");
        assert_eq!(q.get("k").map(String::as_str), Some("3"));
        assert_eq!(q.get("label").map(String::as_str), Some("a b c"));
        assert_eq!(q.get("flag").map(String::as_str), Some(""));
        assert_eq!(q.get("bad").map(String::as_str), Some("%zz"));
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::Unavailable.code(), 503);
        assert_eq!(Status::DeadlineExceeded.code(), 504);
        assert!(!Status::BadRequest.reason().is_empty());
    }
}

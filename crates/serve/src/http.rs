//! A deliberately minimal HTTP/1.1 layer over [`std::net`].
//!
//! The service is std-only by design (no vendored HTTP stack), so this
//! module implements exactly the slice of RFC 9112 the endpoints need:
//! persistent connections with `Connection: keep-alive`/`close`
//! semantics, request line + headers + optional `Content-Length` body on
//! the way in, status line + fixed headers + body on the way out. Header
//! and body sizes are capped so a misbehaving client cannot balloon
//! worker memory.
//!
//! Reading goes through a [`ConnBuffer`] — one growable buffer per
//! worker, reused across every connection and request that worker
//! handles. Socket reads land in the buffer in chunks; a parsed request
//! consumes its bytes and leaves anything pipelined behind it for the
//! next [`ConnBuffer::read_request`] call, so back-to-back requests on
//! one connection never trigger a re-read and steady-state parsing
//! allocates nothing (the buffer only grows until it fits the largest
//! head seen).

use std::collections::HashMap;
use std::io::{Read, Write};

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (`POST /admin/delta` payloads).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// How many bytes one socket read pulls into the connection buffer.
const READ_CHUNK: usize = 4096;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (including read timeouts).
    Io(std::io::Error),
    /// Clean EOF on a request boundary: the client finished and hung up.
    Closed,
    /// The bytes on the wire are not a well-formed HTTP/1.1 request.
    Malformed(&'static str),
    /// The head or body exceeded its size cap.
    TooLarge(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string, e.g. `/solve`.
    pub path: String,
    /// Decoded query parameters, last occurrence wins.
    pub query: HashMap<String, String>,
    /// Raw request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open: HTTP/1.1
    /// defaults to `true`, HTTP/1.0 to `false`, and a `Connection:
    /// close`/`keep-alive` header overrides either way.
    pub keep_alive: bool,
}

impl Request {
    /// The query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }
}

/// Per-worker connection read buffer (see the module docs): bytes read
/// off the socket accumulate here, parsed requests consume a prefix, and
/// pipelined leftovers survive for the next request on the connection.
#[derive(Debug, Default)]
pub struct ConnBuffer {
    buf: Vec<u8>,
    /// Offset of the first unconsumed byte in `buf`.
    start: usize,
}

impl ConnBuffer {
    /// An empty buffer; capacity grows on first use and is then reused
    /// for the worker's lifetime.
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            start: 0,
        }
    }

    /// Discards any buffered bytes. Call between connections so one
    /// client's pipelined leftovers can never leak into the next.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    /// Reads and parses one request, buffering across calls.
    ///
    /// # Errors
    ///
    /// [`HttpError::Closed`] on a clean EOF between requests,
    /// [`HttpError::Io`] on socket failures (including idle timeouts),
    /// and `Malformed`/`TooLarge` for protocol violations — the caller
    /// answers 400/413 and closes.
    pub fn read_request<R: Read>(&mut self, stream: &mut R) -> Result<Request, HttpError> {
        // Slide any unconsumed (pipelined) bytes to the front so the
        // request head starts at offset 0.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::TooLarge("head"));
            }
            let mut chunk = [0u8; READ_CHUNK];
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                if self.buf.is_empty() {
                    // EOF on a request boundary: the client simply closed.
                    return Err(HttpError::Closed);
                }
                return Err(HttpError::Malformed("connection closed mid-head"));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        if head_end > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("head"));
        }

        let head_text = std::str::from_utf8(&self.buf[..head_end - 4])
            .map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
        let mut lines = head_text.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split_ascii_whitespace();
        let method = parts
            .next()
            .ok_or(HttpError::Malformed("missing method"))?
            .to_ascii_uppercase();
        let target = parts.next().ok_or(HttpError::Malformed("missing target"))?;
        let version = parts
            .next()
            .ok_or(HttpError::Malformed("missing version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("unsupported HTTP version"));
        }
        // HTTP/1.1 defaults to persistent connections; 1.0 must opt in.
        let mut keep_alive = version != "HTTP/1.0";

        let mut content_length = 0usize;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(HttpError::Malformed("header without colon"));
            };
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err(HttpError::TooLarge("body"));
        }

        // lint: allow(alloc-per-request) — the body is moved into the Request and must own its bytes
        let mut body = vec![0u8; content_length];
        // Take what is already buffered, then read the remainder exactly.
        let buffered = (self.buf.len() - head_end).min(content_length);
        body[..buffered].copy_from_slice(&self.buf[head_end..head_end + buffered]);
        self.start = head_end + buffered;
        if buffered < content_length {
            stream.read_exact(&mut body[buffered..])?;
        }

        let (path, query_str) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        Ok(Request {
            method,
            path: path.to_owned(),
            query: parse_query(query_str),
            body,
            keep_alive,
        })
    }
}

/// Position one past the `\r\n\r\n` terminator, if buffered.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Decodes `a=1&b=x%20y` into a map; `+` and `%XX` escapes are resolved.
pub fn parse_query(q: &str) -> HashMap<String, String> {
    let mut out = HashMap::new();
    for pair in q.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.insert(percent_decode(k), percent_decode(v));
    }
    out
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    // lint: allow(alloc-per-request) — decoded params are stored owned in the request's query map
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes.get(i) {
            Some(b'+') => {
                out.push(b' ');
                i += 1;
            }
            Some(b'%') => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            Some(&b) => {
                out.push(b);
                i += 1;
            }
            None => break,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An HTTP status we emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// 200 — success.
    Ok,
    /// 400 — unusable request (bad params, bad body).
    BadRequest,
    /// 404 — no such endpoint.
    NotFound,
    /// 405 — endpoint exists, wrong method.
    MethodNotAllowed,
    /// 413 — the head or body exceeded its size cap.
    PayloadTooLarge,
    /// 503 — queue full (load shed) or shutting down.
    Unavailable,
    /// 504 — the per-request deadline expired mid-solve.
    DeadlineExceeded,
    /// 500 — internal failure.
    Internal,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::MethodNotAllowed => 405,
            Status::PayloadTooLarge => 413,
            Status::Unavailable => 503,
            Status::DeadlineExceeded => 504,
            Status::Internal => 500,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::BadRequest => "Bad Request",
            Status::NotFound => "Not Found",
            Status::MethodNotAllowed => "Method Not Allowed",
            Status::PayloadTooLarge => "Payload Too Large",
            Status::Unavailable => "Service Unavailable",
            Status::DeadlineExceeded => "Gateway Timeout",
            Status::Internal => "Internal Server Error",
        }
    }
}

/// Writes a complete response and flushes. The status line, headers, and
/// body are rendered into `head_buf` — a reusable per-worker buffer
/// (cleared here, never reallocated once warm) rather than a per-response
/// `format!`, so the response costs no heap traffic on the request path
/// and goes out in a single `write` (one syscall, one TCP segment — the
/// difference is measurable at keep-alive request rates). Every response —
/// success or error — carries an exact `Content-Length` and an explicit
/// `Connection` disposition, so a keep-alive client can always frame the
/// next response; `close: true` tells the client this is the connection's
/// last response. Write errors are returned so the worker can count them.
pub fn write_response<W: Write>(
    stream: &mut W,
    head_buf: &mut Vec<u8>,
    status: Status,
    content_type: &str,
    close: bool,
    body: &[u8],
) -> std::io::Result<()> {
    head_buf.clear();
    write!(
        head_buf,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status.code(),
        status.reason(),
        content_type,
        body.len(),
        if close { "close" } else { "keep-alive" },
    )?;
    head_buf.extend_from_slice(body);
    stream.write_all(head_buf)?;
    stream.flush()
}

/// [`write_response`] with a JSON body.
pub fn write_json<W: Write>(
    stream: &mut W,
    head_buf: &mut Vec<u8>,
    status: Status,
    close: bool,
    body: &str,
) -> std::io::Result<()> {
    write_response(
        stream,
        head_buf,
        status,
        "application/json",
        close,
        body.as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        ConnBuffer::new().read_request(&mut Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn query_decoding() {
        let q = parse_query("k=3&label=a%20b+c&flag&bad=%zz");
        assert_eq!(q.get("k").map(String::as_str), Some("3"));
        assert_eq!(q.get("label").map(String::as_str), Some("a b c"));
        assert_eq!(q.get("flag").map(String::as_str), Some(""));
        assert_eq!(q.get("bad").map(String::as_str), Some("%zz"));
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::PayloadTooLarge.code(), 413);
        assert_eq!(Status::Unavailable.code(), 503);
        assert_eq!(Status::DeadlineExceeded.code(), 504);
        assert!(!Status::BadRequest.reason().is_empty());
    }

    #[test]
    fn keep_alive_defaults_follow_the_http_version() {
        let r = parse(b"GET / HTTP/1.1\r\n\r\n").expect("parses");
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let r = parse(b"GET / HTTP/1.0\r\n\r\n").expect("parses");
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
        let r = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parses");
        assert!(!r.keep_alive, "Connection: close overrides 1.1");
        let r = parse(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").expect("parses");
        assert!(r.keep_alive, "Connection: keep-alive overrides 1.0");
    }

    #[test]
    fn pipelined_requests_parse_from_one_buffer_fill() {
        let wire = b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyzGET /c HTTP/1.1\r\n\r\n";
        let mut conn = ConnBuffer::new();
        let mut stream = Cursor::new(wire.to_vec());
        let a = conn.read_request(&mut stream).expect("first");
        assert_eq!((a.method.as_str(), a.path.as_str()), ("GET", "/a"));
        let b = conn.read_request(&mut stream).expect("second");
        assert_eq!((b.method.as_str(), b.path.as_str()), ("POST", "/b"));
        assert_eq!(b.body, b"xyz");
        let c = conn.read_request(&mut stream).expect("third");
        assert_eq!(c.path, "/c");
        assert!(
            matches!(conn.read_request(&mut stream), Err(HttpError::Closed)),
            "EOF on a request boundary is a clean close"
        );
    }

    #[test]
    fn eof_mid_head_is_malformed_not_clean() {
        let mut conn = ConnBuffer::new();
        let mut stream = Cursor::new(b"GET / HT".to_vec());
        assert!(matches!(
            conn.read_request(&mut stream),
            Err(HttpError::Malformed("connection closed mid-head"))
        ));
    }

    #[test]
    fn reset_drops_pipelined_leftovers() {
        let mut conn = ConnBuffer::new();
        let mut stream = Cursor::new(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n".to_vec());
        conn.read_request(&mut stream).expect("first");
        conn.reset();
        let mut next = Cursor::new(b"GET /c HTTP/1.1\r\n\r\n".to_vec());
        let r = conn.read_request(&mut next).expect("fresh connection");
        assert_eq!(r.path, "/c", "stale /b must not leak across connections");
    }

    #[test]
    fn oversized_head_and_body_are_too_large() {
        let mut huge = Vec::new();
        huge.extend_from_slice(b"GET / HTTP/1.1\r\n");
        while huge.len() <= MAX_HEAD_BYTES {
            huge.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        huge.extend_from_slice(b"\r\n");
        assert!(matches!(parse(&huge), Err(HttpError::TooLarge("head"))));

        let big_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(big_body.as_bytes()),
            Err(HttpError::TooLarge("body"))
        ));
    }

    /// Byte-exact framing: under keep-alive a mis-framed error response
    /// desynchronizes the stream, so the exact head matters.
    #[test]
    fn error_responses_are_framed_byte_exactly() {
        let mut head_buf = Vec::new();
        let mut out = Vec::new();
        write_json(
            &mut out,
            &mut head_buf,
            Status::BadRequest,
            true,
            "{\"error\":\"x\"}",
        )
        .expect("write");
        assert_eq!(
            out,
            b"HTTP/1.1 400 Bad Request\r\nContent-Type: application/json\r\nContent-Length: 13\r\nConnection: close\r\n\r\n{\"error\":\"x\"}"
        );

        let mut out = Vec::new();
        write_response(
            &mut out,
            &mut head_buf,
            Status::Ok,
            "text/plain",
            false,
            b"hi",
        )
        .expect("write");
        assert_eq!(
            out,
            b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nhi"
        );

        let mut out = Vec::new();
        write_json(&mut out, &mut head_buf, Status::PayloadTooLarge, true, "{}").expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 413 Payload Too Large\r\n"));
        assert!(text.contains("\r\nContent-Length: 2\r\n"));
        assert!(text.contains("\r\nConnection: close\r\n"));
    }

    /// Every error status the server emits frames with an exact
    /// Content-Length so keep-alive clients never desynchronize.
    #[test]
    fn every_error_status_carries_exact_content_length() {
        for status in [
            Status::BadRequest,
            Status::NotFound,
            Status::MethodNotAllowed,
            Status::PayloadTooLarge,
            Status::Unavailable,
            Status::DeadlineExceeded,
            Status::Internal,
        ] {
            let body = "{\"error\":\"probe\"}";
            let mut head_buf = Vec::new();
            let mut out = Vec::new();
            write_json(&mut out, &mut head_buf, status, false, body).expect("write");
            let text = String::from_utf8(out).expect("utf8");
            let (head, tail) = text.split_once("\r\n\r\n").expect("head/body split");
            assert_eq!(tail, body, "{status:?}");
            assert!(
                head.contains(&format!("Content-Length: {}", body.len())),
                "{status:?}: {head}"
            );
            assert!(head.contains("Connection: keep-alive"), "{status:?}");
        }
    }
}

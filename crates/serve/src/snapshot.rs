//! Snapshot generations with atomic hot-swap.
//!
//! The service never mutates a graph in place: each `POST /admin/delta`
//! builds a **new** validated [`PreferenceGraph`] from the current one via
//! [`pcover_graph::delta::apply`] and publishes it as the next generation.
//! Queries clone an `Arc` to the snapshot they start on and keep it for
//! their whole lifetime, so a swap never invalidates an in-flight solve —
//! old generations are freed when the last in-flight query drops its `Arc`.

use std::sync::Arc;

use pcover_graph::delta::{apply, GraphDelta};
use pcover_graph::{GraphError, PreferenceGraph};

use crate::sync::{Mutex, RwLock};

/// One immutable published generation.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotonically increasing generation number (the first is 1).
    pub generation: u64,
    /// The graph served under this generation.
    pub graph: Arc<PreferenceGraph>,
}

/// The outcome of one applied delta: the superseded and the newly
/// published snapshots, captured as a consistent pair under the writer
/// lock. Post-swap bookkeeping (solve-cache migration, warm-state harvest)
/// needs both sides — under concurrent swaps, `current()` called after
/// [`SnapshotManager::apply_delta`] may already be generations ahead.
#[derive(Debug)]
pub struct SwapReceipt {
    /// The generation the delta was applied to.
    pub old: Arc<Snapshot>,
    /// The generation the delta produced (`old.generation + 1`).
    pub new: Arc<Snapshot>,
}

/// Holder of the current [`Snapshot`] with atomic swap.
#[derive(Debug)]
pub struct SnapshotManager {
    current: RwLock<Arc<Snapshot>>,
    /// Serializes writers so concurrent deltas cannot both read generation
    /// `g` and publish two different generations `g + 1`.
    writer: Mutex<()>,
}

/// Recovers from a poisoned lock: the protected data is an `Arc` swap with
/// no invariants that a panicking reader could have broken.
fn read_current(lock: &RwLock<Arc<Snapshot>>) -> Arc<Snapshot> {
    match lock.read() {
        Ok(g) => Arc::clone(&g),
        Err(poisoned) => Arc::clone(&poisoned.into_inner()),
    }
}

impl SnapshotManager {
    /// Publishes `graph` as generation 1.
    pub fn new(graph: PreferenceGraph) -> Self {
        Self {
            current: RwLock::new(Arc::new(Snapshot {
                generation: 1,
                graph: Arc::new(graph),
            })),
            writer: Mutex::new(()),
        }
    }

    /// Opens a graph file — a `.pcov` container (zero-copy mmap where
    /// supported, so cold-start cost is checksum verification rather than
    /// JSON parsing + CSR rebuild) or a JSON graph — and publishes it as
    /// generation 1. Returns the manager plus the load path used
    /// (`"mmap"`, `"pread"` or `"json"`) for startup logs.
    ///
    /// # Errors
    ///
    /// [`pcover_store::StoreError`] for unreadable, corrupt, or invalid
    /// files.
    pub fn open(path: &std::path::Path) -> Result<(Self, &'static str), pcover_store::StoreError> {
        let (graph, how) = pcover_store::read_graph_auto(path, pcover_store::OpenMode::Auto)?;
        Ok((Self::new(graph), how))
    }

    /// The currently published snapshot. Cheap: one `RwLock` read and an
    /// `Arc` clone.
    pub fn current(&self) -> Arc<Snapshot> {
        read_current(&self.current)
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.current().generation
    }

    /// Applies `delta` to the current graph and atomically publishes the
    /// result as the next generation, returning its number. In-flight
    /// queries on older generations are unaffected. Writers are serialized;
    /// the (possibly expensive) rebuild happens outside the swap lock.
    ///
    /// # Errors
    ///
    /// [`GraphError`] when the delta does not validate against the current
    /// graph; the published snapshot is unchanged in that case.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<u64, GraphError> {
        self.apply_delta_swap(delta).map(|r| r.new.generation)
    }

    /// [`Self::apply_delta`], returning the old/new snapshot pair the swap
    /// moved between. The pair is consistent (`new` directly supersedes
    /// `old`) even when other writers swap again immediately after.
    ///
    /// # Errors
    ///
    /// As [`Self::apply_delta`].
    pub fn apply_delta_swap(&self, delta: &GraphDelta) -> Result<SwapReceipt, GraphError> {
        let _writer = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let base = self.current();
        let next_graph = apply(&base.graph, delta)?;
        let next = Arc::new(Snapshot {
            generation: base.generation + 1,
            graph: Arc::new(next_graph),
        });
        match self.current.write() {
            Ok(mut slot) => *slot = Arc::clone(&next),
            Err(poisoned) => *poisoned.into_inner() = Arc::clone(&next),
        }
        Ok(SwapReceipt {
            old: base,
            new: next,
        })
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use pcover_graph::delta::Change;
    use pcover_graph::examples::figure1_ids;

    use super::*;

    #[test]
    fn swap_publishes_new_generation_and_keeps_old_alive() {
        let (g, ids) = figure1_ids();
        let mgr = SnapshotManager::new(g);
        let before = mgr.current();
        assert_eq!(before.generation, 1);

        let delta = GraphDelta::new().push(Change::Delist { node: ids.d });
        let gen2 = mgr.apply_delta(&delta).expect("valid delta");
        assert_eq!(gen2, 2);
        assert_eq!(mgr.generation(), 2);

        // The pre-swap handle still sees the old graph (D alive).
        assert!(before.graph.node_weight(ids.d) > 0.0);
        assert_eq!(mgr.current().graph.node_weight(ids.d), 0.0);
    }

    #[test]
    fn failed_delta_leaves_the_snapshot_unchanged() {
        let (g, _) = figure1_ids();
        let mgr = SnapshotManager::new(g);
        let bad = GraphDelta::new().push(Change::Delist {
            node: pcover_graph::ItemId::new(99),
        });
        assert!(mgr.apply_delta(&bad).is_err());
        assert_eq!(mgr.generation(), 1);
    }

    #[test]
    fn open_publishes_container_file_as_generation_one() {
        let dir = std::env::temp_dir().join(format!("pcover-serve-open-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("figure1.pcov");
        let (g, ids) = figure1_ids();
        pcover_store::write_graph(&g, &path, pcover_store::WriteOptions::default())
            .expect("write container");

        let (mgr, how) = SnapshotManager::open(&path).expect("open container");
        assert!(matches!(how, "mmap" | "pread"), "unexpected path {how}");
        assert_eq!(mgr.generation(), 1);
        let snap = mgr.current();
        assert_eq!(snap.graph.node_count(), g.node_count());
        assert_eq!(snap.graph.node_weight(ids.a), g.node_weight(ids.a));

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn concurrent_deltas_serialize_into_distinct_generations() {
        let (g, ids) = figure1_ids();
        let mgr = Arc::new(SnapshotManager::new(g));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let mgr = Arc::clone(&mgr);
                std::thread::spawn(move || {
                    let delta = GraphDelta::new().push(Change::SetNodeWeight {
                        node: ids.e,
                        weight: 0.5,
                    });
                    mgr.apply_delta(&delta).expect("valid delta")
                })
            })
            .collect();
        let mut gens: Vec<u64> = threads
            .into_iter()
            .map(|t| t.join().expect("no panic"))
            .collect();
        gens.sort_unstable();
        assert_eq!(gens, (2..=9).collect::<Vec<_>>(), "no generation lost");
        assert_eq!(mgr.generation(), 9);
    }
}

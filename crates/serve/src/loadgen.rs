//! Client-side load-generation machinery behind `pcover loadgen`.
//!
//! The serving claims this repo makes (keep-alive ≥2× connection-per-
//! request throughput, sub-millisecond cache-hit tails) need a harness
//! that measures them — ROADMAP item 3: no perf claim without numbers.
//! This module is that harness's engine: a minimal keep-alive HTTP/1.1
//! *client* ([`LoadClient`]), a phase runner that replays a planned
//! request schedule over M concurrent connections ([`run_phase`]), and
//! exact-percentile latency accounting ([`LatencyRecorder`]). The CLI
//! builds the seeded request plan (zipfian `k`, solve/cover/minimize
//! mix, optional interleaved deltas), runs one phase with keep-alive and
//! one opening a fresh connection per request, and writes the
//! `pcover-bench-serve/1` snapshot.
//!
//! Everything here is client-side: none of it is reachable from the
//! server's `worker_loop`, so the serve heat-path allocation rules do
//! not apply (and the module keeps no global state — each phase is
//! self-contained and deterministic given its plan).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One planned request in a phase's schedule.
#[derive(Clone, Debug)]
pub struct PlannedRequest {
    /// `GET` or `POST`.
    pub method: String,
    /// Request target including the query string, e.g. `/solve?k=3`.
    pub target: String,
    /// Request body (empty for GET).
    pub body: String,
}

impl PlannedRequest {
    /// A GET with no body.
    pub fn get(target: String) -> Self {
        Self {
            method: "GET".to_owned(),
            target,
            body: String::new(),
        }
    }

    /// A POST carrying `body`.
    pub fn post(target: String, body: String) -> Self {
        Self {
            method: "POST".to_owned(),
            target,
            body,
        }
    }
}

/// One response as the client saw it.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (framed by `Content-Length`).
    pub body: String,
}

/// A minimal HTTP/1.1 client that can hold its connection open across
/// requests (`keep_alive: true`) or open a fresh one per request —
/// exactly the two serving modes `pcover loadgen` compares. Responses
/// are framed strictly by `Content-Length` (which the server always
/// sends), so the client never needs read-until-EOF and a kept-alive
/// stream stays in sync.
#[derive(Debug)]
pub struct LoadClient {
    addr: SocketAddr,
    keep_alive: bool,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

impl LoadClient {
    /// A client for `addr`; `keep_alive` picks the connection mode.
    pub fn new(addr: SocketAddr, keep_alive: bool) -> Self {
        Self {
            addr,
            keep_alive,
            stream: None,
            buf: Vec::new(),
        }
    }

    fn connect(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Sends one request and reads the full response. Under keep-alive
    /// the connection is reused unless the server said `Connection:
    /// close`; otherwise it is dropped after every request.
    ///
    /// # Errors
    ///
    /// Socket failures and unparseable response framing surface as
    /// [`std::io::Error`]; the phase runner counts them.
    pub fn request(&mut self, planned: &PlannedRequest) -> std::io::Result<ClientResponse> {
        let keep_alive = self.keep_alive;
        let head = format!(
            "{} {} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            planned.method,
            planned.target,
            planned.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        let stream = self.connect()?;
        stream.write_all(head.as_bytes())?;
        stream.write_all(planned.body.as_bytes())?;
        stream.flush()?;

        // Read the response head.
        self.buf.clear();
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let mut chunk = [0u8; 4096];
            let stream = self.stream.as_mut().expect("connected above");
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                self.stream = None;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head_text = String::from_utf8_lossy(&self.buf[..head_end - 4]).into_owned();
        let status: u16 = head_text
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other("response without a status code"))?;
        let mut content_length = 0usize;
        let mut server_closes = false;
        for line in head_text.split("\r\n").skip(1) {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| std::io::Error::other("bad content-length in response"))?;
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                server_closes = true;
            }
        }

        // Read the body exactly.
        let mut body = vec![0u8; content_length];
        let buffered = (self.buf.len() - head_end).min(content_length);
        body[..buffered].copy_from_slice(&self.buf[head_end..head_end + buffered]);
        if buffered < content_length {
            let stream = self.stream.as_mut().expect("connected above");
            stream.read_exact(&mut body[buffered..])?;
        }

        if !keep_alive || server_closes {
            self.stream = None;
        }
        Ok(ClientResponse {
            status,
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }

    /// Convenience: GET `target` and return the response. Named `fetch`
    /// rather than `get` so the audit's name-based call-graph resolver
    /// never confuses this client helper with `HashMap::get` calls made
    /// on the server's request path.
    ///
    /// # Errors
    ///
    /// As for [`LoadClient::request`].
    pub fn fetch(&mut self, target: &str) -> std::io::Result<ClientResponse> {
        self.request(&PlannedRequest::get(target.to_owned()))
    }
}

/// Exact-percentile latency accounting over recorded samples.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    samples_us: Vec<u64>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request's latency.
    pub fn record(&mut self, elapsed: Duration) {
        self.samples_us
            .push(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Absorbs another recorder's samples (per-connection recorders merge
    /// into the phase total).
    pub fn merge(&mut self, other: LatencyRecorder) {
        self.samples_us.extend(other.samples_us);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// The exact `p`-th percentile (`0 < p <= 100`) in milliseconds, by
    /// the nearest-rank method on the sorted samples; `None` when empty.
    pub fn percentile_ms(&mut self, p: f64) -> Option<f64> {
        if self.samples_us.is_empty() {
            return None;
        }
        self.samples_us.sort_unstable();
        let n = self.samples_us.len();
        // The epsilon absorbs float fuzz like 99.9/100*1000 = 999.0000…01,
        // which would otherwise ceil one rank too high.
        let rank = ((p / 100.0) * n as f64 - 1e-9).ceil().max(1.0) as usize;
        Some(self.samples_us[rank.min(n) - 1] as f64 / 1e3)
    }
}

/// One phase's results: either the keep-alive or the
/// connection-per-request replay of the same plan.
#[derive(Clone, Debug)]
pub struct PhaseSummary {
    /// Requests attempted.
    pub requests: u64,
    /// Requests that failed at the socket level or answered >= 400.
    pub errors: u64,
    /// Wall-clock time for the whole phase.
    pub wall: Duration,
    /// Requests per second over the phase wall clock.
    pub throughput_rps: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, milliseconds.
    pub p999_ms: f64,
}

/// Replays `per_conn_plans` against `addr` — one thread per plan, each
/// with its own [`LoadClient`] in the given connection mode — and folds
/// every connection's samples into one [`PhaseSummary`].
///
/// Request failures are *counted*, not fatal: a load phase should keep
/// pushing through sporadic errors and report them, and the CLI gate
/// fails the run if any occurred.
pub fn run_phase(
    addr: SocketAddr,
    keep_alive: bool,
    per_conn_plans: &[Vec<PlannedRequest>],
) -> PhaseSummary {
    let started = Instant::now();
    let per_conn: Vec<(LatencyRecorder, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_conn_plans
            .iter()
            .map(|plan| {
                scope.spawn(move || {
                    let mut client = LoadClient::new(addr, keep_alive);
                    let mut recorder = LatencyRecorder::new();
                    let mut errors = 0u64;
                    for planned in plan {
                        let sent = Instant::now();
                        match client.request(planned) {
                            Ok(resp) => {
                                recorder.record(sent.elapsed());
                                if resp.status >= 400 {
                                    errors += 1;
                                }
                            }
                            Err(_) => {
                                recorder.record(sent.elapsed());
                                errors += 1;
                            }
                        }
                    }
                    (recorder, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread"))
            .collect()
    });
    let wall = started.elapsed();

    let mut all = LatencyRecorder::new();
    let mut errors = 0u64;
    for (recorder, conn_errors) in per_conn {
        all.merge(recorder);
        errors += conn_errors;
    }
    let requests = all.len() as u64;
    PhaseSummary {
        requests,
        errors,
        wall,
        throughput_rps: if wall.as_secs_f64() > 0.0 {
            requests as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        p50_ms: all.percentile_ms(50.0).unwrap_or(0.0),
        p99_ms: all.percentile_ms(99.0).unwrap_or(0.0),
        p999_ms: all.percentile_ms(99.9).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut rec = LatencyRecorder::new();
        for us in 1..=1000u64 {
            rec.record(Duration::from_micros(us));
        }
        assert_eq!(rec.percentile_ms(50.0), Some(0.5));
        assert_eq!(rec.percentile_ms(99.0), Some(0.99));
        assert_eq!(rec.percentile_ms(99.9), Some(0.999));
        assert_eq!(rec.percentile_ms(100.0), Some(1.0));
        assert_eq!(LatencyRecorder::new().percentile_ms(50.0), None);
    }

    #[test]
    fn recorders_merge_for_phase_totals() {
        let mut a = LatencyRecorder::new();
        a.record(Duration::from_micros(100));
        let mut b = LatencyRecorder::new();
        b.record(Duration::from_micros(300));
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.percentile_ms(100.0), Some(0.3));
    }

    #[test]
    fn planned_request_constructors() {
        let g = PlannedRequest::get("/solve?k=2".to_owned());
        assert_eq!((g.method.as_str(), g.body.as_str()), ("GET", ""));
        let p = PlannedRequest::post("/admin/delta".to_owned(), "{}".to_owned());
        assert_eq!((p.method.as_str(), p.body.as_str()), ("POST", "{}"));
    }
}

//! Edge records used at the graph boundary (building, iteration, IO).

use serde::{Deserialize, Serialize};

use crate::ItemId;

/// A directed, weighted preference edge `source → target`.
///
/// The weight is the probability that a consumer requesting `source` accepts
/// `target` as an alternative when `source` is unavailable (Section 2 of the
/// paper). Inside [`PreferenceGraph`](crate::PreferenceGraph) edges are
/// stored in compressed form; this struct is the exploded representation
/// used by builders, iterators and serialization.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// The requested (possibly unavailable) item.
    pub source: ItemId,
    /// The candidate alternative item.
    pub target: ItemId,
    /// Probability in `(0, 1]` that `target` satisfies a request for `source`.
    pub weight: f64,
}

impl Edge {
    /// Convenience constructor.
    #[inline]
    pub const fn new(source: ItemId, target: ItemId, weight: f64) -> Self {
        Edge {
            source,
            target,
            weight,
        }
    }

    /// Whether this edge is a self-loop (`source == target`).
    ///
    /// Self-loops never contribute to a cover (an item cannot substitute for
    /// itself while simultaneously being retained and not retained), but they
    /// appear in Max Vertex Cover reduction instances.
    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.source == self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_loop_detection() {
        let a = ItemId::new(1);
        let b = ItemId::new(2);
        assert!(Edge::new(a, a, 0.5).is_self_loop());
        assert!(!Edge::new(a, b, 0.5).is_self_loop());
    }

    #[test]
    fn serde_roundtrip() {
        let e = Edge::new(ItemId::new(0), ItemId::new(9), 0.25);
        let json = serde_json::to_string(&e).unwrap();
        let back: Edge = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}

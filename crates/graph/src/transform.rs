//! Graph transforms: normalization, reversal, subgraphs, self-loop
//! completion and browse-graph transitive closure.

// lint: allow-file(no-index) — ItemId values are dense indices assigned by GraphBuilder and every
// per-node/per-edge array is sized to node_count/edge_count, so accesses are in
// bounds by construction.
use std::collections::HashMap;

use crate::{DuplicateEdgePolicy, GraphBuilder, GraphError, ItemId, PreferenceGraph};

/// Returns a copy of `g` with node weights rescaled to sum to exactly 1.
///
/// This is the normalization step of the `VC_k → NPC_k` reduction in
/// Theorem 3.1; it rescales every solution's cover by the same constant, so
/// approximation ratios are unchanged.
///
/// # Errors
///
/// Fails with [`GraphError::EmptyGraph`] if all node weights are zero (there
/// is no distribution to normalize to).
pub fn normalize_node_weights(g: &PreferenceGraph) -> Result<PreferenceGraph, GraphError> {
    let sum = g.total_node_weight();
    if sum <= 0.0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut out = g.clone();
    for w in &mut out.owned_mut().node_weights {
        *w /= sum;
    }
    Ok(out)
}

/// Returns `g` with every edge orientation reversed (weights preserved).
///
/// Used by the `DS_k → IPC_k` reduction of Theorem 4.1, where domination
/// "out of S" in the dominating-set instance corresponds to coverage "into
/// S" in the preference graph.
pub fn reverse(g: &PreferenceGraph) -> PreferenceGraph {
    PreferenceGraph::new_owned(
        crate::graph::OwnedCsr {
            node_weights: g.node_weights().to_vec(),
            out_offsets: g.csr_in_offsets().to_vec(),
            out_targets: g.csr_in_sources().to_vec(),
            out_weights: g.csr_in_weights().to_vec(),
            in_offsets: g.csr_out_offsets().to_vec(),
            in_sources: g.csr_out_targets().to_vec(),
            in_weights: g.csr_out_weights().to_vec(),
        },
        g.labels().map(|l| l.to_vec()),
    )
}

/// The result of [`induced_subgraph`]: the subgraph plus the id mapping.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The induced subgraph with dense ids `0..keep.len()`.
    pub graph: PreferenceGraph,
    /// `original[new.index()]` is the id the new node had in the parent
    /// graph.
    pub original: Vec<ItemId>,
}

impl Subgraph {
    /// Maps a node id of the subgraph back to the parent graph.
    pub fn to_original(&self, v: ItemId) -> ItemId {
        self.original[v.index()]
    }
}

/// Extracts the subgraph induced by `keep` (edges with both endpoints kept),
/// rescaling node weights to sum to 1.
///
/// Rescaling keeps the result a well-formed preference graph: the sub-catalog
/// inherits the *conditional* request distribution given that the request was
/// for a kept item. The experiments use this to carve small BF-solvable
/// instances and the `n`-sweeps of the scalability figure out of one dataset.
///
/// # Errors
///
/// Fails if `keep` is empty, contains duplicates or out-of-range ids, or if
/// the kept nodes all have zero weight.
pub fn induced_subgraph(g: &PreferenceGraph, keep: &[ItemId]) -> Result<Subgraph, GraphError> {
    if keep.is_empty() {
        return Err(GraphError::EmptyGraph);
    }
    let mut remap: HashMap<ItemId, ItemId> = HashMap::with_capacity(keep.len());
    for (new_idx, &old) in keep.iter().enumerate() {
        if old.index() >= g.node_count() {
            return Err(GraphError::UnknownNode { node: old });
        }
        if remap.insert(old, ItemId::from_index(new_idx)).is_some() {
            return Err(GraphError::Parse {
                line: None,
                message: format!("duplicate node {old} in subgraph selection"),
            });
        }
    }

    let mut b = GraphBuilder::with_capacity(keep.len(), keep.len())
        .normalize_node_weights(true)
        .allow_self_loops(true);
    for &old in keep {
        match g.label(old) {
            Some(l) => b.add_node_labeled(g.node_weight(old), l),
            None => b.add_node(g.node_weight(old)),
        };
    }
    for &old in keep {
        let new_src = remap[&old];
        for (tgt, w) in g.out_edges(old) {
            if let Some(&new_tgt) = remap.get(&tgt) {
                b.add_edge(new_src, new_tgt, w)?;
            }
        }
    }
    Ok(Subgraph {
        graph: b.build()?,
        original: keep.to_vec(),
    })
}

/// Extracts the subgraph induced by the `n` heaviest nodes (ties broken by
/// smaller id), weights renormalized.
pub fn top_n_by_weight(g: &PreferenceGraph, n: usize) -> Result<Subgraph, GraphError> {
    let mut ids: Vec<ItemId> = g.node_ids().collect();
    // Sort by descending weight, then ascending id for determinism.
    ids.sort_by(|&x, &y| {
        g.node_weight(y)
            .total_cmp(&g.node_weight(x))
            .then(x.cmp(&y))
    });
    ids.truncate(n.min(ids.len()));
    ids.sort_unstable();
    induced_subgraph(g, &ids)
}

/// Adds to every node whose out-weight sum is below 1 a self-loop completing
/// the sum to exactly 1.
///
/// This is the first step of the `NPC_k → VC_k` reduction of Theorem 3.1:
/// the self-loop weight represents requests no alternative can cover. Cover
/// values are unchanged (a retained node covers its own weight entirely
/// regardless).
pub fn complete_with_self_loops(g: &PreferenceGraph) -> Result<PreferenceGraph, GraphError> {
    let mut b = GraphBuilder::with_capacity(g.node_count(), g.edge_count() + g.node_count())
        .allow_self_loops(true)
        .skip_weight_sum_check(true);
    for v in g.node_ids() {
        match g.label(v) {
            Some(l) => b.add_node_labeled(g.node_weight(v), l),
            None => b.add_node(g.node_weight(v)),
        };
    }
    for v in g.node_ids() {
        for (u, w) in g.out_edges(v) {
            b.add_edge(v, u, w)?;
        }
        let deficit = 1.0 - g.out_weight_sum(v);
        if deficit > 0.0 {
            // Guard against tiny negative rounding; weights in (0,1].
            b.add_edge(v, v, deficit.min(1.0))?;
        }
    }
    b.build()
}

/// How parallel replacement paths combine in [`transitive_closure`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathCombination {
    /// Independent semantics: paths are independent events, combined
    /// probability `1 − Π (1 − p_i)`.
    Independent,
    /// Normalized semantics: probabilities add, clamped to 1.
    NormalizedClamped,
}

/// Computes the transitive closure of a *browse graph* under path-product
/// probabilities, producing a preference graph.
///
/// The paper assumes the preference graph directly encodes all transitive
/// replacement behavior ("the preference graph is the transitive closure of
/// a graph modeling browsing probabilities", Section 2). When only one-step
/// replacement probabilities are available, this helper expands paths of up
/// to `max_depth` hops, multiplying edge weights along each path and
/// combining parallel paths according to `combine`. Paths with probability
/// below `min_weight` are pruned, bounding the work on dense graphs.
///
/// The result never contains self-loops; cycles contribute only their
/// acyclic prefixes (a consumer does not "replace" an item with itself).
pub fn transitive_closure(
    g: &PreferenceGraph,
    max_depth: usize,
    min_weight: f64,
    combine: PathCombination,
) -> Result<PreferenceGraph, GraphError> {
    assert!(max_depth >= 1, "max_depth must be at least 1");
    let n = g.node_count();
    let mut b = GraphBuilder::with_capacity(n, g.edge_count()).skip_weight_sum_check(true);
    for v in g.node_ids() {
        match g.label(v) {
            Some(l) => b.add_node_labeled(g.node_weight(v), l),
            None => b.add_node(g.node_weight(v)),
        };
    }

    // Per-source DFS accumulating reach probabilities. `reach[u]` collects
    // the combined probability of reaching u from the current source.
    let mut reach: Vec<f64> = vec![0.0; n];
    let mut touched: Vec<ItemId> = Vec::new();
    for src in g.node_ids() {
        // Stack of (node, accumulated probability, depth, on_path marker).
        let mut on_path = vec![false; n];
        on_path[src.index()] = true;
        dfs_accumulate(
            g,
            src,
            1.0,
            max_depth,
            min_weight,
            combine,
            &mut on_path,
            &mut reach,
            &mut touched,
        );
        touched.sort_unstable();
        for &u in &touched {
            let w = reach[u.index()].min(1.0);
            if w > 0.0 {
                b.add_edge(src, u, w)?;
            }
            reach[u.index()] = 0.0;
        }
        touched.clear();
    }
    b.build()
}

#[allow(clippy::too_many_arguments)]
fn dfs_accumulate(
    g: &PreferenceGraph,
    v: ItemId,
    prob: f64,
    depth_left: usize,
    min_weight: f64,
    combine: PathCombination,
    on_path: &mut [bool],
    reach: &mut [f64],
    touched: &mut Vec<ItemId>,
) {
    if depth_left == 0 {
        return;
    }
    for (u, w) in g.out_edges(v) {
        if on_path[u.index()] {
            continue;
        }
        let p = prob * w;
        if p < min_weight {
            continue;
        }
        if reach[u.index()] == 0.0 {
            touched.push(u);
        }
        reach[u.index()] = match combine {
            PathCombination::Independent => 1.0 - (1.0 - reach[u.index()]) * (1.0 - p),
            PathCombination::NormalizedClamped => (reach[u.index()] + p).min(1.0),
        };
        on_path[u.index()] = true;
        dfs_accumulate(
            g,
            u,
            p,
            depth_left - 1,
            min_weight,
            combine,
            on_path,
            reach,
            touched,
        );
        on_path[u.index()] = false;
    }
}

/// Merges anti-parallel edge pairs `(v→u, u→v)` into the larger of the two
/// directions, producing a simple upper-triangular-ish graph.
///
/// Not used by the solver (the cover semantics need both directions); kept
/// for analyses comparing against undirected baselines.
pub fn dominant_direction(g: &PreferenceGraph) -> Result<PreferenceGraph, GraphError> {
    let mut b = GraphBuilder::with_capacity(g.node_count(), g.edge_count())
        .skip_weight_sum_check(true)
        .duplicate_edge_policy(DuplicateEdgePolicy::Error);
    for v in g.node_ids() {
        match g.label(v) {
            Some(l) => b.add_node_labeled(g.node_weight(v), l),
            None => b.add_node(g.node_weight(v)),
        };
    }
    for v in g.node_ids() {
        for (u, w) in g.out_edges(v) {
            let opposite = g.edge_weight(u, v).unwrap_or(0.0);
            let keep = if (w, u) > (opposite, v) {
                // Strictly dominant, or tie broken toward the edge whose
                // source id is smaller (v < u means (w,u) vs (w,v): u > v).
                true
            } else {
                false
            };
            if keep {
                b.add_edge(v, u, w)?;
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use crate::examples::{figure1, figure1_ids};
    use crate::WEIGHT_EPSILON;

    use super::*;

    #[test]
    fn normalize_rescales_to_one() {
        let mut b = GraphBuilder::new().skip_weight_sum_check(true);
        b.add_node(0.8 * 0.25);
        b.add_node(0.8 * 0.75);
        let g = b.build().unwrap();
        let n = normalize_node_weights(&g).unwrap();
        assert!((n.total_node_weight() - 1.0).abs() < 1e-12);
        assert!((n.node_weight(ItemId::new(0)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reverse_swaps_directions() {
        let (g, ids) = figure1_ids();
        let r = reverse(&g);
        assert_eq!(r.edge_weight(ids.b, ids.a), Some(2.0 / 3.0));
        assert_eq!(r.edge_weight(ids.a, ids.b), None);
        assert_eq!(r.edge_weight(ids.d, ids.e), Some(0.9));
        assert_eq!(r.node_count(), g.node_count());
        assert_eq!(r.edge_count(), g.edge_count());
        // Double reversal is identity.
        assert_eq!(reverse(&r), g);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let (g, ids) = figure1_ids();
        let sub = induced_subgraph(&g, &[ids.a, ids.b, ids.c]).unwrap();
        let sg = &sub.graph;
        assert_eq!(sg.node_count(), 3);
        // A->B, B->C, C->B survive; E->D does not.
        assert_eq!(sg.edge_count(), 3);
        // Weights renormalized: W(A)=0.33/0.77.
        assert!((sg.node_weight(ItemId::new(0)) - 0.33 / 0.77).abs() < 1e-12);
        assert!((sg.total_node_weight() - 1.0).abs() < WEIGHT_EPSILON);
        assert_eq!(sub.to_original(ItemId::new(2)), ids.c);
    }

    #[test]
    fn induced_subgraph_rejects_bad_input() {
        let (g, ids) = figure1_ids();
        assert!(induced_subgraph(&g, &[]).is_err());
        assert!(induced_subgraph(&g, &[ids.a, ids.a]).is_err());
        assert!(induced_subgraph(&g, &[ItemId::new(99)]).is_err());
    }

    #[test]
    fn top_n_by_weight_picks_heaviest() {
        let (g, ids) = figure1_ids();
        let sub = top_n_by_weight(&g, 2).unwrap();
        // Heaviest two are A (0.33) and then B or C (both 0.22, tie to B=id1).
        assert_eq!(sub.original, vec![ids.a, ids.b]);
        // Requesting more nodes than exist returns the whole graph.
        let all = top_n_by_weight(&g, 100).unwrap();
        assert_eq!(all.graph.node_count(), 5);
    }

    #[test]
    fn self_loop_completion() {
        let (g, ids) = figure1_ids();
        let c = complete_with_self_loops(&g).unwrap();
        // B and C had out-sum 1 already; A (2/3) gets a 1/3 self-loop,
        // E (0.9) a 0.1 loop, and D (no out-edges) a full loop.
        assert!((c.edge_weight(ids.a, ids.a).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.edge_weight(ids.b, ids.b), None);
        assert_eq!(c.edge_weight(ids.d, ids.d), Some(1.0));
        let e_loop = c.edge_weight(ids.e, ids.e).unwrap();
        assert!((e_loop - 0.1).abs() < 1e-12);
        for v in c.node_ids() {
            assert!((c.out_weight_sum(v) - 1.0).abs() < 1e-9, "node {v}");
        }
        // Original edges intact.
        assert_eq!(c.edge_weight(ids.c, ids.b), Some(1.0));
    }

    #[test]
    fn transitive_closure_two_hops() {
        // x -> y (0.5) -> z (0.4); closure adds x -> z with 0.2.
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        let z = b.add_node(1.0);
        b.add_edge(x, y, 0.5).unwrap();
        b.add_edge(y, z, 0.4).unwrap();
        let g = b.build().unwrap();

        let tc = transitive_closure(&g, 2, 1e-9, PathCombination::Independent).unwrap();
        assert_eq!(tc.edge_weight(x, y), Some(0.5));
        assert!((tc.edge_weight(x, z).unwrap() - 0.2).abs() < 1e-12);

        // Depth 1 leaves the graph unchanged.
        let tc1 = transitive_closure(&g, 1, 1e-9, PathCombination::Independent).unwrap();
        assert_eq!(tc1.edge_weight(x, z), None);
    }

    #[test]
    fn transitive_closure_combines_parallel_paths() {
        // x -> z directly (0.5) and via y (0.5 * 0.5 = 0.25).
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        let z = b.add_node(1.0);
        b.add_edge(x, z, 0.5).unwrap();
        b.add_edge(x, y, 0.5).unwrap();
        b.add_edge(y, z, 0.5).unwrap();
        let g = b.build().unwrap();

        let ind = transitive_closure(&g, 2, 1e-9, PathCombination::Independent).unwrap();
        // 1 - (1-0.5)(1-0.25) = 0.625
        assert!((ind.edge_weight(x, z).unwrap() - 0.625).abs() < 1e-12);

        let norm = transitive_closure(&g, 2, 1e-9, PathCombination::NormalizedClamped).unwrap();
        // 0.5 + 0.25 = 0.75
        assert!((norm.edge_weight(x, z).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn transitive_closure_handles_cycles() {
        // x <-> y cycle; closure must terminate and add no self-loops.
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        b.add_edge(x, y, 0.5).unwrap();
        b.add_edge(y, x, 0.5).unwrap();
        let g = b.build().unwrap();
        let tc = transitive_closure(&g, 5, 1e-9, PathCombination::Independent).unwrap();
        assert_eq!(tc.edge_weight(x, x), None);
        assert_eq!(tc.edge_weight(y, y), None);
        assert_eq!(tc.edge_weight(x, y), Some(0.5));
    }

    #[test]
    fn transitive_closure_prunes_below_min_weight() {
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        let z = b.add_node(1.0);
        b.add_edge(x, y, 0.1).unwrap();
        b.add_edge(y, z, 0.1).unwrap();
        let g = b.build().unwrap();
        // Path probability 0.01 < threshold 0.05 -> pruned.
        let tc = transitive_closure(&g, 2, 0.05, PathCombination::Independent).unwrap();
        assert_eq!(tc.edge_weight(x, z), None);
    }

    #[test]
    fn dominant_direction_keeps_heavier_side() {
        let (g, ids) = figure1_ids();
        let d = dominant_direction(&g).unwrap();
        // B<->C both weight 1: tie broken deterministically, exactly one kept.
        let bc = d.edge_weight(ids.b, ids.c).is_some();
        let cb = d.edge_weight(ids.c, ids.b).is_some();
        assert!(bc ^ cb);
        // One-directional edges survive.
        assert!(d.edge_weight(ids.e, ids.d).is_some());
        assert_eq!(figure1().edge_count() - 1, d.edge_count());
    }
}

//! Strongly-typed item identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dense, zero-based identifier for an item (node) in a
/// [`PreferenceGraph`](crate::PreferenceGraph).
///
/// Ids are assigned contiguously by [`GraphBuilder`](crate::GraphBuilder) in
/// insertion order, so they double as indices into the graph's internal
/// arrays. The backing type is `u32`: the paper's largest dataset has ~1.9M
/// items, and four billion items is comfortably beyond any real catalog.
///
/// `ItemId` intentionally does **not** implement arithmetic; it is an opaque
/// handle. Use [`ItemId::index`] when an array index is required.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
#[repr(transparent)]
pub struct ItemId(u32);

impl ItemId {
    /// Creates an id from a raw `u32` value.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        ItemId(raw)
    }

    /// Creates an id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        // lint: allow(no-expect) — the overflow panic is this method's documented contract (see # Panics)
        ItemId(u32::try_from(index).expect("item index exceeds u32::MAX"))
    }

    /// The raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The id as a `usize` array index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ItemId({})", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for ItemId {
    fn from(raw: u32) -> Self {
        ItemId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        let id = ItemId::new(17);
        assert_eq!(id.raw(), 17);
        assert_eq!(id.index(), 17);
    }

    #[test]
    fn from_index_roundtrip() {
        let id = ItemId::from_index(123_456);
        assert_eq!(id.index(), 123_456);
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn from_index_overflow_panics() {
        let _ = ItemId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(ItemId::new(1) < ItemId::new(2));
        assert_eq!(ItemId::new(5), ItemId::from(5u32));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", ItemId::new(3)), "3");
        assert_eq!(format!("{:?}", ItemId::new(3)), "ItemId(3)");
    }

    #[test]
    fn serde_transparent() {
        let id = ItemId::new(42);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "42");
        let back: ItemId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}

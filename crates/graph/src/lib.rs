//! # pcover-graph
//!
//! The *preference graph* substrate of the Preference Cover system, a Rust
//! reproduction of "Inventory Reduction via Maximal Coverage in E-Commerce"
//! (Gershtein, Milo, Novgorodov — EDBT 2020).
//!
//! A preference graph `G = (V, E, W_V, W_E)` is a directed graph whose nodes
//! are items. A node weight `W(v) ∈ [0, 1]` is the probability that a random
//! purchase request is for item `v` (node weights sum to 1). An edge
//! `v → u` with weight `W(v, u) ∈ (0, 1]` is the probability that a consumer
//! requesting `v` would accept `u` as an alternative when `v` is not offered.
//!
//! This crate provides:
//!
//! * [`PreferenceGraph`] — an immutable, cache-friendly compressed sparse row
//!   representation storing *both* adjacency directions. The solver's
//!   `Gain`/`AddNode` procedures (Algorithms 2–5 of the paper) iterate over
//!   the **in**-neighbors of a candidate node, while cover evaluation
//!   iterates **out**-neighbors, so both directions are materialized once at
//!   build time.
//! * [`GraphBuilder`] — a mutable staging area with validation, duplicate
//!   edge policies and optional node-weight normalization.
//! * [`transform`] — normalization, reversal, induced subgraphs, and the
//!   self-loop completion used by the Max Vertex Cover reduction.
//! * [`reduction`] — the approximation-preserving reductions of Theorems 3.1
//!   and 4.1 (`NPC_k ↔ VC_k`, `DS_k → IPC_k`), used as test oracles.
//! * [`io`] — JSON, CSV and a compact binary interchange format.
//! * [`examples`] — the paper's running examples (Figure 1, Figure 3) as
//!   ready-made graphs for tests and documentation.
//!
//! ## Quick example
//!
//! ```
//! use pcover_graph::{GraphBuilder, ItemId};
//!
//! let mut b = GraphBuilder::new();
//! let tv_lg = b.add_node_labeled(0.6, "LG 19in");
//! let tv_sam = b.add_node_labeled(0.4, "Samsung 19in");
//! b.add_edge(tv_lg, tv_sam, 0.7).unwrap();
//! let g = b.build().unwrap();
//! assert_eq!(g.node_count(), 2);
//! assert_eq!(g.out_degree(tv_lg), 1);
//! assert_eq!(g.in_degree(tv_sam), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod edge;
mod error;
mod graph;
mod id;
mod stats;
mod validate;

pub mod components;
pub mod delta;
pub mod examples;
pub mod float;
pub mod io;
pub mod reduction;
pub mod transform;

pub use builder::{DuplicateEdgePolicy, GraphBuilder};
pub use edge::Edge;
pub use error::GraphError;
pub use graph::{CsrParts, CsrSource, InEdgesIter, OutEdgesIter, PreferenceGraph};
pub use id::ItemId;
pub use stats::{DegreeHistogram, GraphStats};
pub use validate::{validate, ValidationIssue, ValidationOptions, ValidationReport};

/// Absolute tolerance used throughout the crate when comparing probability
/// sums against their theoretical targets (e.g. node weights summing to 1).
///
/// Weights are accumulated over potentially millions of `f64` additions, so
/// exact comparisons are meaningless; `1e-6` is far above accumulated
/// rounding error yet far below any semantically meaningful deviation.
pub const WEIGHT_EPSILON: f64 = 1e-6;

//! Incremental graph updates.
//!
//! Preference graphs are periodically re-derived from fresh clickstreams,
//! but many consumers of the graph (dashboards, the repair solver) want to
//! apply *small* changes — demand shifts, new items, delisted items,
//! re-estimated edges — without rebuilding from raw data. A [`GraphDelta`]
//! is an ordered batch of such changes; [`apply`] produces a new validated
//! graph (the CSR representation is immutable by design, so application
//! costs one rebuild pass, `O(n + m + |delta|)`).

// lint: allow-file(no-index) — ItemId values are dense indices assigned by GraphBuilder and every
// per-node/per-edge array is sized to node_count/edge_count, so accesses are in
// bounds by construction.
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{GraphBuilder, GraphError, ItemId, PreferenceGraph};

/// One atomic change.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Change {
    /// Set the (unnormalized) demand weight of an existing node.
    SetNodeWeight {
        /// Target node.
        node: ItemId,
        /// New weight (nonnegative; the batch is renormalized at the end).
        weight: f64,
    },
    /// Add a new node with the given (unnormalized) demand weight; new ids
    /// are assigned densely after the existing ones in batch order.
    AddNode {
        /// New weight.
        weight: f64,
        /// Optional label.
        label: Option<String>,
    },
    /// Insert or update edge `source → target`.
    UpsertEdge {
        /// Edge source.
        source: ItemId,
        /// Edge target.
        target: ItemId,
        /// New weight in `(0, 1]`.
        weight: f64,
    },
    /// Remove edge `source → target` (a no-op if absent).
    RemoveEdge {
        /// Edge source.
        source: ItemId,
        /// Edge target.
        target: ItemId,
    },
    /// Delist a node: its weight becomes 0 and all incident edges are
    /// dropped. The id remains valid (dense ids are load-bearing for
    /// downstream reports).
    Delist {
        /// Target node.
        node: ItemId,
    },
}

/// An ordered batch of changes.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphDelta {
    /// Changes, applied in order.
    pub changes: Vec<Change>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style append.
    pub fn push(mut self, change: Change) -> Self {
        self.changes.push(change);
        self
    }

    /// Number of changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when there are no changes.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Serializes the delta as JSON — the wire format accepted by the
    /// serving layer's `POST /admin/delta` endpoint.
    ///
    /// # Errors
    ///
    /// [`GraphError::Parse`] when serialization fails (a change carrying a
    /// non-finite weight is the only practical way there; such a delta
    /// would be rejected by [`apply`] anyway).
    pub fn to_json_string(&self) -> Result<String, GraphError> {
        serde_json::to_string(self).map_err(|e| GraphError::Parse {
            line: None,
            message: e.to_string(),
        })
    }

    /// Parses a delta from its JSON wire format (see [`Self::to_json_string`]).
    ///
    /// # Errors
    ///
    /// [`GraphError::Parse`] with the offending line on malformed input.
    pub fn from_json_str(s: &str) -> Result<Self, GraphError> {
        serde_json::from_str(s).map_err(|e| GraphError::Parse {
            line: Some(e.line()),
            message: e.to_string(),
        })
    }

    /// Whether any change in the batch rescales node weights when applied:
    /// [`apply`] renormalizes the weight vector iff this is true, so an
    /// edge-only delta leaves every node weight bitwise intact.
    pub fn rescales_node_weights(&self) -> bool {
        self.changes.iter().any(|c| {
            matches!(
                c,
                Change::SetNodeWeight { .. } | Change::AddNode { .. } | Change::Delist { .. }
            )
        })
    }

    /// The dirty frontier of the delta against `base`: every node whose own
    /// weight, in-row, or out-row can differ between `base` and
    /// `apply(base, self)` — delisted/re-weighted nodes together with their
    /// CSR in/out rows, plus both endpoints of every edge change that is
    /// not a bitwise no-op. Sorted by id and deduplicated.
    ///
    /// The set is conservative for compound deltas (a change undone later
    /// in the same batch still touches its nodes), but never misses a
    /// touch: **an empty result guarantees `apply` is a bitwise identity**
    /// (weights, labels, edges, and CSR layout all unchanged). Downstream
    /// layers rely on that invariant to keep cached solve results and warm
    /// solver states valid across a snapshot swap.
    ///
    /// Note that when [`Self::rescales_node_weights`] is true, the post-apply
    /// renormalization perturbs *every* node weight, not only this set;
    /// consumers that need bitwise weight stability must compare weights
    /// directly (the warm-start solver does).
    pub fn touched_nodes(&self, base: &PreferenceGraph) -> Vec<ItemId> {
        let n = base.node_count();
        let mut added = 0usize;
        let mut touched: Vec<ItemId> = Vec::new();
        // Rows only exist in `base` for ids below its node count; ids the
        // delta itself introduced have no base rows to walk.
        let mark_with_rows = |t: &mut Vec<ItemId>, v: ItemId| {
            t.push(v);
            if v.index() < n {
                for (x, _) in base.out_edges(v) {
                    t.push(x);
                }
                for (x, _) in base.in_edges(v) {
                    t.push(x);
                }
            }
        };
        for change in &self.changes {
            match change {
                Change::SetNodeWeight { node, .. } | Change::Delist { node } => {
                    mark_with_rows(&mut touched, *node);
                }
                Change::AddNode { .. } => {
                    touched.push(ItemId::from_index(n + added));
                    added += 1;
                }
                Change::UpsertEdge {
                    source,
                    target,
                    weight,
                } => {
                    let unchanged = source.index() < n
                        && target.index() < n
                        && base.edge_weight(*source, *target).map(f64::to_bits)
                            == Some(weight.to_bits());
                    if !unchanged {
                        touched.push(*source);
                        touched.push(*target);
                    }
                }
                Change::RemoveEdge { source, target } => {
                    let exists =
                        source.index() < n && target.index() < n && base.has_edge(*source, *target);
                    if exists {
                        touched.push(*source);
                        touched.push(*target);
                    }
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }
}

/// Applies `delta` to `g` and returns the new graph. When the batch
/// rescales node weights ([`GraphDelta::rescales_node_weights`]) the result
/// is renormalized to sum to 1; an edge-only batch skips renormalization so
/// every node weight survives bitwise — the stability the warm-start
/// solver's eval savings and cache survival across snapshot swaps depend
/// on.
///
/// # Errors
///
/// Unknown node ids, out-of-domain weights and similar problems surface as
/// [`GraphError`]s; the input graph is never modified.
pub fn apply(g: &PreferenceGraph, delta: &GraphDelta) -> Result<PreferenceGraph, GraphError> {
    // Materialize mutable views.
    let mut weights: Vec<f64> = g.node_weights().to_vec();
    let mut labels: Vec<String> = g
        .node_ids()
        .map(|v| g.label(v).unwrap_or("").to_owned())
        .collect();
    let mut any_label = g.has_labels();
    let mut edges: HashMap<(ItemId, ItemId), f64> = g
        .edges()
        .map(|e| ((e.source, e.target), e.weight))
        .collect();
    let mut delisted: Vec<bool> = vec![false; weights.len()];

    let check_node = |node: ItemId, len: usize| -> Result<(), GraphError> {
        if node.index() >= len {
            return Err(GraphError::UnknownNode { node });
        }
        Ok(())
    };

    for change in &delta.changes {
        match change {
            Change::SetNodeWeight { node, weight } => {
                check_node(*node, weights.len())?;
                if !weight.is_finite() || *weight < 0.0 {
                    return Err(GraphError::InvalidNodeWeight {
                        node: *node,
                        weight: *weight,
                    });
                }
                weights[node.index()] = *weight;
            }
            Change::AddNode { weight, label } => {
                if !weight.is_finite() || *weight < 0.0 {
                    return Err(GraphError::InvalidNodeWeight {
                        node: ItemId::from_index(weights.len()),
                        weight: *weight,
                    });
                }
                weights.push(*weight);
                labels.push(label.clone().unwrap_or_default());
                delisted.push(false);
                any_label |= label.is_some();
            }
            Change::UpsertEdge {
                source,
                target,
                weight,
            } => {
                check_node(*source, weights.len())?;
                check_node(*target, weights.len())?;
                if !weight.is_finite() || *weight <= 0.0 || *weight > 1.0 {
                    return Err(GraphError::InvalidEdgeWeight {
                        source: *source,
                        target: *target,
                        weight: *weight,
                    });
                }
                if source == target {
                    return Err(GraphError::SelfLoopDisallowed { node: *source });
                }
                edges.insert((*source, *target), *weight);
            }
            Change::RemoveEdge { source, target } => {
                check_node(*source, weights.len())?;
                check_node(*target, weights.len())?;
                edges.remove(&(*source, *target));
            }
            Change::Delist { node } => {
                check_node(*node, weights.len())?;
                weights[node.index()] = 0.0;
                delisted[node.index()] = true;
            }
        }
    }
    edges.retain(|(s, t), _| !delisted[s.index()] && !delisted[t.index()]);

    // Renormalize only when a change actually rescaled the weight vector.
    // An edge-only delta re-emits the (already normalized) weights of `g`
    // untouched; dividing them by their own sum again would perturb every
    // weight by float noise and silently invalidate all cached gains.
    let rescaled = delta.rescales_node_weights();
    let mut b = GraphBuilder::with_capacity(weights.len(), edges.len())
        .normalize_node_weights(rescaled)
        .skip_weight_sum_check(!rescaled);
    for (i, w) in weights.iter().enumerate() {
        if any_label {
            b.add_node_labeled(*w, labels[i].clone());
        } else {
            b.add_node(*w);
        }
    }
    let mut sorted: Vec<((ItemId, ItemId), f64)> = edges.into_iter().collect();
    sorted.sort_unstable_by_key(|&(key, _)| key);
    for ((s, t), w) in sorted {
        b.add_edge(s, t, w)?;
    }
    b.build()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use crate::examples::figure1_ids;

    use super::*;

    #[test]
    fn empty_delta_preserves_structure() {
        let (g, _) = figure1_ids();
        let g2 = apply(&g, &GraphDelta::new()).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.node_ids() {
            assert!((g2.node_weight(v) - g.node_weight(v)).abs() < 1e-12);
        }
    }

    #[test]
    fn demand_shift_renormalizes() {
        let (g, ids) = figure1_ids();
        let delta = GraphDelta::new().push(Change::SetNodeWeight {
            node: ids.e,
            weight: 0.60,
        });
        let g2 = apply(&g, &delta).unwrap();
        assert!((g2.total_node_weight() - 1.0).abs() < 1e-9);
        // E's share rose from 0.17 to 0.60 / (0.83 + 0.60).
        let expected = 0.60 / (0.33 + 0.22 + 0.22 + 0.06 + 0.60);
        assert!((g2.node_weight(ids.e) - expected).abs() < 1e-12);
    }

    #[test]
    fn add_node_and_edge() {
        let (g, ids) = figure1_ids();
        let delta = GraphDelta::new()
            .push(Change::AddNode {
                weight: 0.1,
                label: Some("F".into()),
            })
            .push(Change::UpsertEdge {
                source: ItemId::new(5),
                target: ids.d,
                weight: 0.4,
            });
        let g2 = apply(&g, &delta).unwrap();
        assert_eq!(g2.node_count(), 6);
        let f = ItemId::new(5);
        assert_eq!(g2.label(f), Some("F"));
        assert_eq!(g2.edge_weight(f, ids.d), Some(0.4));
    }

    #[test]
    fn upsert_overwrites_and_remove_is_idempotent() {
        let (g, ids) = figure1_ids();
        let delta = GraphDelta::new()
            .push(Change::UpsertEdge {
                source: ids.a,
                target: ids.b,
                weight: 0.5,
            })
            .push(Change::RemoveEdge {
                source: ids.e,
                target: ids.d,
            })
            .push(Change::RemoveEdge {
                source: ids.e,
                target: ids.d,
            });
        let g2 = apply(&g, &delta).unwrap();
        assert_eq!(g2.edge_weight(ids.a, ids.b), Some(0.5));
        assert_eq!(g2.edge_weight(ids.e, ids.d), None);
        assert_eq!(g2.edge_count(), g.edge_count() - 1);
    }

    #[test]
    fn delist_removes_weight_and_edges() {
        let (g, ids) = figure1_ids();
        let g2 = apply(&g, &GraphDelta::new().push(Change::Delist { node: ids.b })).unwrap();
        assert_eq!(g2.node_weight(ids.b), 0.0);
        assert_eq!(g2.edge_weight(ids.a, ids.b), None);
        assert_eq!(g2.edge_weight(ids.b, ids.c), None);
        assert_eq!(g2.edge_weight(ids.c, ids.b), None);
        // Remaining weights renormalized over A, C, D, E.
        assert!((g2.total_node_weight() - 1.0).abs() < 1e-9);
        assert!((g2.node_weight(ids.a) - 0.33 / 0.78).abs() < 1e-12);
    }

    #[test]
    fn changes_apply_in_order() {
        let (g, ids) = figure1_ids();
        // Delist then re-weight: the later change wins for the weight, but
        // incident edges stay dropped (delist marked them).
        let delta =
            GraphDelta::new()
                .push(Change::Delist { node: ids.b })
                .push(Change::SetNodeWeight {
                    node: ids.b,
                    weight: 0.22,
                });
        let g2 = apply(&g, &delta).unwrap();
        assert!(g2.node_weight(ids.b) > 0.0);
        assert_eq!(g2.edge_weight(ids.a, ids.b), None);
    }

    #[test]
    fn validation_errors() {
        let (g, ids) = figure1_ids();
        let bad_node = GraphDelta::new().push(Change::SetNodeWeight {
            node: ItemId::new(99),
            weight: 0.1,
        });
        assert!(matches!(
            apply(&g, &bad_node),
            Err(GraphError::UnknownNode { .. })
        ));

        let bad_weight = GraphDelta::new().push(Change::UpsertEdge {
            source: ids.a,
            target: ids.b,
            weight: 1.5,
        });
        assert!(matches!(
            apply(&g, &bad_weight),
            Err(GraphError::InvalidEdgeWeight { .. })
        ));

        let self_loop = GraphDelta::new().push(Change::UpsertEdge {
            source: ids.a,
            target: ids.a,
            weight: 0.5,
        });
        assert!(matches!(
            apply(&g, &self_loop),
            Err(GraphError::SelfLoopDisallowed { .. })
        ));

        let negative = GraphDelta::new().push(Change::AddNode {
            weight: -1.0,
            label: None,
        });
        assert!(apply(&g, &negative).is_err());
    }

    #[test]
    fn empty_delta_is_identity() {
        // Beyond node/edge counts: weights, labels, and every edge weight
        // survive a round through apply() bit-for-bit (renormalizing an
        // already-normalized weight vector is a no-op up to float noise).
        let (g, _) = figure1_ids();
        let g2 = apply(&g, &GraphDelta::new()).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.node_ids() {
            assert!((g2.node_weight(v) - g.node_weight(v)).abs() < 1e-12);
            assert_eq!(g2.label(v), g.label(v));
        }
        for e in g.edges() {
            assert_eq!(g2.edge_weight(e.source, e.target), Some(e.weight));
        }
    }

    #[test]
    fn delist_edge_target_drops_incoming_edges() {
        // D is a pure edge *target* in Figure 1 (E→D, and D sources
        // nothing); delisting it must remove the incoming edge even though
        // no outgoing adjacency mentions D.
        let (g, ids) = figure1_ids();
        let g2 = apply(&g, &GraphDelta::new().push(Change::Delist { node: ids.d })).unwrap();
        assert_eq!(g2.node_weight(ids.d), 0.0);
        assert_eq!(
            g2.edge_weight(ids.e, ids.d),
            None,
            "edge into the delisted target must be dropped"
        );
        assert_eq!(g2.edge_count(), g.edge_count() - 1);
        // Unrelated edges survive, and the remaining mass renormalizes.
        assert!(g2.edge_weight(ids.a, ids.b).is_some());
        assert!((g2.total_node_weight() - 1.0).abs() < 1e-9);
        assert!((g2.node_weight(ids.a) - 0.33 / 0.94).abs() < 1e-12);
    }

    #[test]
    fn set_node_weight_to_zero_renormalizes_over_the_rest() {
        let (g, ids) = figure1_ids();
        let delta = GraphDelta::new().push(Change::SetNodeWeight {
            node: ids.a,
            weight: 0.0,
        });
        let g2 = apply(&g, &delta).unwrap();
        assert_eq!(g2.node_weight(ids.a), 0.0);
        assert!((g2.total_node_weight() - 1.0).abs() < 1e-9);
        // The remaining mass (0.22 + 0.22 + 0.06 + 0.17 = 0.67) is scaled
        // back up to 1; B's share becomes 0.22 / 0.67.
        assert!((g2.node_weight(ids.b) - 0.22 / 0.67).abs() < 1e-12);
        // Unlike Delist, zeroing the weight keeps incident edges: the item
        // still transfers demand even if it has none of its own.
        assert!(g2.edge_weight(ids.a, ids.b).is_some());
    }

    #[test]
    fn json_helpers_roundtrip_and_report_parse_errors() {
        let delta = GraphDelta::new()
            .push(Change::SetNodeWeight {
                node: ItemId::new(2),
                weight: 0.4,
            })
            .push(Change::RemoveEdge {
                source: ItemId::new(0),
                target: ItemId::new(2),
            });
        let json = delta.to_json_string().unwrap();
        let back = GraphDelta::from_json_str(&json).unwrap();
        assert_eq!(back, delta);

        let err = GraphDelta::from_json_str("{\"changes\": [{\"Nope\": {}}]}");
        assert!(matches!(err, Err(GraphError::Parse { .. })));
    }

    #[test]
    fn touched_nodes_covers_weight_change_rows() {
        let (g, ids) = figure1_ids();
        // B sources edges to A and C and receives from A and C: weight
        // change dirties B plus both rows.
        let delta = GraphDelta::new().push(Change::SetNodeWeight {
            node: ids.b,
            weight: 0.5,
        });
        let mut expected = vec![ids.a, ids.b, ids.c];
        expected.sort_unstable();
        assert_eq!(delta.touched_nodes(&g), expected);
        // Delisting has the same frontier.
        let delist = GraphDelta::new().push(Change::Delist { node: ids.b });
        assert_eq!(delist.touched_nodes(&g), expected);
    }

    #[test]
    fn touched_nodes_edge_changes_mark_endpoints_only() {
        let (g, ids) = figure1_ids();
        let delta = GraphDelta::new()
            .push(Change::UpsertEdge {
                source: ids.a,
                target: ids.b,
                weight: 0.9,
            })
            .push(Change::RemoveEdge {
                source: ids.e,
                target: ids.d,
            });
        let mut expected = vec![ids.a, ids.b, ids.d, ids.e];
        expected.sort_unstable();
        assert_eq!(delta.touched_nodes(&g), expected);
    }

    #[test]
    fn touched_nodes_skips_bitwise_noop_edge_changes() {
        let (g, ids) = figure1_ids();
        let same = g.edge_weight(ids.a, ids.b).unwrap();
        let delta = GraphDelta::new()
            .push(Change::UpsertEdge {
                source: ids.a,
                target: ids.b,
                weight: same,
            })
            .push(Change::RemoveEdge {
                source: ids.d,
                target: ids.a,
            }); // absent edge: removing it is a no-op
        assert!(delta.touched_nodes(&g).is_empty());
        // And the invariant: empty touched set ⟹ apply is bitwise identity.
        let g2 = apply(&g, &delta).unwrap();
        for v in g.node_ids() {
            assert_eq!(g2.node_weight(v).to_bits(), g.node_weight(v).to_bits());
        }
        assert_eq!(g2.edge_count(), g.edge_count());
        for e in g.edges() {
            assert_eq!(
                g2.edge_weight(e.source, e.target).map(f64::to_bits),
                Some(e.weight.to_bits())
            );
        }
    }

    #[test]
    fn touched_nodes_includes_added_nodes() {
        let (g, _) = figure1_ids();
        let delta = GraphDelta::new()
            .push(Change::AddNode {
                weight: 0.1,
                label: None,
            })
            .push(Change::UpsertEdge {
                source: ItemId::new(5),
                target: ItemId::new(0),
                weight: 0.4,
            });
        let touched = delta.touched_nodes(&g);
        assert!(touched.contains(&ItemId::new(5)));
        assert!(touched.contains(&ItemId::new(0)));
        assert!(delta.rescales_node_weights());
    }

    #[test]
    fn edge_only_delta_preserves_node_weights_bitwise() {
        let (g, ids) = figure1_ids();
        let delta = GraphDelta::new()
            .push(Change::UpsertEdge {
                source: ids.a,
                target: ids.b,
                weight: 0.125,
            })
            .push(Change::RemoveEdge {
                source: ids.e,
                target: ids.d,
            });
        assert!(!delta.rescales_node_weights());
        let g2 = apply(&g, &delta).unwrap();
        for v in g.node_ids() {
            assert_eq!(
                g2.node_weight(v).to_bits(),
                g.node_weight(v).to_bits(),
                "edge-only delta must not perturb node weights"
            );
        }
        assert_eq!(g2.edge_weight(ids.a, ids.b), Some(0.125));
        assert_eq!(g2.edge_weight(ids.e, ids.d), None);
    }

    #[test]
    fn delta_serde_roundtrip() {
        let delta = GraphDelta::new()
            .push(Change::Delist {
                node: ItemId::new(1),
            })
            .push(Change::AddNode {
                weight: 0.5,
                label: Some("new".into()),
            });
        let json = serde_json::to_string(&delta).unwrap();
        let back: GraphDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, delta);
    }
}

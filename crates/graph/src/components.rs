//! Weakly connected components of a preference graph.
//!
//! Real preference graphs decompose into many independent substitution
//! islands (items in different departments never substitute for each
//! other). Because a node's cover depends only on its out-neighbors, the
//! cover function is **additive across weakly connected components** — the
//! partitioned solver in `pcover-core` exploits this to solve components
//! independently and merge their greedy sequences.

// lint: allow-file(no-index) — ItemId values are dense indices assigned by GraphBuilder and every
// per-node/per-edge array is sized to node_count/edge_count, so accesses are in
// bounds by construction.
use crate::{ItemId, PreferenceGraph};

/// The component decomposition: a dense component id per node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// `component_of[v.index()]` — the component id of node `v`.
    pub component_of: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// The members of each component, in ascending node-id order.
    pub fn members(&self) -> Vec<Vec<ItemId>> {
        let mut members: Vec<Vec<ItemId>> = vec![Vec::new(); self.count];
        for (i, &c) in self.component_of.iter().enumerate() {
            members[c as usize].push(ItemId::from_index(i));
        }
        members
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.component_of {
            sizes[c as usize] += 1;
        }
        sizes.into_iter().max().unwrap_or(0)
    }
}

/// Computes weakly connected components (edge orientation ignored) with an
/// iterative union-find; `O((n + m) α(n))`.
pub fn weakly_connected_components(g: &PreferenceGraph) -> Components {
    let n = g.node_count();
    let mut parent: Vec<u32> = (0..n as u32).collect();

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            // Path halving.
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }

    for v in g.node_ids() {
        for (u, _) in g.out_edges(v) {
            let a = find(&mut parent, v.raw());
            let b = find(&mut parent, u.raw());
            if a != b {
                // Union by id keeps roots minimal, giving deterministic
                // component numbering.
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi as usize] = lo;
            }
        }
    }

    // Relabel roots densely in first-appearance (ascending id) order.
    let mut component_of = vec![u32::MAX; n];
    let mut next = 0u32;
    for i in 0..n as u32 {
        let root = find(&mut parent, i);
        if component_of[root as usize] == u32::MAX {
            component_of[root as usize] = next;
            next += 1;
        }
        component_of[i as usize] = component_of[root as usize];
    }

    Components {
        component_of,
        count: next as usize,
    }
}

#[cfg(test)]
mod tests {
    use crate::examples::figure1_ids;
    use crate::GraphBuilder;

    use super::*;

    #[test]
    fn figure1_has_two_islands() {
        // {A, B, C} and {D, E}.
        let (g, ids) = figure1_ids();
        let c = weakly_connected_components(&g);
        assert_eq!(c.count, 2);
        assert_eq!(c.component_of[ids.a.index()], c.component_of[ids.b.index()]);
        assert_eq!(c.component_of[ids.b.index()], c.component_of[ids.c.index()]);
        assert_eq!(c.component_of[ids.d.index()], c.component_of[ids.e.index()]);
        assert_ne!(c.component_of[ids.a.index()], c.component_of[ids.d.index()]);
        assert_eq!(c.largest(), 3);
        let members = c.members();
        assert_eq!(members[0], vec![ids.a, ids.b, ids.c]);
        assert_eq!(members[1], vec![ids.d, ids.e]);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        for _ in 0..4 {
            b.add_node(1.0);
        }
        let g = b.build().unwrap();
        let c = weakly_connected_components(&g);
        assert_eq!(c.count, 4);
        assert_eq!(c.largest(), 1);
    }

    #[test]
    fn orientation_is_ignored() {
        // x -> y and z -> y: all weakly connected despite no directed path
        // from x to z.
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        let z = b.add_node(1.0);
        b.add_edge(x, y, 0.5).unwrap();
        b.add_edge(z, y, 0.5).unwrap();
        let g = b.build().unwrap();
        let c = weakly_connected_components(&g);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn component_ids_are_dense_and_deterministic() {
        let (g, _) = figure1_ids();
        let a = weakly_connected_components(&g);
        let b = weakly_connected_components(&g);
        assert_eq!(a, b);
        // Dense 0..count, first component contains node 0.
        assert_eq!(a.component_of[0], 0);
        assert!(a.component_of.iter().all(|&c| (c as usize) < a.count));
    }
}

//! Post-hoc validation of preference graphs.
//!
//! [`GraphBuilder`](crate::GraphBuilder) already rejects malformed input at
//! construction time; this module re-checks invariants on *existing* graphs
//! (e.g. after deserialization from an untrusted file, or after transforms)
//! and reports all findings at once instead of failing on the first.

use crate::{ItemId, PreferenceGraph, WEIGHT_EPSILON};

/// Tunable thresholds for [`validate`].
#[derive(Clone, Copy, Debug)]
pub struct ValidationOptions {
    /// Tolerance for the node-weight sum and normalized out-sum checks.
    pub epsilon: f64,
    /// Check the Normalized variant invariant (out-weight sums ≤ 1).
    pub check_normalized: bool,
    /// Treat self-loops as issues (they are inert w.r.t. cover but usually
    /// indicate an adaptation bug).
    pub reject_self_loops: bool,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions {
            epsilon: WEIGHT_EPSILON,
            check_normalized: false,
            reject_self_loops: true,
        }
    }
}

/// A single validation finding.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationIssue {
    /// A node weight outside `[0, 1]` or non-finite.
    NodeWeightOutOfRange {
        /// Offending node.
        node: ItemId,
        /// Its weight.
        weight: f64,
    },
    /// An edge weight outside `(0, 1]` or non-finite.
    EdgeWeightOutOfRange {
        /// Edge source.
        source: ItemId,
        /// Edge target.
        target: ItemId,
        /// Its weight.
        weight: f64,
    },
    /// Node weights do not sum to 1 within tolerance.
    WeightSumMismatch {
        /// The actual sum.
        sum: f64,
    },
    /// A node's out-weight sum exceeds 1 (Normalized variant check).
    OutSumExceedsOne {
        /// Offending node.
        node: ItemId,
        /// Its out-weight sum.
        sum: f64,
    },
    /// A self-loop edge.
    SelfLoop {
        /// The node carrying the loop.
        node: ItemId,
    },
}

/// The outcome of [`validate`]: every issue found, in deterministic order.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// All findings, ordered by check then node id.
    pub issues: Vec<ValidationIssue>,
}

impl ValidationReport {
    /// True when no issues were found.
    pub fn is_valid(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Checks all invariants of `g` under `opts` and returns every violation.
pub fn validate(g: &PreferenceGraph, opts: &ValidationOptions) -> ValidationReport {
    let mut report = ValidationReport::default();

    for v in g.node_ids() {
        let w = g.node_weight(v);
        if !w.is_finite() || !(0.0..=1.0).contains(&w) {
            report
                .issues
                .push(ValidationIssue::NodeWeightOutOfRange { node: v, weight: w });
        }
    }

    let sum = g.total_node_weight();
    if (sum - 1.0).abs() > opts.epsilon {
        report
            .issues
            .push(ValidationIssue::WeightSumMismatch { sum });
    }

    for v in g.node_ids() {
        for (u, w) in g.out_edges(v) {
            if !w.is_finite() || w <= 0.0 || w > 1.0 {
                report.issues.push(ValidationIssue::EdgeWeightOutOfRange {
                    source: v,
                    target: u,
                    weight: w,
                });
            }
            if opts.reject_self_loops && u == v {
                report.issues.push(ValidationIssue::SelfLoop { node: v });
            }
        }
        if opts.check_normalized {
            let s = g.out_weight_sum(v);
            if s > 1.0 + opts.epsilon {
                report
                    .issues
                    .push(ValidationIssue::OutSumExceedsOne { node: v, sum: s });
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    use super::*;

    #[test]
    fn valid_graph_passes() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.6);
        let c = b.add_node(0.4);
        b.add_edge(a, c, 0.5).unwrap();
        let g = b.build().unwrap();
        let report = validate(&g, &ValidationOptions::default());
        assert!(report.is_valid(), "{:?}", report.issues);
    }

    #[test]
    fn normalized_check_flags_oversum() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.5);
        let c = b.add_node(0.3);
        let d = b.add_node(0.2);
        b.add_edge(a, c, 0.9).unwrap();
        b.add_edge(a, d, 0.9).unwrap();
        let g = b.build().unwrap();

        let lax = validate(&g, &ValidationOptions::default());
        assert!(lax.is_valid());

        let strict = validate(
            &g,
            &ValidationOptions {
                check_normalized: true,
                ..ValidationOptions::default()
            },
        );
        assert_eq!(strict.issues.len(), 1);
        assert!(matches!(
            strict.issues[0],
            ValidationIssue::OutSumExceedsOne { node, .. } if node == a
        ));
    }

    #[test]
    fn self_loops_flagged_by_default_only() {
        let mut b = GraphBuilder::new().allow_self_loops(true);
        let a = b.add_node(1.0);
        b.add_edge(a, a, 0.4).unwrap();
        let g = b.build().unwrap();

        let default = validate(&g, &ValidationOptions::default());
        assert!(matches!(
            default.issues[..],
            [ValidationIssue::SelfLoop { .. }]
        ));

        let lax = validate(
            &g,
            &ValidationOptions {
                reject_self_loops: false,
                ..ValidationOptions::default()
            },
        );
        assert!(lax.is_valid());
    }

    #[test]
    fn weight_sum_mismatch_detected() {
        let mut b = GraphBuilder::new().skip_weight_sum_check(true);
        b.add_node(0.4);
        b.add_node(0.3);
        let g = b.build().unwrap();
        let report = validate(&g, &ValidationOptions::default());
        assert!(matches!(
            report.issues[..],
            [ValidationIssue::WeightSumMismatch { .. }]
        ));
    }
}

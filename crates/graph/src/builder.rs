//! Mutable construction of [`PreferenceGraph`]s with validation.

// lint: allow-file(no-index) — ItemId values are dense indices assigned by GraphBuilder and every
// per-node/per-edge array is sized to node_count/edge_count, so accesses are in
// bounds by construction.
use crate::{Edge, GraphError, ItemId, PreferenceGraph, WEIGHT_EPSILON};

/// What to do when the same directed edge `(source, target)` is added more
/// than once.
///
/// Clickstream adaptation naturally aggregates before emitting edges, so the
/// default is to treat duplicates as a bug ([`Error`](Self::Error)); the
/// other policies support merging pre-aggregated partial inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DuplicateEdgePolicy {
    /// Reject the build with [`GraphError::DuplicateEdge`].
    #[default]
    Error,
    /// Keep the first weight, ignore later ones.
    KeepFirst,
    /// Keep the maximum weight.
    Max,
    /// Sum the weights, clamping the result to 1.
    SumClamped,
}

/// A staging area for assembling a [`PreferenceGraph`].
///
/// The builder checks every weight on insertion, applies the configured
/// duplicate-edge policy at build time, and produces both CSR directions in
/// a single `O(n + m)` pass (counting sort on source, then a stable
/// redistribution into the in-direction).
///
/// # Example
///
/// ```
/// use pcover_graph::{GraphBuilder, DuplicateEdgePolicy};
///
/// let mut b = GraphBuilder::new().duplicate_edge_policy(DuplicateEdgePolicy::Max);
/// let a = b.add_node(0.5);
/// let c = b.add_node(0.5);
/// b.add_edge(a, c, 0.2).unwrap();
/// b.add_edge(a, c, 0.6).unwrap(); // Max policy keeps 0.6
/// let g = b.build().unwrap();
/// assert_eq!(g.edge_weight(a, c), Some(0.6));
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    node_weights: Vec<f64>,
    labels: Vec<String>,
    any_label: bool,
    edges: Vec<Edge>,
    duplicate_policy: DuplicateEdgePolicy,
    allow_self_loops: bool,
    normalize_node_weights: bool,
    skip_weight_sum_check: bool,
}

impl GraphBuilder {
    /// Creates an empty builder with default options: duplicate edges are
    /// errors, self-loops are rejected, node weights must already sum to 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            node_weights: Vec::with_capacity(nodes),
            labels: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            ..Self::default()
        }
    }

    /// Sets the duplicate-edge policy (builder style).
    pub fn duplicate_edge_policy(mut self, policy: DuplicateEdgePolicy) -> Self {
        self.duplicate_policy = policy;
        self
    }

    /// Permits self-loops (used by Max Vertex Cover reduction instances;
    /// self-loops never affect cover values).
    pub fn allow_self_loops(mut self, allow: bool) -> Self {
        self.allow_self_loops = allow;
        self
    }

    /// Requests that node weights be rescaled to sum to exactly 1 at build
    /// time instead of being validated against 1.
    pub fn normalize_node_weights(mut self, normalize: bool) -> Self {
        self.normalize_node_weights = normalize;
        self
    }

    /// Disables the "node weights sum to 1" check entirely.
    ///
    /// Intended for intermediate graphs in reductions where node weights
    /// carry other semantics (e.g. the `VC_k → NPC_k` direction of Theorem
    /// 3.1 before its final normalization step).
    pub fn skip_weight_sum_check(mut self, skip: bool) -> Self {
        self.skip_weight_sum_check = skip;
        self
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_weights.len()
    }

    /// Number of edges added so far (before duplicate resolution).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an unlabeled node with request probability `weight`, returning
    /// its id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` nodes are added. Weight validity is
    /// checked at [`build`](Self::build) time so that
    /// [`normalize_node_weights`](Self::normalize_node_weights) can accept
    /// raw counts.
    pub fn add_node(&mut self, weight: f64) -> ItemId {
        let id = ItemId::from_index(self.node_weights.len());
        self.node_weights.push(weight);
        self.labels.push(String::new());
        id
    }

    /// Adds a labeled node, returning its id.
    pub fn add_node_labeled(&mut self, weight: f64, label: impl Into<String>) -> ItemId {
        let id = self.add_node(weight);
        self.labels[id.index()] = label.into();
        self.any_label = true;
        id
    }

    /// Adds a directed edge `source → target` with the given alternative
    /// probability.
    ///
    /// Fails fast on invalid weights, unknown endpoints and disallowed
    /// self-loops; duplicate edges are resolved at build time.
    pub fn add_edge(
        &mut self,
        source: ItemId,
        target: ItemId,
        weight: f64,
    ) -> Result<(), GraphError> {
        if source.index() >= self.node_weights.len() {
            return Err(GraphError::UnknownNode { node: source });
        }
        if target.index() >= self.node_weights.len() {
            return Err(GraphError::UnknownNode { node: target });
        }
        if !weight.is_finite() || weight <= 0.0 || weight > 1.0 {
            return Err(GraphError::InvalidEdgeWeight {
                source,
                target,
                weight,
            });
        }
        if source == target && !self.allow_self_loops {
            return Err(GraphError::SelfLoopDisallowed { node: source });
        }
        self.edges.push(Edge::new(source, target, weight));
        Ok(())
    }

    /// Validates everything, resolves duplicates and assembles the CSR
    /// arrays.
    pub fn build(mut self) -> Result<PreferenceGraph, GraphError> {
        if self.node_weights.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        if self.edges.len() > u32::MAX as usize {
            return Err(GraphError::CapacityExceeded {
                what: "edge count exceeds u32::MAX",
            });
        }

        // Node weight domain checks (before optional normalization the
        // weights may be raw nonnegative counts when normalizing).
        for (i, &w) in self.node_weights.iter().enumerate() {
            let bad = if self.normalize_node_weights {
                !w.is_finite() || w < 0.0
            } else {
                !w.is_finite() || !(0.0..=1.0).contains(&w)
            };
            if bad {
                return Err(GraphError::InvalidNodeWeight {
                    node: ItemId::from_index(i),
                    weight: w,
                });
            }
        }

        if self.normalize_node_weights {
            let sum: f64 = self.node_weights.iter().sum();
            if sum > 0.0 {
                for w in &mut self.node_weights {
                    *w /= sum;
                }
            }
        } else if !self.skip_weight_sum_check {
            let sum: f64 = self.node_weights.iter().sum();
            if (sum - 1.0).abs() > WEIGHT_EPSILON {
                return Err(GraphError::NodeWeightsNotNormalized { sum });
            }
        }

        // Resolve duplicate edges. Sort by (source, target); duplicates are
        // adjacent afterwards.
        self.edges.sort_unstable_by_key(|e| (e.source, e.target));
        let mut resolved: Vec<Edge> = Vec::with_capacity(self.edges.len());
        for e in self.edges.drain(..) {
            match resolved.last_mut() {
                Some(last) if last.source == e.source && last.target == e.target => {
                    match self.duplicate_policy {
                        DuplicateEdgePolicy::Error => {
                            return Err(GraphError::DuplicateEdge {
                                source: e.source,
                                target: e.target,
                            })
                        }
                        DuplicateEdgePolicy::KeepFirst => {}
                        DuplicateEdgePolicy::Max => {
                            if e.weight > last.weight {
                                last.weight = e.weight;
                            }
                        }
                        DuplicateEdgePolicy::SumClamped => {
                            last.weight = (last.weight + e.weight).min(1.0);
                        }
                    }
                }
                _ => resolved.push(e),
            }
        }

        let n = self.node_weights.len();
        let m = resolved.len();

        // Out-CSR directly from the sorted edge list.
        let mut out_offsets = vec![0u32; n + 1];
        for e in &resolved {
            out_offsets[e.source.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        let mut out_weights = Vec::with_capacity(m);
        for e in &resolved {
            out_targets.push(e.target);
            out_weights.push(e.weight);
        }

        // In-CSR by counting sort on target. Because the edge list is sorted
        // by (source, target), a stable pass yields in-rows sorted by source.
        let mut in_offsets = vec![0u32; n + 1];
        for e in &resolved {
            in_offsets[e.target.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
        let mut in_sources = vec![ItemId::new(0); m];
        let mut in_weights = vec![0.0f64; m];
        for e in resolved.iter() {
            let slot = cursor[e.target.index()] as usize;
            in_sources[slot] = e.source;
            in_weights[slot] = e.weight;
            cursor[e.target.index()] += 1;
        }

        let labels = if self.any_label {
            Some(std::mem::take(&mut self.labels))
        } else {
            None
        };

        Ok(PreferenceGraph::new_owned(
            crate::graph::OwnedCsr {
                node_weights: self.node_weights,
                out_offsets,
                out_targets,
                out_weights,
                in_offsets,
                in_sources,
                in_weights,
            },
            labels,
        ))
    }

    /// Like [`build`](Self::build) but additionally enforces the Normalized
    /// variant invariant: every node's outgoing edge weights sum to at most
    /// 1 (within [`WEIGHT_EPSILON`]).
    pub fn build_normalized(self) -> Result<PreferenceGraph, GraphError> {
        let g = self.build()?;
        for v in g.node_ids() {
            let s = g.out_weight_sum(v);
            if s > 1.0 + WEIGHT_EPSILON {
                return Err(GraphError::OutWeightsExceedOne { node: v, sum: s });
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_rejected() {
        assert!(matches!(
            GraphBuilder::new().build(),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn single_node_graph() {
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn invalid_node_weight_rejected() {
        let mut b = GraphBuilder::new();
        b.add_node(1.5);
        assert!(matches!(
            b.build(),
            Err(GraphError::InvalidNodeWeight { .. })
        ));

        let mut b = GraphBuilder::new();
        b.add_node(f64::NAN);
        assert!(matches!(
            b.build(),
            Err(GraphError::InvalidNodeWeight { .. })
        ));
    }

    #[test]
    fn negative_weight_rejected_even_when_normalizing() {
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        b.add_node(-3.0);
        b.add_node(5.0);
        assert!(matches!(
            b.build(),
            Err(GraphError::InvalidNodeWeight { .. })
        ));
    }

    #[test]
    fn weight_sum_check() {
        let mut b = GraphBuilder::new();
        b.add_node(0.4);
        b.add_node(0.4);
        assert!(matches!(
            b.build(),
            Err(GraphError::NodeWeightsNotNormalized { .. })
        ));
    }

    #[test]
    fn normalization_from_counts() {
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        b.add_node(30.0);
        b.add_node(10.0);
        let g = b.build().unwrap();
        assert!((g.node_weight(ItemId::new(0)) - 0.75).abs() < 1e-12);
        assert!((g.total_node_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skip_weight_sum_check_allows_arbitrary_sums() {
        let mut b = GraphBuilder::new().skip_weight_sum_check(true);
        b.add_node(0.4);
        b.add_node(0.4);
        let g = b.build().unwrap();
        assert!((g.total_node_weight() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn edge_validation() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.5);
        let c = b.add_node(0.5);
        assert!(matches!(
            b.add_edge(a, ItemId::new(7), 0.5),
            Err(GraphError::UnknownNode { .. })
        ));
        assert!(matches!(
            b.add_edge(a, c, 0.0),
            Err(GraphError::InvalidEdgeWeight { .. })
        ));
        assert!(matches!(
            b.add_edge(a, c, 1.0001),
            Err(GraphError::InvalidEdgeWeight { .. })
        ));
        assert!(matches!(
            b.add_edge(a, c, f64::INFINITY),
            Err(GraphError::InvalidEdgeWeight { .. })
        ));
        assert!(matches!(
            b.add_edge(a, a, 0.5),
            Err(GraphError::SelfLoopDisallowed { .. })
        ));
        assert!(b.add_edge(a, c, 1.0).is_ok());
    }

    #[test]
    fn self_loops_allowed_when_enabled() {
        let mut b = GraphBuilder::new().allow_self_loops(true);
        let a = b.add_node(1.0);
        b.add_edge(a, a, 0.5).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_weight(a, a), Some(0.5));
    }

    #[test]
    fn duplicate_policies() {
        let mk = |policy| {
            let mut b = GraphBuilder::new().duplicate_edge_policy(policy);
            let a = b.add_node(0.5);
            let c = b.add_node(0.5);
            b.add_edge(a, c, 0.3).unwrap();
            b.add_edge(a, c, 0.5).unwrap();
            (b, a, c)
        };

        let (b, ..) = mk(DuplicateEdgePolicy::Error);
        assert!(matches!(b.build(), Err(GraphError::DuplicateEdge { .. })));

        let (b, a, c) = mk(DuplicateEdgePolicy::KeepFirst);
        assert_eq!(b.build().unwrap().edge_weight(a, c), Some(0.3));

        let (b, a, c) = mk(DuplicateEdgePolicy::Max);
        assert_eq!(b.build().unwrap().edge_weight(a, c), Some(0.5));

        let (b, a, c) = mk(DuplicateEdgePolicy::SumClamped);
        assert!((b.build().unwrap().edge_weight(a, c).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn sum_clamped_caps_at_one() {
        let mut b = GraphBuilder::new().duplicate_edge_policy(DuplicateEdgePolicy::SumClamped);
        let a = b.add_node(0.5);
        let c = b.add_node(0.5);
        b.add_edge(a, c, 0.8).unwrap();
        b.add_edge(a, c, 0.8).unwrap();
        assert_eq!(b.build().unwrap().edge_weight(a, c), Some(1.0));
    }

    #[test]
    fn build_normalized_enforces_out_sums() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.5);
        let c = b.add_node(0.3);
        let d = b.add_node(0.2);
        b.add_edge(a, c, 0.7).unwrap();
        b.add_edge(a, d, 0.7).unwrap();
        assert!(matches!(
            b.build_normalized(),
            Err(GraphError::OutWeightsExceedOne { .. })
        ));

        let mut b = GraphBuilder::new();
        let a = b.add_node(0.5);
        let c = b.add_node(0.3);
        let d = b.add_node(0.2);
        b.add_edge(a, c, 0.5).unwrap();
        b.add_edge(a, d, 0.5).unwrap();
        assert!(b.build_normalized().is_ok());
    }

    #[test]
    fn csr_in_rows_sorted_by_source() {
        // Insert edges in scrambled order; in-row of the shared target must
        // come out sorted by source id.
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let ids: Vec<_> = (0..5).map(|_| b.add_node(1.0)).collect();
        b.add_edge(ids[3], ids[4], 0.3).unwrap();
        b.add_edge(ids[0], ids[4], 0.1).unwrap();
        b.add_edge(ids[2], ids[4], 0.2).unwrap();
        let g = b.build().unwrap();
        let ins: Vec<_> = g.in_edges(ids[4]).collect();
        assert_eq!(ins, vec![(ids[0], 0.1), (ids[2], 0.2), (ids[3], 0.3)]);
    }

    #[test]
    fn with_capacity_builds_identically() {
        let mut b = GraphBuilder::with_capacity(2, 1);
        let a = b.add_node(0.6);
        let c = b.add_node(0.4);
        b.add_edge(a, c, 0.9).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_weight(a, c), Some(0.9));
    }
}

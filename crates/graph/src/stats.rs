//! Summary statistics over preference graphs.
//!
//! These power the Table 2 reproduction (dataset inventory) and the sanity
//! sections of experiment reports.

// lint: allow-file(no-index) — ItemId values are dense indices assigned by GraphBuilder and every
// per-node/per-edge array is sized to node_count/edge_count, so accesses are in
// bounds by construction.
use serde::{Deserialize, Serialize};

use crate::PreferenceGraph;

/// A histogram of node degrees with power-of-two buckets.
///
/// Bucket `i` counts nodes whose degree `d` satisfies
/// `2^(i-1) < d ≤ 2^i` (bucket 0 counts degree-0 nodes, bucket 1 degree-1).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeHistogram {
    /// Bucket counts; index is the bucket number described above.
    pub buckets: Vec<u64>,
}

impl DegreeHistogram {
    fn from_degrees(degrees: impl Iterator<Item = usize>) -> Self {
        let mut buckets: Vec<u64> = Vec::new();
        for d in degrees {
            let bucket = if d == 0 {
                0
            } else {
                (usize::BITS - (d - 1).leading_zeros()) as usize + 1
            };
            if buckets.len() <= bucket {
                buckets.resize(bucket + 1, 0);
            }
            buckets[bucket] += 1;
        }
        DegreeHistogram { buckets }
    }

    /// Total number of nodes counted.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Aggregate statistics of a preference graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of nodes (items).
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Mean out-degree (`edges / nodes`).
    pub avg_out_degree: f64,
    /// Maximum in-degree `D` (the paper's complexity parameter).
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Number of isolated nodes (no in- or out-edges).
    pub isolated_nodes: usize,
    /// Sum of node weights (≈ 1 for a well-formed graph).
    pub node_weight_sum: f64,
    /// Largest single node weight (popularity of the best-selling item).
    pub max_node_weight: f64,
    /// Mean edge weight.
    pub avg_edge_weight: f64,
    /// Fraction of nodes whose out-weight sum is ≤ 1 + ε (1.0 for any graph
    /// obeying the Normalized variant).
    pub normalized_fraction: f64,
    /// Number of weakly connected components — independent substitution
    /// islands the partitioned solver can exploit.
    pub components: usize,
    /// Size of the largest weakly connected component.
    pub largest_component: usize,
    /// In-degree histogram with power-of-two buckets.
    pub in_degree_histogram: DegreeHistogram,
}

impl GraphStats {
    /// Computes statistics for `g` in a single pass over nodes and edges.
    pub fn compute(g: &PreferenceGraph) -> Self {
        let nodes = g.node_count();
        let edges = g.edge_count();

        let mut isolated = 0usize;
        let mut max_w = 0.0f64;
        let mut normalized_ok = 0usize;
        let mut edge_weight_sum = 0.0f64;
        for v in g.node_ids() {
            if g.in_degree(v) == 0 && g.out_degree(v) == 0 {
                isolated += 1;
            }
            max_w = max_w.max(g.node_weight(v));
            let out_sum = g.out_weight_sum(v);
            if out_sum <= 1.0 + crate::WEIGHT_EPSILON {
                normalized_ok += 1;
            }
            edge_weight_sum += out_sum;
        }

        let components = crate::components::weakly_connected_components(g);

        GraphStats {
            nodes,
            edges,
            avg_out_degree: if nodes == 0 {
                0.0
            } else {
                edges as f64 / nodes as f64
            },
            max_in_degree: g.max_in_degree(),
            max_out_degree: g.max_out_degree(),
            isolated_nodes: isolated,
            node_weight_sum: g.total_node_weight(),
            max_node_weight: max_w,
            avg_edge_weight: if edges == 0 {
                0.0
            } else {
                edge_weight_sum / edges as f64
            },
            normalized_fraction: if nodes == 0 {
                1.0
            } else {
                normalized_ok as f64 / nodes as f64
            },
            largest_component: components.largest(),
            components: components.count,
            in_degree_histogram: DegreeHistogram::from_degrees(
                g.node_ids().map(|v| g.in_degree(v)),
            ),
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use crate::examples::figure1;
    use crate::GraphBuilder;

    use super::*;

    #[test]
    fn figure1_stats() {
        let g = figure1();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.isolated_nodes, 0);
        assert!((s.node_weight_sum - 1.0).abs() < 1e-9);
        assert!((s.max_node_weight - 0.33).abs() < 1e-12);
        assert_eq!(s.normalized_fraction, 1.0);
        assert_eq!(s.components, 2);
        assert_eq!(s.largest_component, 3);
        assert_eq!(s.in_degree_histogram.total(), 5);
    }

    #[test]
    fn isolated_nodes_counted() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.5);
        let c = b.add_node(0.3);
        b.add_node(0.2); // isolated
        b.add_edge(a, c, 0.4).unwrap();
        let g = b.build().unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.isolated_nodes, 1);
        assert!((s.avg_edge_weight - 0.4).abs() < 1e-12);
    }

    #[test]
    fn degree_histogram_buckets() {
        // degrees: 0, 1, 2, 3, 5 -> buckets 0,1,2,3(two entries: 3 in bucket 3? )
        // bucket(d): 0 -> 0; 1 -> 1; 2 -> 2; 3..4 -> 3; 5..8 -> 4
        let h = DegreeHistogram::from_degrees(vec![0, 1, 2, 3, 5].into_iter());
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn stats_serde_roundtrip() {
        let g = figure1();
        let s = GraphStats::compute(&g);
        let json = serde_json::to_string(&s).unwrap();
        let back: GraphStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

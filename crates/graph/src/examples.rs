//! The paper's running examples as ready-made graphs.
//!
//! These are used throughout the test suite as oracles with hand-checkable
//! numbers, and in the documentation examples.

// lint: allow-file(no-expect) — hard-coded example graphs with statically valid
// weights/edges; a build failure here is a bug in the builder, not runtime input.
use crate::{GraphBuilder, ItemId, PreferenceGraph};

/// Node ids of the Figure 1 graph in label order `A..E`.
///
/// Returned by [`figure1_ids`] so tests can refer to nodes by name.
#[derive(Clone, Copy, Debug)]
pub struct Figure1Ids {
    /// Item A — the best-selling item, `W(A) = 0.33`.
    pub a: ItemId,
    /// Item B, `W(B) = 0.22`.
    pub b: ItemId,
    /// Item C, `W(C) = 0.22`.
    pub c: ItemId,
    /// Item D — the least-sold item, `W(D) = 0.06`.
    pub d: ItemId,
    /// Item E, `W(E) = 0.17`.
    pub e: ItemId,
}

/// The five-item preference graph of Figure 1 / Example 1.1 / Example 3.2.
///
/// The paper prints the figure as an image; the weights below are
/// reconstructed so that **every** number quoted in the text holds exactly:
///
/// * A is the best-selling item at 33%, D the least-sold at 6%.
/// * Greedy's first pick is B with gain 0.66 = `W(B) + W(C)·1 + W(A)·(2/3)`
///   ("covering W(B), W(C) and 2/3 of W(A)", Example 3.2).
/// * After B, the marginal gains are exactly those of Example 3.2: A 11%
///   ("the 1/3 of W(A) ... not accepting B"), C 0% ("all consumers who
///   wanted C are happy to get B instead" — which also pins down that the
///   figure has no A→C edge), D 21.3%.
/// * Greedy's second pick is D with marginal gain 0.213 = `W(D) + 0.9·W(E)`.
/// * `C({B, D}) = 0.873` — the 87.3% optimum quoted in Example 1.1.
/// * The naive top-seller choice `{A, B}` covers 0.77 — the "about 77%"
///   quoted in the introduction.
/// * The per-item coverage of the Figure 2 walkthrough holds: with `{B, D}`
///   retained, C is covered 100%, A 67%, E 90%.
/// * Out-weight sums are all ≤ 1, so the graph is valid for **both** the
///   Normalized and the Independent variant, and because each non-retained
///   node is covered by exactly one retained neighbor under `{B, D}`, both
///   variants agree on all the numbers above.
///
/// Edges: `A→B (2/3)`, `B→C (1)`, `C→B (1)`, `E→D (0.9)`.
pub fn figure1() -> PreferenceGraph {
    build_figure1().0
}

/// [`figure1`] plus the named node ids.
pub fn figure1_ids() -> (PreferenceGraph, Figure1Ids) {
    build_figure1()
}

fn build_figure1() -> (PreferenceGraph, Figure1Ids) {
    let mut builder = GraphBuilder::new();
    let a = builder.add_node_labeled(0.33, "A");
    let b = builder.add_node_labeled(0.22, "B");
    let c = builder.add_node_labeled(0.22, "C");
    let d = builder.add_node_labeled(0.06, "D");
    let e = builder.add_node_labeled(0.17, "E");
    builder.add_edge(a, b, 2.0 / 3.0).expect("valid edge");
    builder.add_edge(b, c, 1.0).expect("valid edge");
    builder.add_edge(c, b, 1.0).expect("valid edge");
    builder.add_edge(e, d, 0.9).expect("valid edge");
    let g = builder
        .build_normalized()
        .expect("figure 1 graph is well-formed");
    (g, Figure1Ids { a, b, c, d, e })
}

/// Node ids of the Figure 3 iPhone graph.
#[derive(Clone, Copy, Debug)]
pub struct Figure3Ids {
    /// iPhone 8 256GB Silver, `W = 0.4`.
    pub silver: ItemId,
    /// iPhone 8 256GB Gold, `W = 0.2`.
    pub gold: ItemId,
    /// iPhone 8 256GB Space Gray, `W = 0.4`.
    pub space_gray: ItemId,
}

/// The three-item iPhone preference graph of Figure 3b.
///
/// Derived from the five clickstream sessions of Figure 3a:
/// 2 purchases of Space Gray, 2 of Silver, 1 of Gold; edges
/// `Silver→Gold (1/2)`, `Silver→Space Gray (1/2)`, `Space Gray→Silver (1/2)`,
/// `Gold→Space Gray (1)`.
///
/// The adaptation-engine test reconstructs this same graph from the raw
/// sessions; this constructor is the expected output.
pub fn figure3() -> PreferenceGraph {
    figure3_ids().0
}

/// [`figure3`] plus the named node ids.
pub fn figure3_ids() -> (PreferenceGraph, Figure3Ids) {
    let mut builder = GraphBuilder::new();
    let silver = builder.add_node_labeled(0.4, "iphone8-256-silver");
    let gold = builder.add_node_labeled(0.2, "iphone8-256-gold");
    let space_gray = builder.add_node_labeled(0.4, "iphone8-256-space-gray");
    builder.add_edge(silver, gold, 0.5).expect("valid edge");
    builder
        .add_edge(silver, space_gray, 0.5)
        .expect("valid edge");
    builder
        .add_edge(space_gray, silver, 0.5)
        .expect("valid edge");
    builder.add_edge(gold, space_gray, 1.0).expect("valid edge");
    let g = builder
        .build_normalized()
        .expect("figure 3 graph is well-formed");
    (
        g,
        Figure3Ids {
            silver,
            gold,
            space_gray,
        },
    )
}

/// A tiny two-node graph (`x` 0.6, `y` 0.4, edge `x→y` 0.5) for smoke tests.
pub fn tiny() -> PreferenceGraph {
    let mut b = GraphBuilder::new();
    let x = b.add_node_labeled(0.6, "x");
    let y = b.add_node_labeled(0.4, "y");
    b.add_edge(x, y, 0.5).expect("valid edge");
    b.build().expect("tiny graph is well-formed")
}

#[cfg(test)]
mod tests {
    use crate::{validate, ValidationOptions};

    use super::*;

    #[test]
    fn figure1_is_valid_for_both_variants() {
        let g = figure1();
        let report = validate(
            &g,
            &ValidationOptions {
                check_normalized: true,
                ..ValidationOptions::default()
            },
        );
        assert!(report.is_valid(), "{:?}", report.issues);
    }

    #[test]
    fn figure1_weights_match_paper() {
        let (g, ids) = figure1_ids();
        assert!((g.node_weight(ids.a) - 0.33).abs() < 1e-12);
        assert!((g.node_weight(ids.d) - 0.06).abs() < 1e-12);
        assert!((g.edge_weight(ids.a, ids.b).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.edge_weight(ids.c, ids.b), Some(1.0));
        assert_eq!(g.edge_weight(ids.e, ids.d), Some(0.9));
        assert_eq!(g.edge_weight(ids.d, ids.e), None);
        assert!((g.total_node_weight() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure3_weights_match_paper() {
        let (g, ids) = figure3_ids();
        assert!((g.node_weight(ids.silver) - 0.4).abs() < 1e-12);
        assert!((g.node_weight(ids.gold) - 0.2).abs() < 1e-12);
        assert_eq!(g.edge_weight(ids.silver, ids.gold), Some(0.5));
        assert_eq!(g.edge_weight(ids.gold, ids.space_gray), Some(1.0));
        assert_eq!(g.edge_weight(ids.gold, ids.silver), None);
    }

    #[test]
    fn tiny_is_tiny() {
        let g = tiny();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }
}

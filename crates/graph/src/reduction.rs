//! The approximation-preserving reductions of Theorems 3.1 and 4.1.
//!
//! * `NPC_k → VC_k` and `VC_k → NPC_k` (Theorem 3.1): the Normalized
//!   Preference Cover problem is equivalent to Max Vertex Cover on an
//!   undirected multigraph with self-edges, where covering a set of vertices
//!   collects the weight of all incident edges.
//! * `DS_k → IPC_k` (Theorem 4.1): Directed Max Dominating Set reduces to
//!   the Independent variant by reversing edges, assigning weight 1 to every
//!   edge and `1/n` to every node.
//!
//! These reductions are not on the production solving path (the greedy
//! solver works on preference graphs directly), but they are invaluable as
//! *test oracles*: for any vertex set the objective values must agree
//! exactly, and the property-test suite checks that on random instances.

// lint: allow-file(no-index) — ItemId values are dense indices assigned by GraphBuilder and every
// per-node/per-edge array is sized to node_count/edge_count, so accesses are in
// bounds by construction.
use serde::{Deserialize, Serialize};

use crate::transform::complete_with_self_loops;
use crate::{GraphBuilder, GraphError, ItemId, PreferenceGraph};

/// An undirected edge of a [`VcInstance`]. Self-edges (`u == v`) are allowed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VcEdge {
    /// One endpoint.
    pub u: ItemId,
    /// The other endpoint (`u` itself for a self-edge).
    pub v: ItemId,
    /// Positive edge weight.
    pub weight: f64,
}

/// A Max Vertex Cover (`VC_k`) instance: an undirected multigraph with
/// positive edge weights and self-edges, per Definition 2.8 of the paper.
///
/// The objective of a vertex set `S` is the total weight of edges incident
/// to `S`, each edge counted once.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VcInstance {
    /// Number of vertices; ids are `0..n`.
    pub n: usize,
    /// The multiset of edges. Parallel edges are kept separate (the paper
    /// notes combining them is equivalent but analyzes them separately).
    pub edges: Vec<VcEdge>,
}

impl VcInstance {
    /// Total weight of all edges — an upper bound on any cover.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// The cover weight of `selected` (indexed by vertex id): the sum of
    /// weights of edges with at least one endpoint selected.
    pub fn cover_weight(&self, selected: &[bool]) -> f64 {
        assert_eq!(selected.len(), self.n, "selection mask has wrong length");
        self.edges
            .iter()
            .filter(|e| selected[e.u.index()] || selected[e.v.index()])
            .map(|e| e.weight)
            .sum()
    }

    /// Convenience wrapper taking vertex ids instead of a mask.
    pub fn cover_weight_of(&self, selected: &[ItemId]) -> f64 {
        let mut mask = vec![false; self.n];
        for &v in selected {
            mask[v.index()] = true;
        }
        self.cover_weight(&mask)
    }
}

/// Reduces an `NPC_k` instance to a `VC_k` instance (Theorem 3.1, forward
/// direction).
///
/// Steps: complete every node's out-weight to 1 with a self-loop, drop
/// orientation, and scale each edge `(v, u)` from `W(v, u)` to
/// `W(v) · W(v, u)`. For any vertex set `S`, `cover_weight(S)` of the result
/// equals `C(S)` of the input under the Normalized semantics.
pub fn npc_to_vck(g: &PreferenceGraph) -> Result<VcInstance, GraphError> {
    let completed = complete_with_self_loops(g)?;
    let mut edges = Vec::with_capacity(completed.edge_count());
    for v in completed.node_ids() {
        let wv = completed.node_weight(v);
        for (u, w) in completed.out_edges(v) {
            let weight = wv * w;
            if weight > 0.0 {
                edges.push(VcEdge { u: v, v: u, weight });
            }
        }
    }
    Ok(VcInstance {
        n: completed.node_count(),
        edges,
    })
}

/// Reduces a `VC_k` instance to an `NPC_k` instance (Theorem 3.1, reverse
/// direction).
///
/// Orientation is chosen as given (`u → v` for every [`VcEdge`]); for each
/// node the outgoing weights are divided by their sum `M_v`, the node weight
/// is set to `M_v`, and finally all node weights are normalized by the total
/// `N = Σ M_v` so they form a distribution. The cover of any `S` in the
/// result is `cover_weight(S) / N` of the input, so approximation ratios
/// carry over unchanged.
///
/// Returns the preference graph together with the normalization constant `N`.
pub fn vck_to_npc(inst: &VcInstance) -> Result<(PreferenceGraph, f64), GraphError> {
    if inst.n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut out_sum = vec![0.0f64; inst.n];
    for e in &inst.edges {
        if e.u.index() >= inst.n || e.v.index() >= inst.n {
            return Err(GraphError::UnknownNode {
                node: if e.u.index() >= inst.n { e.u } else { e.v },
            });
        }
        if !e.weight.is_finite() || e.weight <= 0.0 {
            return Err(GraphError::InvalidEdgeWeight {
                source: e.u,
                target: e.v,
                weight: e.weight,
            });
        }
        out_sum[e.u.index()] += e.weight;
    }
    let total: f64 = out_sum.iter().sum();
    if total <= 0.0 {
        return Err(GraphError::EmptyGraph);
    }

    let mut b = GraphBuilder::with_capacity(inst.n, inst.edges.len())
        .allow_self_loops(true)
        .normalize_node_weights(true)
        // Parallel edges in the multigraph merge by weight addition, which
        // preserves the per-set cover exactly.
        .duplicate_edge_policy(crate::DuplicateEdgePolicy::SumClamped);
    for m in &out_sum {
        b.add_node(*m);
    }
    for e in &inst.edges {
        let m = out_sum[e.u.index()];
        b.add_edge(e.u, e.v, (e.weight / m).min(1.0))?;
    }
    Ok((b.build()?, total))
}

/// A Directed Max Dominating Set (`DS_k`) instance (Definition 2.7): pick
/// `k` vertices maximizing the number of vertices dominated, where `S`
/// dominates itself and every vertex with an **incoming** edge from `S`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DsInstance {
    /// Number of vertices; ids are `0..n`.
    pub n: usize,
    /// Directed edges `(from, to)`.
    pub edges: Vec<(ItemId, ItemId)>,
}

impl DsInstance {
    /// Number of vertices dominated by `selected` (mask indexed by id).
    pub fn dominated_count(&self, selected: &[bool]) -> usize {
        assert_eq!(selected.len(), self.n, "selection mask has wrong length");
        let mut dominated = selected.to_vec();
        for &(from, to) in &self.edges {
            if selected[from.index()] {
                dominated[to.index()] = true;
            }
        }
        dominated.iter().filter(|&&d| d).count()
    }

    /// Convenience wrapper taking vertex ids instead of a mask.
    pub fn dominated_count_of(&self, selected: &[ItemId]) -> usize {
        let mut mask = vec![false; self.n];
        for &v in selected {
            mask[v.index()] = true;
        }
        self.dominated_count(&mask)
    }
}

/// Reduces a `DS_k` instance to an `IPC_k` instance (Theorem 4.1).
///
/// Edge orientations are **reversed**, every edge gets weight 1 and every
/// node weight `1/n`. For any vertex set `S`, the number of vertices `S`
/// dominates in the input equals `n · C(S)` in the output under the
/// Independent semantics.
pub fn dsk_to_ipc(inst: &DsInstance) -> Result<PreferenceGraph, GraphError> {
    if inst.n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut b = GraphBuilder::with_capacity(inst.n, inst.edges.len())
        // Parallel edges in the DS instance are meaningless duplicates.
        .duplicate_edge_policy(crate::DuplicateEdgePolicy::KeepFirst);
    let w = 1.0 / inst.n as f64;
    for _ in 0..inst.n {
        b.add_node(w);
    }
    for &(from, to) in &inst.edges {
        if from == to {
            // A self-edge dominates its own vertex, which selection already
            // does; it carries no information for the reduction.
            continue;
        }
        b.add_edge(to, from, 1.0)?;
    }
    // 1/n rounding can leave the sum slightly off 1; normalize explicitly.
    let g = b.normalize_node_weights(true).build()?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use crate::examples::figure1_ids;

    use super::*;

    /// Normalized cover computed from first principles (Definition 2.2),
    /// independent of the solver crate.
    fn npc_cover(g: &PreferenceGraph, selected: &[bool]) -> f64 {
        let mut c = 0.0;
        for v in g.node_ids() {
            if selected[v.index()] {
                c += g.node_weight(v);
            } else {
                let covered: f64 = g
                    .out_edges(v)
                    .filter(|(u, _)| selected[u.index()] && *u != v)
                    .map(|(_, w)| w)
                    .sum();
                c += g.node_weight(v) * covered;
            }
        }
        c
    }

    #[test]
    fn npc_to_vck_preserves_cover_on_figure1() {
        let (g, ids) = figure1_ids();
        let inst = npc_to_vck(&g).unwrap();
        // Total edge weight equals total node weight (each node's out-sum,
        // after completion, is exactly 1 and each edge is scaled by W(v)).
        assert!((inst.total_weight() - 1.0).abs() < 1e-9);

        for sel_ids in [
            vec![],
            vec![ids.b],
            vec![ids.b, ids.d],
            vec![ids.a, ids.b],
            vec![ids.a, ids.b, ids.c, ids.d, ids.e],
        ] {
            let mut mask = vec![false; g.node_count()];
            for &v in &sel_ids {
                mask[v.index()] = true;
            }
            let lhs = npc_cover(&g, &mask);
            let rhs = inst.cover_weight(&mask);
            assert!(
                (lhs - rhs).abs() < 1e-9,
                "selection {sel_ids:?}: NPC {lhs} vs VC {rhs}"
            );
        }
    }

    #[test]
    fn vck_to_npc_preserves_scaled_cover() {
        // Hand-built VC instance with a self-edge and a parallel pair.
        let e = |u: u32, v: u32, w: f64| VcEdge {
            u: ItemId::new(u),
            v: ItemId::new(v),
            weight: w,
        };
        let inst = VcInstance {
            n: 4,
            edges: vec![e(0, 1, 2.0), e(1, 2, 1.0), e(2, 1, 0.5), e(3, 3, 1.5)],
        };
        let (g, n_const) = vck_to_npc(&inst).unwrap();
        assert!((n_const - 5.0).abs() < 1e-12);
        assert!((g.total_node_weight() - 1.0).abs() < 1e-9);

        for sel in [
            vec![false, false, false, false],
            vec![true, false, false, false],
            vec![false, true, false, false],
            vec![false, false, true, true],
            vec![true, true, true, true],
        ] {
            let vc = inst.cover_weight(&sel);
            let npc = npc_cover(&g, &sel);
            assert!(
                (npc - vc / n_const).abs() < 1e-9,
                "selection {sel:?}: NPC {npc} vs VC/N {}",
                vc / n_const
            );
        }
    }

    #[test]
    fn roundtrip_npc_vck_npc_preserves_cover() {
        let (g, _) = figure1_ids();
        let inst = npc_to_vck(&g).unwrap();
        let (g2, n_const) = vck_to_npc(&inst).unwrap();
        // The paper observes the roundtrip reproduces the same instance up
        // to normalization; covers must agree for every selection.
        assert_eq!(g2.node_count(), g.node_count());
        for bits in 0u32..(1 << g.node_count()) {
            let sel: Vec<bool> = (0..g.node_count()).map(|i| bits >> i & 1 == 1).collect();
            let c1 = npc_cover(&g, &sel);
            let c2 = npc_cover(&g2, &sel);
            // g had total weight 1, inst total weight 1, so N == 1 and the
            // covers must match exactly (up to float error).
            assert!((n_const - 1.0).abs() < 1e-9);
            assert!((c1 - c2).abs() < 1e-9, "bits {bits:b}: {c1} vs {c2}");
        }
    }

    #[test]
    fn ds_domination_counts() {
        let id = ItemId::new;
        let inst = DsInstance {
            n: 4,
            edges: vec![(id(0), id(1)), (id(0), id(2)), (id(3), id(0))],
        };
        assert_eq!(inst.dominated_count_of(&[id(0)]), 3); // 0, 1, 2
        assert_eq!(inst.dominated_count_of(&[id(3)]), 2); // 3, 0
        assert_eq!(inst.dominated_count_of(&[]), 0);
        assert_eq!(inst.dominated_count_of(&[id(0), id(3)]), 4);
    }

    #[test]
    fn dsk_to_ipc_reverses_and_scales() {
        let id = ItemId::new;
        let inst = DsInstance {
            n: 4,
            edges: vec![(id(0), id(1)), (id(0), id(2)), (id(3), id(0))],
        };
        let g = dsk_to_ipc(&inst).unwrap();
        // Edge 0->1 in DS becomes 1->0 in IPC.
        assert_eq!(g.edge_weight(id(1), id(0)), Some(1.0));
        assert_eq!(g.edge_weight(id(0), id(1)), None);
        assert!((g.node_weight(id(0)) - 0.25).abs() < 1e-12);

        // For singleton retained sets and Independent semantics, C(S) is
        // (1 + out-coverage) / n; check {0}: covers itself plus 1 and 2
        // (in-edges into 0 from 1 and 2 with weight 1 each).
        let covered_by_0: f64 = 0.25
            + g.in_edges(id(0))
                .map(|(u, w)| g.node_weight(u) * w)
                .sum::<f64>();
        assert!((covered_by_0 - 0.75).abs() < 1e-12);
        assert_eq!(inst.dominated_count_of(&[id(0)]), 3);
    }

    #[test]
    fn dsk_self_edges_are_dropped() {
        let id = ItemId::new;
        let inst = DsInstance {
            n: 2,
            edges: vec![(id(0), id(0)), (id(0), id(1))],
        };
        let g = dsk_to_ipc(&inst).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(id(1), id(0)), Some(1.0));
    }

    #[test]
    fn vck_rejects_invalid_input() {
        let e = |u: u32, v: u32, w: f64| VcEdge {
            u: ItemId::new(u),
            v: ItemId::new(v),
            weight: w,
        };
        assert!(vck_to_npc(&VcInstance {
            n: 0,
            edges: vec![]
        })
        .is_err());
        assert!(vck_to_npc(&VcInstance {
            n: 2,
            edges: vec![e(0, 5, 1.0)]
        })
        .is_err());
        assert!(vck_to_npc(&VcInstance {
            n: 2,
            edges: vec![e(0, 1, -1.0)]
        })
        .is_err());
        // No edges at all: total weight 0 -> no distribution.
        assert!(vck_to_npc(&VcInstance {
            n: 2,
            edges: vec![]
        })
        .is_err());
    }
}

//! Compensated float accumulation for graph-side weight sums.
//!
//! Node and edge weights are probabilities summed over potentially millions
//! of entries; a naive left-to-right `iter().sum()` loses low-order mass
//! when magnitudes differ. This module holds the Neumaier-compensated sum
//! the whole workspace standardizes on — it lives here (rather than only in
//! `pcover_core::float`, which re-exports it) because the graph crate sits
//! below the solver crate in the dependency order.

/// Compensated (Neumaier) summation over a fixed iteration order.
///
/// The compensation term keeps the result faithful even when magnitudes
/// differ wildly, and the single fixed order makes "same input, same
/// output" hold wherever this is used to reduce pre-gathered parallel
/// partials.
#[must_use]
pub fn sum_stable<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0f64;
    let mut compensation = 0.0f64;
    for v in values {
        let t = sum + v;
        if sum.abs() >= v.abs() {
            compensation += (sum - t) + v;
        } else {
            compensation += (v - t) + sum;
        }
        sum = t;
    }
    sum + compensation
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_cancelled_terms() {
        let xs = [1.0, 1e100, 1.0, -1e100];
        assert_eq!(sum_stable(xs).to_bits(), 2.0f64.to_bits());
    }

    #[test]
    fn matches_naive_on_benign_input() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.125).collect();
        let naive: f64 = xs.iter().sum();
        assert_eq!(sum_stable(xs.iter().copied()).to_bits(), naive.to_bits());
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(sum_stable(std::iter::empty()).to_bits(), 0.0f64.to_bits());
    }
}

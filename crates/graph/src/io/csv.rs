//! CSV serialization: `nodes.csv` + `edges.csv`.
//!
//! The dialect is deliberately minimal — comma-separated, header row, no
//! quoting (labels containing commas or newlines are rejected on write).
//! This matches what e-commerce data pipelines typically exchange and keeps
//! the reader dependency-free.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::{GraphBuilder, GraphError, ItemId, PreferenceGraph};

use super::LoadOptions;

/// Writes `g` as `nodes.csv` (`id,weight,label`) and `edges.csv`
/// (`source,target,weight`) inside `dir`, creating the directory if needed.
pub fn write_csv(g: &PreferenceGraph, dir: impl AsRef<Path>) -> Result<(), GraphError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;

    let mut nodes = BufWriter::new(File::create(dir.join("nodes.csv"))?);
    writeln!(nodes, "id,weight,label")?;
    for v in g.node_ids() {
        let label = g.label(v).unwrap_or("");
        if label.contains(',') || label.contains('\n') || label.contains('\r') {
            return Err(GraphError::Parse {
                line: None,
                message: format!("label of node {v} contains a comma or newline: {label:?}"),
            });
        }
        writeln!(nodes, "{},{},{}", v.raw(), g.node_weight(v), label)?;
    }
    nodes.flush()?;

    let mut edges = BufWriter::new(File::create(dir.join("edges.csv"))?);
    writeln!(edges, "source,target,weight")?;
    for e in g.edges() {
        writeln!(edges, "{},{},{}", e.source.raw(), e.target.raw(), e.weight)?;
    }
    edges.flush()?;
    Ok(())
}

/// Reads a graph previously written by [`write_csv`] from `dir`.
///
/// Node ids must be dense `0..n` (any order within the file); edges may
/// reference only declared nodes.
pub fn read_csv(dir: impl AsRef<Path>, opts: &LoadOptions) -> Result<PreferenceGraph, GraphError> {
    let dir = dir.as_ref();

    // Pass 1: nodes.
    let nodes_file = BufReader::new(File::open(dir.join("nodes.csv"))?);
    let mut rows: Vec<(u32, f64, String)> = Vec::new();
    for (lineno, line) in nodes_file.lines().enumerate() {
        let line = line?;
        if lineno == 0 {
            expect_header(&line, "id,weight,label", lineno)?;
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, ',');
        let id: u32 = parse_field(parts.next(), "id", lineno)?;
        let weight: f64 = parse_field(parts.next(), "weight", lineno)?;
        let label = parts.next().unwrap_or("").to_owned();
        rows.push((id, weight, label));
    }
    rows.sort_unstable_by_key(|r| r.0);
    for (expect, row) in rows.iter().enumerate() {
        if row.0 as usize != expect {
            return Err(GraphError::Parse {
                line: None,
                message: format!("node ids must be dense 0..n; missing or duplicate id {expect}"),
            });
        }
    }

    let any_label = rows.iter().any(|r| !r.2.is_empty());
    let mut b = GraphBuilder::with_capacity(rows.len(), 0)
        .allow_self_loops(opts.allow_self_loops)
        .skip_weight_sum_check(!opts.strict_weight_sum);
    for (_, weight, label) in rows {
        if any_label {
            b.add_node_labeled(weight, label);
        } else {
            b.add_node(weight);
        }
    }

    // Pass 2: edges.
    let edges_file = BufReader::new(File::open(dir.join("edges.csv"))?);
    for (lineno, line) in edges_file.lines().enumerate() {
        let line = line?;
        if lineno == 0 {
            expect_header(&line, "source,target,weight", lineno)?;
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, ',');
        let source: u32 = parse_field(parts.next(), "source", lineno)?;
        let target: u32 = parse_field(parts.next(), "target", lineno)?;
        let weight: f64 = parse_field(parts.next(), "weight", lineno)?;
        b.add_edge(ItemId::new(source), ItemId::new(target), weight)?;
    }

    b.build()
}

fn expect_header(line: &str, expected: &str, lineno: usize) -> Result<(), GraphError> {
    if line.trim() != expected {
        return Err(GraphError::Parse {
            line: Some(lineno + 1),
            message: format!("expected header {expected:?}, found {line:?}"),
        });
    }
    Ok(())
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    name: &str,
    lineno: usize,
) -> Result<T, GraphError> {
    let raw = field.ok_or_else(|| GraphError::Parse {
        line: Some(lineno + 1),
        message: format!("missing field {name}"),
    })?;
    raw.trim().parse().map_err(|_| GraphError::Parse {
        line: Some(lineno + 1),
        message: format!("cannot parse field {name} from {raw:?}"),
    })
}

#[cfg(test)]
mod tests {
    use crate::examples::{figure1, tiny};

    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pcover-csv-test").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_with_labels() {
        let dir = tmpdir("fig1");
        let g = figure1();
        write_csv(&g, &dir).unwrap();
        let back = read_csv(&dir, &LoadOptions::default()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn roundtrip_without_labels() {
        let dir = tmpdir("nolabel");
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.7);
        let c = b.add_node(0.3);
        b.add_edge(a, c, 0.1).unwrap();
        let g = b.build().unwrap();
        write_csv(&g, &dir).unwrap();
        let back = read_csv(&dir, &LoadOptions::default()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn rejects_comma_in_label() {
        let dir = tmpdir("badlabel");
        let mut b = GraphBuilder::new();
        b.add_node_labeled(1.0, "oops, a comma");
        let g = b.build().unwrap();
        assert!(matches!(write_csv(&g, &dir), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn rejects_sparse_ids() {
        let dir = tmpdir("sparse");
        std::fs::write(dir.join("nodes.csv"), "id,weight,label\n0,0.5,\n2,0.5,\n").unwrap();
        std::fs::write(dir.join("edges.csv"), "source,target,weight\n").unwrap();
        assert!(matches!(
            read_csv(&dir, &LoadOptions::default()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_bad_header() {
        let dir = tmpdir("badheader");
        std::fs::write(dir.join("nodes.csv"), "identifier,w\n").unwrap();
        std::fs::write(dir.join("edges.csv"), "source,target,weight\n").unwrap();
        let err = read_csv(&dir, &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: Some(1), .. }));
    }

    #[test]
    fn rejects_unparseable_weight() {
        let dir = tmpdir("badweight");
        std::fs::write(dir.join("nodes.csv"), "id,weight,label\n0,abc,\n").unwrap();
        std::fs::write(dir.join("edges.csv"), "source,target,weight\n").unwrap();
        let err = read_csv(&dir, &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: Some(2), .. }));
    }

    #[test]
    fn blank_lines_skipped() {
        let dir = tmpdir("blank");
        let g = tiny();
        write_csv(&g, &dir).unwrap();
        // Append trailing blank lines to both files.
        for f in ["nodes.csv", "edges.csv"] {
            let p = dir.join(f);
            let mut content = std::fs::read_to_string(&p).unwrap();
            content.push_str("\n\n");
            std::fs::write(&p, content).unwrap();
        }
        let back = read_csv(&dir, &LoadOptions::default()).unwrap();
        assert_eq!(back, g);
    }
}

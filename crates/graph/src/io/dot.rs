//! Graphviz DOT export for visual inspection of (small) preference graphs.
//!
//! Produces the style of the paper's Figure 1: node labels carry the demand
//! percentage, edge labels the acceptance probability, and an optional
//! retained set is highlighted (doubled ellipse + bold edges into it), as
//! in the Figure 2 architecture sketch.

// lint: allow-file(no-index) — ItemId values are dense indices assigned by GraphBuilder and every
// per-node/per-edge array is sized to node_count/edge_count, so accesses are in
// bounds by construction.
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;

use crate::{GraphError, ItemId, PreferenceGraph};

/// Rendering options for [`to_dot`].
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Nodes to highlight as retained.
    pub retained: Vec<ItemId>,
    /// Skip edges below this weight (decluttering dense graphs).
    pub min_edge_weight: f64,
    /// Graph name in the DOT header.
    pub name: Option<String>,
}

/// Renders the graph as a DOT document.
pub fn to_dot(g: &PreferenceGraph, opts: &DotOptions) -> String {
    let mut retained = vec![false; g.node_count()];
    for &v in &opts.retained {
        if v.index() < retained.len() {
            retained[v.index()] = true;
        }
    }

    let mut out = String::new();
    let name = opts.name.as_deref().unwrap_or("preference_graph");
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=ellipse, fontname=\"Helvetica\"];");
    for v in g.node_ids() {
        let label = match g.label(v) {
            Some(l) if !l.is_empty() => l.to_owned(),
            _ => format!("#{}", v.raw()),
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n{:.1}%\"{}];",
            v.raw(),
            escape(&label),
            g.node_weight(v) * 100.0,
            if retained[v.index()] {
                ", peripheries=2, style=filled, fillcolor=\"#e8f4e8\""
            } else {
                ""
            }
        );
    }
    for e in g.edges() {
        if e.weight < opts.min_edge_weight {
            continue;
        }
        let bold = retained[e.target.index()];
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{:.2}\"{}];",
            e.source.raw(),
            e.target.raw(),
            e.weight,
            if bold { ", penwidth=2" } else { "" }
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Writes the DOT document to a file.
pub fn write_dot(
    g: &PreferenceGraph,
    path: impl AsRef<Path>,
    opts: &DotOptions,
) -> Result<(), GraphError> {
    let mut f = File::create(path)?;
    f.write_all(to_dot(g, opts).as_bytes())?;
    Ok(())
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::examples::{figure1, figure1_ids};

    use super::*;

    #[test]
    fn renders_all_nodes_and_edges() {
        let g = figure1();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("digraph preference_graph {"));
        for label in ["A", "B", "C", "D", "E"] {
            assert!(dot.contains(&format!("label=\"{label}\\n")), "{label}");
        }
        // 4 edges rendered.
        assert_eq!(dot.matches(" -> ").count(), g.edge_count());
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn retained_nodes_highlighted() {
        let (g, ids) = figure1_ids();
        let dot = to_dot(
            &g,
            &DotOptions {
                retained: vec![ids.b, ids.d],
                ..DotOptions::default()
            },
        );
        assert_eq!(dot.matches("peripheries=2").count(), 2);
        // Edges into retained nodes are bold: A->B, C->B, E->D.
        assert_eq!(dot.matches("penwidth=2").count(), 3);
    }

    #[test]
    fn min_weight_filters_edges() {
        let g = figure1();
        let dot = to_dot(
            &g,
            &DotOptions {
                min_edge_weight: 0.95,
                ..DotOptions::default()
            },
        );
        // Only the weight-1.0 edges B->C and C->B survive.
        assert_eq!(dot.matches(" -> ").count(), 2);
    }

    #[test]
    fn labels_escaped() {
        let mut b = crate::GraphBuilder::new();
        b.add_node_labeled(1.0, "tricky \"quote\"");
        let g = b.build().unwrap();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.contains("tricky \\\"quote\\\""));
    }

    #[test]
    fn file_write() {
        let dir = std::env::temp_dir().join("pcover-dot");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.dot");
        write_dot(&figure1(), &path, &DotOptions::default()).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("digraph"));
    }
}

//! JSON serialization of preference graphs.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::{Edge, GraphBuilder, GraphError, PreferenceGraph};

use super::LoadOptions;

/// The JSON document shape: exploded node and edge lists.
///
/// CSR internals are deliberately not serialized — the document stays stable
/// across representation changes, and readers revalidate through the
/// builder.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphDto {
    /// Node weights, indexed by id.
    pub node_weights: Vec<f64>,
    /// Optional labels, parallel to `node_weights`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub labels: Option<Vec<String>>,
    /// All edges.
    pub edges: Vec<Edge>,
}

impl GraphDto {
    /// Snapshots a graph into its document form.
    pub fn from_graph(g: &PreferenceGraph) -> Self {
        GraphDto {
            node_weights: g.node_weights().to_vec(),
            labels: g.has_labels().then(|| {
                g.node_ids()
                    .map(|v| g.label(v).unwrap_or("").to_owned())
                    .collect()
            }),
            edges: g.edges().collect(),
        }
    }

    /// Rebuilds (and revalidates) the graph.
    pub fn into_graph(self, opts: &LoadOptions) -> Result<PreferenceGraph, GraphError> {
        if let Some(labels) = &self.labels {
            if labels.len() != self.node_weights.len() {
                return Err(GraphError::Parse {
                    line: None,
                    message: format!(
                        "labels length {} does not match node count {}",
                        labels.len(),
                        self.node_weights.len()
                    ),
                });
            }
        }
        let mut b = GraphBuilder::with_capacity(self.node_weights.len(), self.edges.len())
            .allow_self_loops(opts.allow_self_loops)
            .skip_weight_sum_check(!opts.strict_weight_sum);
        match self.labels {
            Some(labels) => {
                for (w, l) in self.node_weights.into_iter().zip(labels) {
                    b.add_node_labeled(w, l);
                }
            }
            None => {
                for w in self.node_weights {
                    b.add_node(w);
                }
            }
        }
        for e in self.edges {
            b.add_edge(e.source, e.target, e.weight)?;
        }
        b.build()
    }
}

/// Serializes `g` to a JSON string.
pub fn to_json_string(g: &PreferenceGraph) -> String {
    // lint: allow(no-expect) — GraphDto is a plain tree of strings/numbers; serialization cannot fail
    serde_json::to_string(&GraphDto::from_graph(g)).expect("graph DTOs always serialize")
}

/// Parses a graph from a JSON string.
pub fn from_json_str(s: &str, opts: &LoadOptions) -> Result<PreferenceGraph, GraphError> {
    let dto: GraphDto = serde_json::from_str(s).map_err(|e| GraphError::Parse {
        line: Some(e.line()),
        message: e.to_string(),
    })?;
    dto.into_graph(opts)
}

/// Writes `g` as JSON to `path`.
pub fn write_json(g: &PreferenceGraph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    serde_json::to_writer(&mut w, &GraphDto::from_graph(g)).map_err(|e| GraphError::Parse {
        line: None,
        message: e.to_string(),
    })?;
    w.flush()?;
    Ok(())
}

/// Reads a JSON graph from `path`.
pub fn read_json(
    path: impl AsRef<Path>,
    opts: &LoadOptions,
) -> Result<PreferenceGraph, GraphError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let dto: GraphDto = serde_json::from_reader(reader).map_err(|e| GraphError::Parse {
        line: Some(e.line()),
        message: e.to_string(),
    })?;
    dto.into_graph(opts)
}

#[cfg(test)]
mod tests {
    use crate::examples::{figure1, figure3, tiny};

    use super::*;

    #[test]
    fn string_roundtrip_preserves_graph() {
        for g in [figure1(), figure3(), tiny()] {
            let s = to_json_string(&g);
            let back = from_json_str(&s, &LoadOptions::default()).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pcover-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.json");
        let g = figure1();
        write_json(&g, &path).unwrap();
        let back = read_json(&path, &LoadOptions::default()).unwrap();
        assert_eq!(back, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let err = from_json_str("{not json", &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn invalid_weights_rejected_on_load() {
        let s = r#"{"node_weights": [0.5, 1.5], "edges": []}"#;
        let err = from_json_str(s, &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::InvalidNodeWeight { .. }));
    }

    #[test]
    fn weight_sum_enforced_unless_lax() {
        let s = r#"{"node_weights": [0.5, 0.1], "edges": []}"#;
        assert!(from_json_str(s, &LoadOptions::default()).is_err());
        let lax = LoadOptions {
            strict_weight_sum: false,
            ..LoadOptions::default()
        };
        assert!(from_json_str(s, &lax).is_ok());
    }

    #[test]
    fn mismatched_labels_rejected() {
        let s = r#"{"node_weights": [1.0], "labels": ["a", "b"], "edges": []}"#;
        let err = from_json_str(s, &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_json("/nonexistent/nope.json", &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}

//! Compact binary serialization for large graphs.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      4 bytes  b"PCG1"
//! flags      1 byte   bit 0: labels present
//! n          8 bytes  node count
//! m          8 bytes  edge count
//! weights    n * 8    node weights (f64)
//! sources    m * 4    edge sources (u32), sorted by (source, target)
//! targets    m * 4    edge targets (u32)
//! eweights   m * 8    edge weights (f64)
//! labels     only if flag set: per node, u32 length + UTF-8 bytes
//! checksum   8 bytes  FNV-1a 64 over everything before it
//! ```
//!
//! The checksum catches truncation and bit rot; semantic validity is
//! re-checked by the builder on load.

// lint: allow-file(no-index) — ItemId values are dense indices assigned by GraphBuilder and every
// per-node/per-edge array is sized to node_count/edge_count, so accesses are in
// bounds by construction.
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{GraphBuilder, GraphError, ItemId, PreferenceGraph};

use super::LoadOptions;

const MAGIC: &[u8; 4] = b"PCG1";
const FLAG_LABELS: u8 = 1;

/// Incremental FNV-1a 64-bit hasher.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// A writer that hashes everything it forwards.
struct HashingWriter<W: Write> {
    inner: W,
    hash: Fnv1a,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hash: Fnv1a::new(),
        }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A reader that hashes everything it yields.
struct HashingReader<R: Read> {
    inner: R,
    hash: Fnv1a,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            hash: Fnv1a::new(),
        }
    }
    fn read_exact_hashed(&mut self, buf: &mut [u8]) -> Result<(), GraphError> {
        self.inner.read_exact(buf)?;
        self.hash.update(buf);
        Ok(())
    }
    fn read_u8(&mut self) -> Result<u8, GraphError> {
        let mut b = [0u8; 1];
        self.read_exact_hashed(&mut b)?;
        Ok(b[0])
    }
    fn read_u32(&mut self) -> Result<u32, GraphError> {
        let mut b = [0u8; 4];
        self.read_exact_hashed(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn read_u64(&mut self) -> Result<u64, GraphError> {
        let mut b = [0u8; 8];
        self.read_exact_hashed(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn read_f64(&mut self) -> Result<f64, GraphError> {
        let mut b = [0u8; 8];
        self.read_exact_hashed(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
}

/// Writes `g` to `path` in the binary format.
pub fn write_binary(g: &PreferenceGraph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let file = File::create(path)?;
    let mut w = HashingWriter::new(BufWriter::new(file));

    w.write_all(MAGIC)?;
    let flags = if g.has_labels() { FLAG_LABELS } else { 0 };
    w.write_all(&[flags])?;
    w.write_all(&(g.node_count() as u64).to_le_bytes())?;
    w.write_all(&(g.edge_count() as u64).to_le_bytes())?;
    for &weight in g.node_weights() {
        w.write_all(&weight.to_le_bytes())?;
    }
    for e in g.edges() {
        w.write_all(&e.source.raw().to_le_bytes())?;
    }
    for e in g.edges() {
        w.write_all(&e.target.raw().to_le_bytes())?;
    }
    for e in g.edges() {
        w.write_all(&e.weight.to_le_bytes())?;
    }
    if g.has_labels() {
        for v in g.node_ids() {
            let label = g.label(v).unwrap_or("");
            w.write_all(&(label.len() as u32).to_le_bytes())?;
            w.write_all(label.as_bytes())?;
        }
    }
    let checksum = w.hash.0;
    w.inner.write_all(&checksum.to_le_bytes())?;
    w.inner.flush()?;
    Ok(())
}

/// Reads a graph written by [`write_binary`], verifying the checksum.
pub fn read_binary(
    path: impl AsRef<Path>,
    opts: &LoadOptions,
) -> Result<PreferenceGraph, GraphError> {
    let file = File::open(path)?;
    let mut r = HashingReader::new(BufReader::new(file));

    let mut magic = [0u8; 4];
    r.read_exact_hashed(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Parse {
            line: None,
            message: format!("bad magic {magic:?}, not a PCG1 file"),
        });
    }
    let flags = r.read_u8()?;
    let n = r.read_u64()? as usize;
    let m = r.read_u64()? as usize;
    if n > u32::MAX as usize || m > u32::MAX as usize {
        return Err(GraphError::CapacityExceeded {
            what: "binary file declares more than u32::MAX nodes or edges",
        });
    }

    let mut weights = Vec::with_capacity(n);
    for _ in 0..n {
        weights.push(r.read_f64()?);
    }
    let mut sources = Vec::with_capacity(m);
    for _ in 0..m {
        sources.push(r.read_u32()?);
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        targets.push(r.read_u32()?);
    }
    let mut eweights = Vec::with_capacity(m);
    for _ in 0..m {
        eweights.push(r.read_f64()?);
    }
    let labels: Option<Vec<String>> = if flags & FLAG_LABELS != 0 {
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.read_u32()? as usize;
            let mut bytes = vec![0u8; len];
            r.read_exact_hashed(&mut bytes)?;
            labels.push(String::from_utf8(bytes).map_err(|e| GraphError::Parse {
                line: None,
                message: format!("label is not UTF-8: {e}"),
            })?);
        }
        Some(labels)
    } else {
        None
    };

    let expected = r.hash.0;
    let mut checksum_bytes = [0u8; 8];
    r.inner.read_exact(&mut checksum_bytes)?;
    let stored = u64::from_le_bytes(checksum_bytes);
    if stored != expected {
        return Err(GraphError::Parse {
            line: None,
            message: format!("checksum mismatch: stored {stored:#x}, computed {expected:#x}"),
        });
    }

    let mut b = GraphBuilder::with_capacity(n, m)
        .allow_self_loops(opts.allow_self_loops)
        .skip_weight_sum_check(!opts.strict_weight_sum);
    match labels {
        Some(labels) => {
            for (weight, label) in weights.into_iter().zip(labels) {
                b.add_node_labeled(weight, label);
            }
        }
        None => {
            for weight in weights {
                b.add_node(weight);
            }
        }
    }
    for i in 0..m {
        b.add_edge(
            ItemId::new(sources[i]),
            ItemId::new(targets[i]),
            eweights[i],
        )?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use crate::examples::{figure1, figure3, tiny};

    use super::*;

    fn tmppath(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pcover-bin-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_graph() {
        for (i, g) in [figure1(), figure3(), tiny()].into_iter().enumerate() {
            let path = tmppath(&format!("g{i}.pcg"));
            write_binary(&g, &path).unwrap();
            let back = read_binary(&path, &LoadOptions::default()).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmppath("badmagic.pcg");
        std::fs::write(&path, b"NOPE").unwrap();
        let err = read_binary(&path, &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn truncation_detected() {
        let path = tmppath("trunc.pcg");
        write_binary(&figure1(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(read_binary(&path, &LoadOptions::default()).is_err());
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let path = tmppath("corrupt.pcg");
        write_binary(&figure1(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a low mantissa bit inside the second node weight (weights
        // start at byte 21); the value stays in-range so only the checksum
        // can catch the corruption.
        bytes[32] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_binary(&path, &LoadOptions::default()).unwrap_err();
        assert!(
            err.to_string().contains("checksum"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn binary_smaller_than_json() {
        let g = figure1();
        let path = tmppath("size.pcg");
        write_binary(&g, &path).unwrap();
        let bin_size = std::fs::metadata(&path).unwrap().len() as usize;
        let json_size = crate::io::json::to_json_string(&g).len();
        assert!(
            bin_size < json_size,
            "binary {bin_size} >= json {json_size}"
        );
    }
}

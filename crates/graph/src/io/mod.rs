//! Serialization of preference graphs.
//!
//! Three formats are supported:
//!
//! * [`json`] — human-readable interchange, the default for tooling.
//! * [`csv`] — two flat files (`nodes.csv`, `edges.csv`) for spreadsheet
//!   inspection and ingestion from external pipelines.
//! * [`binary`] — a compact checksummed format for large graphs (the 1M-node
//!   scalability instances are ~100 MB as JSON but ~25 MB binary).
//!
//! All readers funnel through [`GraphBuilder`](crate::GraphBuilder), so a
//! malformed file can never produce an invariant-violating graph.

pub mod binary;
pub mod csv;
pub mod dot;
pub mod json;

/// Options shared by all graph readers.
#[derive(Clone, Copy, Debug)]
pub struct LoadOptions {
    /// Require node weights to sum to 1 (within tolerance). Disable when
    /// loading intermediate reduction graphs.
    pub strict_weight_sum: bool,
    /// Permit self-loop edges (inert for cover computations, present in
    /// reduction instances).
    pub allow_self_loops: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            strict_weight_sum: true,
            allow_self_loops: true,
        }
    }
}

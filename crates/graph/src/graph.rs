//! The immutable compressed-sparse-row preference graph.

// lint: allow-file(no-index) — ItemId values are dense indices assigned by GraphBuilder and every
// per-node/per-edge array is sized to node_count/edge_count, so accesses are in
// bounds by construction.
use crate::{Edge, ItemId};

/// An immutable weighted directed preference graph in compressed sparse row
/// (CSR) form, storing both adjacency directions.
///
/// Construction goes through [`GraphBuilder`](crate::GraphBuilder), which
/// validates weights and assembles the CSR arrays. Once built, the graph is
/// read-only and safe to share across threads (`&PreferenceGraph` is `Sync`),
/// which is what the parallel greedy solver relies on.
///
/// # Representation
///
/// For `n` nodes and `m` edges the graph stores:
///
/// * `node_weights[n]` — `W(v)`, request probabilities.
/// * Out-CSR: `out_offsets[n + 1]`, `out_targets[m]`, `out_weights[m]` with
///   each row sorted by target id.
/// * In-CSR: `in_offsets[n + 1]`, `in_sources[m]`, `in_weights[m]` with each
///   row sorted by source id. This direction drives the solver's
///   `Gain`/`AddNode` loops ("for each `u ∉ S` such that `(u, v) ∈ E`").
/// * Optional string labels mapping dense ids back to external identifiers.
#[derive(Clone, Debug, PartialEq)]
pub struct PreferenceGraph {
    pub(crate) node_weights: Vec<f64>,
    pub(crate) labels: Option<Vec<String>>,

    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_targets: Vec<ItemId>,
    pub(crate) out_weights: Vec<f64>,

    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_sources: Vec<ItemId>,
    pub(crate) in_weights: Vec<f64>,
}

impl PreferenceGraph {
    /// Number of nodes (items).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_weights.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Returns true if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_weights.is_empty()
    }

    /// Iterator over all node ids in ascending order.
    #[inline]
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = ItemId> + Clone {
        (0..self.node_count() as u32).map(ItemId::new)
    }

    /// The request probability `W(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn node_weight(&self, v: ItemId) -> f64 {
        self.node_weights[v.index()]
    }

    /// All node weights as a slice indexed by `ItemId::index`.
    #[inline]
    pub fn node_weights(&self) -> &[f64] {
        &self.node_weights
    }

    /// Sum of all node weights (1.0 for a well-formed preference graph, up
    /// to floating-point error).
    pub fn total_node_weight(&self) -> f64 {
        crate::float::sum_stable(self.node_weights.iter().copied())
    }

    /// The label of `v`, if labels were provided at build time.
    pub fn label(&self, v: ItemId) -> Option<&str> {
        self.labels.as_ref().map(|l| l[v.index()].as_str())
    }

    /// Whether the graph carries node labels.
    pub fn has_labels(&self) -> bool {
        self.labels.is_some()
    }

    /// Out-degree of `v` (number of alternatives consumers consider for it).
    #[inline]
    pub fn out_degree(&self, v: ItemId) -> usize {
        let i = v.index();
        (self.out_offsets[i + 1] - self.out_offsets[i]) as usize
    }

    /// In-degree of `v` (number of items for which `v` is an alternative).
    #[inline]
    pub fn in_degree(&self, v: ItemId) -> usize {
        let i = v.index();
        (self.in_offsets[i + 1] - self.in_offsets[i]) as usize
    }

    /// Maximum in-degree `D` over all nodes — the degree bound in the
    /// paper's `O(nkD)` greedy complexity.
    pub fn max_in_degree(&self) -> usize {
        self.node_ids()
            .map(|v| self.in_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Maximum out-degree over all nodes.
    pub fn max_out_degree(&self) -> usize {
        self.node_ids()
            .map(|v| self.out_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterates over the out-edges of `v` as `(target, weight)` pairs,
    /// sorted by target id.
    #[inline]
    pub fn out_edges(&self, v: ItemId) -> OutEdgesIter<'_> {
        let i = v.index();
        let lo = self.out_offsets[i] as usize;
        let hi = self.out_offsets[i + 1] as usize;
        OutEdgesIter {
            targets: &self.out_targets[lo..hi],
            weights: &self.out_weights[lo..hi],
            pos: 0,
        }
    }

    /// Iterates over the in-edges of `v` as `(source, weight)` pairs, sorted
    /// by source id. This is the iteration order of Algorithms 2–5.
    #[inline]
    pub fn in_edges(&self, v: ItemId) -> InEdgesIter<'_> {
        let i = v.index();
        let lo = self.in_offsets[i] as usize;
        let hi = self.in_offsets[i + 1] as usize;
        InEdgesIter {
            sources: &self.in_sources[lo..hi],
            weights: &self.in_weights[lo..hi],
            pos: 0,
        }
    }

    /// The weight of edge `v → u`, or `None` if no such edge exists.
    ///
    /// `O(log out_degree(v))` via binary search on the sorted out-row.
    pub fn edge_weight(&self, v: ItemId, u: ItemId) -> Option<f64> {
        let i = v.index();
        let lo = self.out_offsets[i] as usize;
        let hi = self.out_offsets[i + 1] as usize;
        let row = &self.out_targets[lo..hi];
        row.binary_search(&u)
            .ok()
            .map(|pos| self.out_weights[lo + pos])
    }

    /// Whether edge `v → u` exists.
    #[inline]
    pub fn has_edge(&self, v: ItemId, u: ItemId) -> bool {
        self.edge_weight(v, u).is_some()
    }

    /// Sum of outgoing edge weights of `v`.
    ///
    /// In the Normalized variant this is at most 1 (each consumer considers
    /// at most one alternative).
    pub fn out_weight_sum(&self, v: ItemId) -> f64 {
        let i = v.index();
        let lo = self.out_offsets[i] as usize;
        let hi = self.out_offsets[i + 1] as usize;
        crate::float::sum_stable(self.out_weights[lo..hi].iter().copied())
    }

    /// Iterates all edges of the graph in `(source, target)` order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.node_ids()
            .flat_map(move |v| self.out_edges(v).map(move |(u, w)| Edge::new(v, u, w)))
    }

    /// Resolves a label back to its id via linear scan.
    ///
    /// Intended for tests and small graphs; adapt pipelines keep their own
    /// label maps.
    pub fn find_by_label(&self, label: &str) -> Option<ItemId> {
        let labels = self.labels.as_ref()?;
        labels
            .iter()
            .position(|l| l == label)
            .map(ItemId::from_index)
    }

    /// Approximate resident memory of the CSR arrays in bytes, excluding
    /// labels. Useful for capacity planning in scalability experiments.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.node_weights.len() * size_of::<f64>()
            + (self.out_offsets.len() + self.in_offsets.len()) * size_of::<u32>()
            + (self.out_targets.len() + self.in_sources.len()) * size_of::<ItemId>()
            + (self.out_weights.len() + self.in_weights.len()) * size_of::<f64>()
    }
}

/// Iterator over `(target, weight)` pairs of a node's out-edges.
#[derive(Clone, Debug)]
pub struct OutEdgesIter<'a> {
    targets: &'a [ItemId],
    weights: &'a [f64],
    pos: usize,
}

impl<'a> Iterator for OutEdgesIter<'a> {
    type Item = (ItemId, f64);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos < self.targets.len() {
            let item = (self.targets[self.pos], self.weights[self.pos]);
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.targets.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for OutEdgesIter<'_> {}

/// Iterator over `(source, weight)` pairs of a node's in-edges.
#[derive(Clone, Debug)]
pub struct InEdgesIter<'a> {
    sources: &'a [ItemId],
    weights: &'a [f64],
    pos: usize,
}

impl<'a> Iterator for InEdgesIter<'a> {
    type Item = (ItemId, f64);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos < self.sources.len() {
            let item = (self.sources[self.pos], self.weights[self.pos]);
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.sources.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for InEdgesIter<'_> {}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use crate::GraphBuilder;

    use super::*;

    fn diamond() -> PreferenceGraph {
        // a -> b (0.5), a -> c (0.25), b -> c (1.0), d isolated
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.4);
        let bb = b.add_node(0.3);
        let c = b.add_node(0.2);
        let _d = b.add_node(0.1);
        b.add_edge(a, bb, 0.5).unwrap();
        b.add_edge(a, c, 0.25).unwrap();
        b.add_edge(bb, c, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        let (a, b, c, d) = (
            ItemId::new(0),
            ItemId::new(1),
            ItemId::new(2),
            ItemId::new(3),
        );
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.out_degree(b), 1);
        assert_eq!(g.out_degree(c), 0);
        assert_eq!(g.in_degree(c), 2);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.in_degree(d), 0);
        assert_eq!(g.max_in_degree(), 2);
        assert_eq!(g.max_out_degree(), 2);
    }

    #[test]
    fn edge_lookup() {
        let g = diamond();
        let (a, b, c) = (ItemId::new(0), ItemId::new(1), ItemId::new(2));
        assert_eq!(g.edge_weight(a, b), Some(0.5));
        assert_eq!(g.edge_weight(a, c), Some(0.25));
        assert_eq!(g.edge_weight(b, c), Some(1.0));
        assert_eq!(g.edge_weight(c, a), None);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
    }

    #[test]
    fn out_and_in_iterators_sorted() {
        let g = diamond();
        let a = ItemId::new(0);
        let c = ItemId::new(2);
        let outs: Vec<_> = g.out_edges(a).collect();
        assert_eq!(outs, vec![(ItemId::new(1), 0.5), (ItemId::new(2), 0.25)]);
        let ins: Vec<_> = g.in_edges(c).collect();
        assert_eq!(ins, vec![(ItemId::new(0), 0.25), (ItemId::new(1), 1.0)]);
        assert_eq!(g.out_edges(a).len(), 2);
        assert_eq!(g.in_edges(c).len(), 2);
    }

    #[test]
    fn edges_iterator_covers_everything() {
        let g = diamond();
        let all: Vec<_> = g.edges().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], Edge::new(ItemId::new(0), ItemId::new(1), 0.5));
    }

    #[test]
    fn out_weight_sum() {
        let g = diamond();
        assert!((g.out_weight_sum(ItemId::new(0)) - 0.75).abs() < 1e-12);
        assert_eq!(g.out_weight_sum(ItemId::new(2)), 0.0);
    }

    #[test]
    fn total_node_weight_is_one() {
        let g = diamond();
        assert!((g.total_node_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn labels_roundtrip() {
        let mut b = GraphBuilder::new();
        let x = b.add_node_labeled(0.7, "iphone-silver");
        let y = b.add_node_labeled(0.3, "iphone-gold");
        b.add_edge(x, y, 0.5).unwrap();
        let g = b.build().unwrap();
        assert!(g.has_labels());
        assert_eq!(g.label(x), Some("iphone-silver"));
        assert_eq!(g.find_by_label("iphone-gold"), Some(y));
        assert_eq!(g.find_by_label("nope"), None);
    }

    #[test]
    fn memory_accounting_positive() {
        let g = diamond();
        assert!(g.memory_bytes() > 0);
    }
}

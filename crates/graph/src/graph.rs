//! The immutable compressed-sparse-row preference graph.

// lint: allow-file(no-index) — ItemId values are dense indices assigned by GraphBuilder and every
// per-node/per-edge array is sized to node_count/edge_count, so accesses are in
// bounds by construction.
use std::fmt;
use std::sync::Arc;

use crate::{Edge, GraphError, ItemId};

/// Read-only access to the seven CSR sections of a preference graph that
/// live outside the graph's own allocations — typically a memory-mapped
/// on-disk container (`pcover-store`).
///
/// Implementations must return slices whose lengths are mutually consistent
/// (`out_offsets.len() == in_offsets.len() == node_weights.len() + 1`, edge
/// arrays all of equal length); [`PreferenceGraph::from_csr_source`]
/// re-validates the full CSR structure before accepting a source, so a
/// malformed implementation is rejected rather than causing out-of-bounds
/// panics later.
pub trait CsrSource: Send + Sync + fmt::Debug {
    /// `W(v)` per node, indexed by `ItemId::index`.
    fn node_weights(&self) -> &[f64];
    /// Out-CSR row offsets, length `n + 1`.
    fn out_offsets(&self) -> &[u32];
    /// Out-CSR edge targets, length `m`, each row sorted by target id.
    fn out_targets(&self) -> &[ItemId];
    /// Out-CSR edge weights, parallel to `out_targets`.
    fn out_weights(&self) -> &[f64];
    /// In-CSR row offsets, length `n + 1`.
    fn in_offsets(&self) -> &[u32];
    /// In-CSR edge sources, length `m`, each row sorted by source id.
    fn in_sources(&self) -> &[ItemId];
    /// In-CSR edge weights, parallel to `in_sources`.
    fn in_weights(&self) -> &[f64];
}

/// Owned CSR arrays — the storage produced by [`GraphBuilder`] and by
/// materializing an external source.
#[derive(Clone, Debug)]
pub(crate) struct OwnedCsr {
    pub(crate) node_weights: Vec<f64>,
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_targets: Vec<ItemId>,
    pub(crate) out_weights: Vec<f64>,
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_sources: Vec<ItemId>,
    pub(crate) in_weights: Vec<f64>,
}

impl OwnedCsr {
    fn copied_from(src: &dyn CsrSource) -> Self {
        OwnedCsr {
            node_weights: src.node_weights().to_vec(),
            out_offsets: src.out_offsets().to_vec(),
            out_targets: src.out_targets().to_vec(),
            out_weights: src.out_weights().to_vec(),
            in_offsets: src.in_offsets().to_vec(),
            in_sources: src.in_sources().to_vec(),
            in_weights: src.in_weights().to_vec(),
        }
    }
}

/// Raw CSR parts for [`PreferenceGraph::from_csr_parts`]: an owned graph
/// assembled outside [`GraphBuilder`](crate::GraphBuilder), e.g. by the
/// buffered (pread) load path of `pcover-store`.
#[derive(Clone, Debug, Default)]
pub struct CsrParts {
    /// `W(v)` per node.
    pub node_weights: Vec<f64>,
    /// Out-CSR row offsets, length `n + 1`.
    pub out_offsets: Vec<u32>,
    /// Out-CSR edge targets, each row strictly ascending.
    pub out_targets: Vec<ItemId>,
    /// Out-CSR edge weights, parallel to `out_targets`.
    pub out_weights: Vec<f64>,
    /// In-CSR row offsets, length `n + 1`.
    pub in_offsets: Vec<u32>,
    /// In-CSR edge sources, each row strictly ascending.
    pub in_sources: Vec<ItemId>,
    /// In-CSR edge weights, parallel to `in_sources`.
    pub in_weights: Vec<f64>,
    /// Optional node labels, length `n` when present.
    pub labels: Option<Vec<String>>,
}

/// Where a graph's CSR arrays live.
#[derive(Clone)]
enum Store {
    /// Heap-allocated vectors owned by the graph.
    Owned(OwnedCsr),
    /// Borrowed from an external backing (e.g. a memory-mapped container);
    /// cloning shares the backing via the `Arc`.
    External(Arc<dyn CsrSource>),
}

/// An immutable weighted directed preference graph in compressed sparse row
/// (CSR) form, storing both adjacency directions.
///
/// Construction goes through [`GraphBuilder`](crate::GraphBuilder), which
/// validates weights and assembles the CSR arrays, or through
/// [`from_csr_parts`](Self::from_csr_parts) /
/// [`from_csr_source`](Self::from_csr_source), which re-validate
/// pre-assembled CSR data (the `pcover-store` load paths). Once built, the
/// graph is read-only and safe to share across threads (`&PreferenceGraph`
/// is `Sync`), which is what the parallel greedy solver relies on.
///
/// # Representation
///
/// For `n` nodes and `m` edges the graph stores:
///
/// * `node_weights[n]` — `W(v)`, request probabilities.
/// * Out-CSR: `out_offsets[n + 1]`, `out_targets[m]`, `out_weights[m]` with
///   each row sorted by target id.
/// * In-CSR: `in_offsets[n + 1]`, `in_sources[m]`, `in_weights[m]` with each
///   row sorted by source id. This direction drives the solver's
///   `Gain`/`AddNode` loops ("for each `u ∉ S` such that `(u, v) ∈ E`").
/// * Optional string labels mapping dense ids back to external identifiers.
///
/// The arrays are either owned vectors or zero-copy views into an external
/// [`CsrSource`] (a memory-mapped container); every accessor dispatches with
/// an `#[inline]` match, so solvers are oblivious to the backing.
#[derive(Clone)]
pub struct PreferenceGraph {
    store: Store,
    labels: Option<Vec<String>>,
}

/// Validates pre-assembled CSR arrays: offset shape and monotonicity, edge
/// array lengths, id bounds, strictly ascending rows, and weight domains.
/// Shared by the two non-builder constructors so an external source gets
/// exactly the owned-parts guarantees.
#[allow(clippy::too_many_arguments)]
fn validate_csr(
    node_weights: &[f64],
    out_offsets: &[u32],
    out_targets: &[ItemId],
    out_weights: &[f64],
    in_offsets: &[u32],
    in_sources: &[ItemId],
    in_weights: &[f64],
    labels: Option<&[String]>,
) -> Result<(), GraphError> {
    let n = node_weights.len();
    let fail = |message: String| GraphError::Parse {
        line: None,
        message,
    };
    if n > u32::MAX as usize {
        return Err(GraphError::CapacityExceeded {
            what: "node count exceeds u32 index space",
        });
    }
    if out_targets.len() > u32::MAX as usize {
        return Err(GraphError::CapacityExceeded {
            what: "edge count exceeds u32 index space",
        });
    }
    if let Some(labels) = labels {
        if labels.len() != n {
            return Err(fail(format!("csr: {} labels for {n} nodes", labels.len())));
        }
    }
    for (i, &w) in node_weights.iter().enumerate() {
        if !w.is_finite() || !(0.0..=1.0).contains(&w) {
            return Err(GraphError::InvalidNodeWeight {
                node: ItemId::from_index(i),
                weight: w,
            });
        }
    }
    for (direction, offsets, ids, weights) in [
        ("out", out_offsets, out_targets, out_weights),
        ("in", in_offsets, in_sources, in_weights),
    ] {
        let m = ids.len();
        if offsets.len() != n + 1 {
            return Err(fail(format!(
                "csr: {direction}_offsets has length {} for {n} nodes (want {})",
                offsets.len(),
                n + 1
            )));
        }
        if weights.len() != m {
            return Err(fail(format!(
                "csr: {direction} weights/ids length mismatch ({} vs {m})",
                weights.len()
            )));
        }
        if offsets.first() != Some(&0) {
            return Err(fail(format!("csr: {direction}_offsets[0] must be 0")));
        }
        if offsets.last().map(|&o| o as usize) != Some(m) {
            return Err(fail(format!(
                "csr: {direction}_offsets must end at the edge count {m}"
            )));
        }
        for i in 0..n {
            if offsets[i] > offsets[i + 1] {
                return Err(fail(format!(
                    "csr: {direction}_offsets decreases at node {i}"
                )));
            }
            if offsets[i + 1] as usize > m {
                return Err(fail(format!(
                    "csr: {direction}_offsets[{}] exceeds the edge count {m}",
                    i + 1
                )));
            }
        }
        for i in 0..n {
            let row = &ids[offsets[i] as usize..offsets[i + 1] as usize];
            for pair in row.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(fail(format!(
                        "csr: {direction} row of node {i} is not strictly ascending"
                    )));
                }
            }
        }
        for (slot, &id) in ids.iter().enumerate() {
            if id.index() >= n {
                return Err(fail(format!(
                    "csr: {direction} edge slot {slot} references node {id} out of range (n = {n})"
                )));
            }
        }
    }
    if out_targets.len() != in_sources.len() {
        return Err(fail(format!(
            "csr: out edge count {} != in edge count {}",
            out_targets.len(),
            in_sources.len()
        )));
    }
    for (slot, &w) in out_weights.iter().chain(in_weights.iter()).enumerate() {
        if !(w.is_finite() && w > 0.0 && w <= 1.0) {
            return Err(fail(format!(
                "csr: edge weight {w} at slot {slot} outside (0, 1]"
            )));
        }
    }
    Ok(())
}

impl PreferenceGraph {
    /// Assembles a graph from owned, builder-validated CSR arrays.
    pub(crate) fn new_owned(csr: OwnedCsr, labels: Option<Vec<String>>) -> Self {
        PreferenceGraph {
            store: Store::Owned(csr),
            labels,
        }
    }

    /// Assembles a graph from raw owned CSR parts, re-validating the full
    /// CSR structure (offset shape, row sortedness, id bounds, weight
    /// domains). This is the buffered load path of on-disk containers.
    ///
    /// Unlike [`GraphBuilder`](crate::GraphBuilder), no node-weight sum
    /// check is applied: a container faithfully round-trips graphs built
    /// with `skip_weight_sum_check`.
    ///
    /// # Errors
    ///
    /// [`GraphError::Parse`] for structural violations,
    /// [`GraphError::InvalidNodeWeight`] / [`GraphError::InvalidEdgeWeight`]
    /// domains via their `Parse` rendering, [`GraphError::CapacityExceeded`]
    /// past `u32` index space.
    pub fn from_csr_parts(parts: CsrParts) -> Result<Self, GraphError> {
        validate_csr(
            &parts.node_weights,
            &parts.out_offsets,
            &parts.out_targets,
            &parts.out_weights,
            &parts.in_offsets,
            &parts.in_sources,
            &parts.in_weights,
            parts.labels.as_deref(),
        )?;
        Ok(PreferenceGraph {
            store: Store::Owned(OwnedCsr {
                node_weights: parts.node_weights,
                out_offsets: parts.out_offsets,
                out_targets: parts.out_targets,
                out_weights: parts.out_weights,
                in_offsets: parts.in_offsets,
                in_sources: parts.in_sources,
                in_weights: parts.in_weights,
            }),
            labels: parts.labels,
        })
    }

    /// Assembles a graph over an external zero-copy [`CsrSource`] (e.g. a
    /// memory-mapped container section table), re-validating the full CSR
    /// structure up front so later accessors cannot go out of bounds.
    ///
    /// # Errors
    ///
    /// As [`from_csr_parts`](Self::from_csr_parts).
    pub fn from_csr_source(
        source: Arc<dyn CsrSource>,
        labels: Option<Vec<String>>,
    ) -> Result<Self, GraphError> {
        validate_csr(
            source.node_weights(),
            source.out_offsets(),
            source.out_targets(),
            source.out_weights(),
            source.in_offsets(),
            source.in_sources(),
            source.in_weights(),
            labels.as_deref(),
        )?;
        Ok(PreferenceGraph {
            store: Store::External(source),
            labels,
        })
    }

    /// Whether the CSR arrays live in an external backing (memory-mapped
    /// container) rather than heap vectors owned by this graph.
    pub fn is_externally_backed(&self) -> bool {
        matches!(self.store, Store::External(_))
    }

    /// Materializes owned storage (no-op when already owned) and returns it
    /// mutably. Used by transforms that patch arrays in place.
    pub(crate) fn owned_mut(&mut self) -> &mut OwnedCsr {
        if let Store::External(src) = &self.store {
            self.store = Store::Owned(OwnedCsr::copied_from(src.as_ref()));
        }
        match &mut self.store {
            Store::Owned(csr) => csr,
            Store::External(_) => unreachable!("external store was just materialized"),
        }
    }

    /// All node weights as a slice indexed by `ItemId::index`.
    #[inline]
    pub fn node_weights(&self) -> &[f64] {
        match &self.store {
            Store::Owned(csr) => &csr.node_weights,
            Store::External(src) => src.node_weights(),
        }
    }

    /// Out-CSR row offsets, length `n + 1`.
    #[inline]
    pub fn csr_out_offsets(&self) -> &[u32] {
        match &self.store {
            Store::Owned(csr) => &csr.out_offsets,
            Store::External(src) => src.out_offsets(),
        }
    }

    /// Out-CSR edge targets (all rows concatenated, each sorted).
    #[inline]
    pub fn csr_out_targets(&self) -> &[ItemId] {
        match &self.store {
            Store::Owned(csr) => &csr.out_targets,
            Store::External(src) => src.out_targets(),
        }
    }

    /// Out-CSR edge weights, parallel to [`csr_out_targets`](Self::csr_out_targets).
    #[inline]
    pub fn csr_out_weights(&self) -> &[f64] {
        match &self.store {
            Store::Owned(csr) => &csr.out_weights,
            Store::External(src) => src.out_weights(),
        }
    }

    /// In-CSR row offsets, length `n + 1`.
    #[inline]
    pub fn csr_in_offsets(&self) -> &[u32] {
        match &self.store {
            Store::Owned(csr) => &csr.in_offsets,
            Store::External(src) => src.in_offsets(),
        }
    }

    /// In-CSR edge sources (all rows concatenated, each sorted).
    #[inline]
    pub fn csr_in_sources(&self) -> &[ItemId] {
        match &self.store {
            Store::Owned(csr) => &csr.in_sources,
            Store::External(src) => src.in_sources(),
        }
    }

    /// In-CSR edge weights, parallel to [`csr_in_sources`](Self::csr_in_sources).
    #[inline]
    pub fn csr_in_weights(&self) -> &[f64] {
        match &self.store {
            Store::Owned(csr) => &csr.in_weights,
            Store::External(src) => src.in_weights(),
        }
    }

    /// Node labels, length `n`, if labels were provided at build time.
    pub fn labels(&self) -> Option<&[String]> {
        self.labels.as_deref()
    }

    /// Number of nodes (items).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_weights().len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.csr_out_targets().len()
    }

    /// Returns true if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_weights().is_empty()
    }

    /// Iterator over all node ids in ascending order.
    #[inline]
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = ItemId> + Clone {
        (0..self.node_count() as u32).map(ItemId::new)
    }

    /// The request probability `W(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn node_weight(&self, v: ItemId) -> f64 {
        self.node_weights()[v.index()]
    }

    /// Sum of all node weights (1.0 for a well-formed preference graph, up
    /// to floating-point error).
    pub fn total_node_weight(&self) -> f64 {
        crate::float::sum_stable(self.node_weights().iter().copied())
    }

    /// The label of `v`, if labels were provided at build time.
    pub fn label(&self, v: ItemId) -> Option<&str> {
        self.labels.as_ref().map(|l| l[v.index()].as_str())
    }

    /// Whether the graph carries node labels.
    pub fn has_labels(&self) -> bool {
        self.labels.is_some()
    }

    /// Out-degree of `v` (number of alternatives consumers consider for it).
    #[inline]
    pub fn out_degree(&self, v: ItemId) -> usize {
        let offsets = self.csr_out_offsets();
        let i = v.index();
        (offsets[i + 1] - offsets[i]) as usize
    }

    /// In-degree of `v` (number of items for which `v` is an alternative).
    #[inline]
    pub fn in_degree(&self, v: ItemId) -> usize {
        let offsets = self.csr_in_offsets();
        let i = v.index();
        (offsets[i + 1] - offsets[i]) as usize
    }

    /// Maximum in-degree `D` over all nodes — the degree bound in the
    /// paper's `O(nkD)` greedy complexity.
    pub fn max_in_degree(&self) -> usize {
        self.node_ids()
            .map(|v| self.in_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Maximum out-degree over all nodes.
    pub fn max_out_degree(&self) -> usize {
        self.node_ids()
            .map(|v| self.out_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterates over the out-edges of `v` as `(target, weight)` pairs,
    /// sorted by target id.
    #[inline]
    pub fn out_edges(&self, v: ItemId) -> OutEdgesIter<'_> {
        let offsets = self.csr_out_offsets();
        let i = v.index();
        let lo = offsets[i] as usize;
        let hi = offsets[i + 1] as usize;
        OutEdgesIter {
            targets: &self.csr_out_targets()[lo..hi],
            weights: &self.csr_out_weights()[lo..hi],
            pos: 0,
        }
    }

    /// Iterates over the in-edges of `v` as `(source, weight)` pairs, sorted
    /// by source id. This is the iteration order of Algorithms 2–5.
    #[inline]
    pub fn in_edges(&self, v: ItemId) -> InEdgesIter<'_> {
        let offsets = self.csr_in_offsets();
        let i = v.index();
        let lo = offsets[i] as usize;
        let hi = offsets[i + 1] as usize;
        InEdgesIter {
            sources: &self.csr_in_sources()[lo..hi],
            weights: &self.csr_in_weights()[lo..hi],
            pos: 0,
        }
    }

    /// The weight of edge `v → u`, or `None` if no such edge exists.
    ///
    /// `O(log out_degree(v))` via binary search on the sorted out-row.
    pub fn edge_weight(&self, v: ItemId, u: ItemId) -> Option<f64> {
        let offsets = self.csr_out_offsets();
        let i = v.index();
        let lo = offsets[i] as usize;
        let hi = offsets[i + 1] as usize;
        let row = &self.csr_out_targets()[lo..hi];
        row.binary_search(&u)
            .ok()
            .map(|pos| self.csr_out_weights()[lo + pos])
    }

    /// Whether edge `v → u` exists.
    #[inline]
    pub fn has_edge(&self, v: ItemId, u: ItemId) -> bool {
        self.edge_weight(v, u).is_some()
    }

    /// Sum of outgoing edge weights of `v`.
    ///
    /// In the Normalized variant this is at most 1 (each consumer considers
    /// at most one alternative).
    pub fn out_weight_sum(&self, v: ItemId) -> f64 {
        let offsets = self.csr_out_offsets();
        let i = v.index();
        let lo = offsets[i] as usize;
        let hi = offsets[i + 1] as usize;
        crate::float::sum_stable(self.csr_out_weights()[lo..hi].iter().copied())
    }

    /// Iterates all edges of the graph in `(source, target)` order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.node_ids()
            .flat_map(move |v| self.out_edges(v).map(move |(u, w)| Edge::new(v, u, w)))
    }

    /// Resolves a label back to its id via linear scan.
    ///
    /// Intended for tests and small graphs; adapt pipelines keep their own
    /// label maps.
    pub fn find_by_label(&self, label: &str) -> Option<ItemId> {
        let labels = self.labels.as_ref()?;
        labels
            .iter()
            .position(|l| l == label)
            .map(ItemId::from_index)
    }

    /// Approximate resident memory of the CSR arrays in bytes, excluding
    /// labels. For an externally backed graph this is the mapped footprint
    /// rather than heap usage. Useful for capacity planning in scalability
    /// experiments.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of_val;
        size_of_val(self.node_weights())
            + size_of_val(self.csr_out_offsets())
            + size_of_val(self.csr_in_offsets())
            + size_of_val(self.csr_out_targets())
            + size_of_val(self.csr_in_sources())
            + size_of_val(self.csr_out_weights())
            + size_of_val(self.csr_in_weights())
    }
}

/// Bitwise equality on an `f64` slice pair. Weight arrays are compared by
/// bit pattern — the container round-trip contract is "the same bytes", and
/// this avoids both the `NaN != NaN` trap and tolerance-based float
/// comparison in what is fundamentally a storage equality.
fn f64_bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

impl PartialEq for PreferenceGraph {
    fn eq(&self, other: &Self) -> bool {
        f64_bits_eq(self.node_weights(), other.node_weights())
            && self.csr_out_offsets() == other.csr_out_offsets()
            && self.csr_out_targets() == other.csr_out_targets()
            && f64_bits_eq(self.csr_out_weights(), other.csr_out_weights())
            && self.csr_in_offsets() == other.csr_in_offsets()
            && self.csr_in_sources() == other.csr_in_sources()
            && f64_bits_eq(self.csr_in_weights(), other.csr_in_weights())
            && self.labels == other.labels
    }
}

impl fmt::Debug for PreferenceGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreferenceGraph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .field("labels", &self.has_labels())
            .field(
                "backing",
                &if self.is_externally_backed() {
                    "external"
                } else {
                    "owned"
                },
            )
            .finish()
    }
}

/// Iterator over `(target, weight)` pairs of a node's out-edges.
#[derive(Clone, Debug)]
pub struct OutEdgesIter<'a> {
    targets: &'a [ItemId],
    weights: &'a [f64],
    pos: usize,
}

impl<'a> Iterator for OutEdgesIter<'a> {
    type Item = (ItemId, f64);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos < self.targets.len() {
            let item = (self.targets[self.pos], self.weights[self.pos]);
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.targets.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for OutEdgesIter<'_> {}

/// Iterator over `(source, weight)` pairs of a node's in-edges.
#[derive(Clone, Debug)]
pub struct InEdgesIter<'a> {
    sources: &'a [ItemId],
    weights: &'a [f64],
    pos: usize,
}

impl<'a> Iterator for InEdgesIter<'a> {
    type Item = (ItemId, f64);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos < self.sources.len() {
            let item = (self.sources[self.pos], self.weights[self.pos]);
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.sources.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for InEdgesIter<'_> {}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use crate::GraphBuilder;

    use super::*;

    fn diamond() -> PreferenceGraph {
        // a -> b (0.5), a -> c (0.25), b -> c (1.0), d isolated
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.4);
        let bb = b.add_node(0.3);
        let c = b.add_node(0.2);
        let _d = b.add_node(0.1);
        b.add_edge(a, bb, 0.5).unwrap();
        b.add_edge(a, c, 0.25).unwrap();
        b.add_edge(bb, c, 1.0).unwrap();
        b.build().unwrap()
    }

    fn diamond_parts() -> CsrParts {
        let g = diamond();
        CsrParts {
            node_weights: g.node_weights().to_vec(),
            out_offsets: g.csr_out_offsets().to_vec(),
            out_targets: g.csr_out_targets().to_vec(),
            out_weights: g.csr_out_weights().to_vec(),
            in_offsets: g.csr_in_offsets().to_vec(),
            in_sources: g.csr_in_sources().to_vec(),
            in_weights: g.csr_in_weights().to_vec(),
            labels: None,
        }
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        let (a, b, c, d) = (
            ItemId::new(0),
            ItemId::new(1),
            ItemId::new(2),
            ItemId::new(3),
        );
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.out_degree(b), 1);
        assert_eq!(g.out_degree(c), 0);
        assert_eq!(g.in_degree(c), 2);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.in_degree(d), 0);
        assert_eq!(g.max_in_degree(), 2);
        assert_eq!(g.max_out_degree(), 2);
    }

    #[test]
    fn edge_lookup() {
        let g = diamond();
        let (a, b, c) = (ItemId::new(0), ItemId::new(1), ItemId::new(2));
        assert_eq!(g.edge_weight(a, b), Some(0.5));
        assert_eq!(g.edge_weight(a, c), Some(0.25));
        assert_eq!(g.edge_weight(b, c), Some(1.0));
        assert_eq!(g.edge_weight(c, a), None);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
    }

    #[test]
    fn out_and_in_iterators_sorted() {
        let g = diamond();
        let a = ItemId::new(0);
        let c = ItemId::new(2);
        let outs: Vec<_> = g.out_edges(a).collect();
        assert_eq!(outs, vec![(ItemId::new(1), 0.5), (ItemId::new(2), 0.25)]);
        let ins: Vec<_> = g.in_edges(c).collect();
        assert_eq!(ins, vec![(ItemId::new(0), 0.25), (ItemId::new(1), 1.0)]);
        assert_eq!(g.out_edges(a).len(), 2);
        assert_eq!(g.in_edges(c).len(), 2);
    }

    #[test]
    fn edges_iterator_covers_everything() {
        let g = diamond();
        let all: Vec<_> = g.edges().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], Edge::new(ItemId::new(0), ItemId::new(1), 0.5));
    }

    #[test]
    fn out_weight_sum() {
        let g = diamond();
        assert!((g.out_weight_sum(ItemId::new(0)) - 0.75).abs() < 1e-12);
        assert_eq!(g.out_weight_sum(ItemId::new(2)), 0.0);
    }

    #[test]
    fn total_node_weight_is_one() {
        let g = diamond();
        assert!((g.total_node_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn labels_roundtrip() {
        let mut b = GraphBuilder::new();
        let x = b.add_node_labeled(0.7, "iphone-silver");
        let y = b.add_node_labeled(0.3, "iphone-gold");
        b.add_edge(x, y, 0.5).unwrap();
        let g = b.build().unwrap();
        assert!(g.has_labels());
        assert_eq!(g.label(x), Some("iphone-silver"));
        assert_eq!(g.find_by_label("iphone-gold"), Some(y));
        assert_eq!(g.find_by_label("nope"), None);
    }

    #[test]
    fn memory_accounting_positive() {
        let g = diamond();
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn from_csr_parts_round_trips_builder_output() {
        let g = diamond();
        let back = PreferenceGraph::from_csr_parts(diamond_parts()).unwrap();
        assert_eq!(back, g);
        assert!(!back.is_externally_backed());
    }

    #[test]
    fn from_csr_parts_rejects_structural_violations() {
        // Offsets not ending at the edge count.
        let mut p = diamond_parts();
        p.out_offsets[4] = 2;
        assert!(PreferenceGraph::from_csr_parts(p).is_err());

        // Decreasing offsets.
        let mut p = diamond_parts();
        p.out_offsets[1] = 3;
        p.out_offsets[2] = 2;
        assert!(PreferenceGraph::from_csr_parts(p).is_err());

        // Out-of-range target id.
        let mut p = diamond_parts();
        p.out_targets[0] = ItemId::new(99);
        assert!(PreferenceGraph::from_csr_parts(p).is_err());

        // Unsorted row (duplicate target).
        let mut p = diamond_parts();
        p.out_targets[1] = p.out_targets[0];
        assert!(PreferenceGraph::from_csr_parts(p).is_err());

        // Edge weight out of domain.
        let mut p = diamond_parts();
        p.out_weights[0] = 0.0;
        assert!(PreferenceGraph::from_csr_parts(p).is_err());

        // Node weight out of domain.
        let mut p = diamond_parts();
        p.node_weights[0] = f64::NAN;
        assert!(PreferenceGraph::from_csr_parts(p).is_err());

        // Label count mismatch.
        let mut p = diamond_parts();
        p.labels = Some(vec!["only-one".into()]);
        assert!(PreferenceGraph::from_csr_parts(p).is_err());

        // Out/in edge count mismatch.
        let mut p = diamond_parts();
        p.in_sources.pop();
        p.in_weights.pop();
        assert!(PreferenceGraph::from_csr_parts(p).is_err());
    }

    #[derive(Debug)]
    struct VecSource(CsrParts);

    impl CsrSource for VecSource {
        fn node_weights(&self) -> &[f64] {
            &self.0.node_weights
        }
        fn out_offsets(&self) -> &[u32] {
            &self.0.out_offsets
        }
        fn out_targets(&self) -> &[ItemId] {
            &self.0.out_targets
        }
        fn out_weights(&self) -> &[f64] {
            &self.0.out_weights
        }
        fn in_offsets(&self) -> &[u32] {
            &self.0.in_offsets
        }
        fn in_sources(&self) -> &[ItemId] {
            &self.0.in_sources
        }
        fn in_weights(&self) -> &[f64] {
            &self.0.in_weights
        }
    }

    #[test]
    fn external_source_behaves_like_owned() {
        let g = diamond();
        let ext =
            PreferenceGraph::from_csr_source(Arc::new(VecSource(diamond_parts())), None).unwrap();
        assert!(ext.is_externally_backed());
        assert_eq!(ext, g);
        let a = ItemId::new(0);
        assert_eq!(ext.out_degree(a), g.out_degree(a));
        assert_eq!(
            ext.out_edges(a).collect::<Vec<_>>(),
            g.out_edges(a).collect::<Vec<_>>()
        );
        // Clones share the external backing.
        let clone = ext.clone();
        assert!(clone.is_externally_backed());
        assert_eq!(clone, g);
    }

    #[test]
    fn external_source_with_bad_structure_is_rejected() {
        let mut p = diamond_parts();
        p.in_offsets[1] = 7;
        assert!(PreferenceGraph::from_csr_source(Arc::new(VecSource(p)), None).is_err());
    }

    #[test]
    fn debug_names_the_backing() {
        let g = diamond();
        let dbg = format!("{g:?}");
        assert!(dbg.contains("owned"), "{dbg}");
        let ext =
            PreferenceGraph::from_csr_source(Arc::new(VecSource(diamond_parts())), None).unwrap();
        assert!(format!("{ext:?}").contains("external"));
    }
}

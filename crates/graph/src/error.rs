//! Error types for graph construction and IO.

use std::fmt;
use std::io;

use crate::ItemId;

/// Errors raised while building, transforming or (de)serializing a
/// preference graph.
#[derive(Debug)]
pub enum GraphError {
    /// A node weight was outside `[0, 1]` or not finite.
    InvalidNodeWeight {
        /// Offending node.
        node: ItemId,
        /// The rejected weight value.
        weight: f64,
    },
    /// An edge weight was outside `(0, 1]` or not finite.
    InvalidEdgeWeight {
        /// Edge source.
        source: ItemId,
        /// Edge target.
        target: ItemId,
        /// The rejected weight value.
        weight: f64,
    },
    /// An edge referenced a node id that was never added.
    UnknownNode {
        /// The unknown id.
        node: ItemId,
    },
    /// A self-loop was added while the builder disallows them.
    SelfLoopDisallowed {
        /// The node with the rejected self-loop.
        node: ItemId,
    },
    /// The same directed edge was added twice under
    /// [`DuplicateEdgePolicy::Error`](crate::DuplicateEdgePolicy).
    DuplicateEdge {
        /// Edge source.
        source: ItemId,
        /// Edge target.
        target: ItemId,
    },
    /// Node weights do not sum to 1 (within tolerance) and normalization was
    /// not requested.
    NodeWeightsNotNormalized {
        /// The actual sum of node weights.
        sum: f64,
    },
    /// In a normalized-variant graph, a node's outgoing edge weights sum to
    /// more than 1 (within tolerance).
    OutWeightsExceedOne {
        /// Offending node.
        node: ItemId,
        /// The actual sum of its outgoing edge weights.
        sum: f64,
    },
    /// The graph has no nodes where at least one is required.
    EmptyGraph,
    /// Too many nodes or edges for the compressed representation (`u32`
    /// indices).
    CapacityExceeded {
        /// Human-readable description of the exceeded dimension.
        what: &'static str,
    },
    /// An IO error while reading or writing a graph file.
    Io(io::Error),
    /// A parse error in a graph file.
    Parse {
        /// 1-based line number where parsing failed, if known.
        line: Option<usize>,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidNodeWeight { node, weight } => write!(
                f,
                "node {node} has invalid weight {weight}; node weights must be finite and in [0, 1]"
            ),
            GraphError::InvalidEdgeWeight {
                source,
                target,
                weight,
            } => write!(
                f,
                "edge {source} -> {target} has invalid weight {weight}; edge weights must be finite and in (0, 1]"
            ),
            GraphError::UnknownNode { node } => {
                write!(f, "edge references unknown node {node}")
            }
            GraphError::SelfLoopDisallowed { node } => {
                write!(f, "self-loop on node {node} rejected (enable allow_self_loops to permit)")
            }
            GraphError::DuplicateEdge { source, target } => {
                write!(f, "duplicate edge {source} -> {target}")
            }
            GraphError::NodeWeightsNotNormalized { sum } => write!(
                f,
                "node weights sum to {sum}, expected 1; call normalize_node_weights or enable auto-normalization"
            ),
            GraphError::OutWeightsExceedOne { node, sum } => write!(
                f,
                "outgoing edge weights of node {node} sum to {sum} > 1, violating the Normalized variant invariant"
            ),
            GraphError::EmptyGraph => write!(f, "graph has no nodes"),
            GraphError::CapacityExceeded { what } => {
                write!(f, "capacity exceeded: {what}")
            }
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Parse { line, message } => match line {
                Some(n) => write!(f, "parse error at line {n}: {message}"),
                None => write!(f, "parse error: {message}"),
            },
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::InvalidNodeWeight {
            node: ItemId::new(3),
            weight: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("node 3"));
        assert!(msg.contains("1.5"));

        let e = GraphError::OutWeightsExceedOne {
            node: ItemId::new(0),
            sum: 1.25,
        };
        assert!(e.to_string().contains("Normalized"));
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        let io_err = io::Error::new(io::ErrorKind::NotFound, "nope");
        let e: GraphError = io_err.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! Robustness: the graph readers must return errors — never panic — on
//! arbitrary garbage, truncations and mutations of valid files.

#![allow(clippy::unwrap_used)] // integration tests: panicking on setup failure is the right behavior

use proptest::prelude::*;

use pcover_graph::examples::figure1;
use pcover_graph::io::{binary, csv, json, LoadOptions};

fn tmpfile(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pcover-fuzz");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn binary_reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let path = tmpfile("garbage.pcg");
        std::fs::write(&path, &bytes).unwrap();
        // Any outcome but a panic is fine; garbage essentially never forms
        // a valid checksummed file.
        let _ = binary::read_binary(&path, &LoadOptions::default());
    }

    #[test]
    fn binary_reader_never_panics_on_mutations(pos in 0usize..200, flip in 1u8..=255) {
        let path = tmpfile("mutated.pcg");
        binary::write_binary(&figure1(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = pos % bytes.len();
        bytes[idx] ^= flip;
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(g) = binary::read_binary(&path, &LoadOptions::default()) {
            // A mutation that still parses must have hit a byte the format
            // ignores — impossible here (everything is checksummed), so a
            // success must reproduce the original graph... which can only
            // happen if the flip cancelled itself. Reaching this branch at
            // all with a real mutation would be a checksum bug.
            prop_assert_eq!(g, figure1());
        }
    }

    #[test]
    fn json_reader_never_panics_on_garbage(s in "\\PC{0,200}") {
        let _ = json::from_json_str(&s, &LoadOptions::default());
    }

    #[test]
    fn json_reader_never_panics_on_structured_noise(
        weights in proptest::collection::vec(any::<f64>(), 0..8),
        edges in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<f64>()), 0..8),
    ) {
        // Structurally valid JSON with semantically wild values.
        let doc = serde_json::json!({
            "node_weights": weights,
            "edges": edges
                .iter()
                .map(|(s, t, w)| serde_json::json!({"source": s, "target": t, "weight": w}))
                .collect::<Vec<_>>(),
        });
        let _ = json::from_json_str(&doc.to_string(), &LoadOptions::default());
    }

    #[test]
    fn csv_reader_never_panics_on_garbage(nodes in "\\PC{0,200}", edges in "\\PC{0,200}") {
        let dir = std::env::temp_dir()
            .join("pcover-fuzz-csv")
            .join(format!("{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("nodes.csv"), &nodes).unwrap();
        std::fs::write(dir.join("edges.csv"), &edges).unwrap();
        let _ = csv::read_csv(&dir, &LoadOptions::default());
    }
}

//! Property-based tests for the graph substrate.

use std::collections::HashMap;

use proptest::prelude::*;

use pcover_graph::delta::{apply, Change, GraphDelta};
use pcover_graph::io::{binary, csv, json, LoadOptions};
use pcover_graph::reduction::{npc_to_vck, vck_to_npc};
use pcover_graph::transform::{
    complete_with_self_loops, induced_subgraph, reverse, transitive_closure, PathCombination,
};
use pcover_graph::{DuplicateEdgePolicy, GraphBuilder, ItemId, PreferenceGraph};

/// A strategy producing small random well-formed preference graphs.
///
/// Node weights are drawn as positive counts then normalized; edges are a
/// random subset of ordered pairs with weights in (0, 1].
fn arb_graph(max_nodes: usize) -> impl Strategy<Value = PreferenceGraph> {
    (2..=max_nodes)
        .prop_flat_map(|n| {
            let weights = proptest::collection::vec(1u32..1000, n);
            let edges = proptest::collection::vec((0..n, 0..n, 0.01f64..=1.0), 0..(n * 3).min(64));
            (Just(n), weights, edges)
        })
        .prop_map(|(_n, weights, edges)| {
            let mut b = GraphBuilder::new()
                .normalize_node_weights(true)
                .duplicate_edge_policy(DuplicateEdgePolicy::Max);
            let ids: Vec<ItemId> = weights.iter().map(|&w| b.add_node(w as f64)).collect();
            for (s, t, w) in edges {
                if s != t {
                    b.add_edge(ids[s], ids[t], w).expect("edge weight in range");
                }
            }
            b.build().expect("generated graph is valid")
        })
}

/// Normalized cover computed from first principles (Definition 2.2).
fn npc_cover(g: &PreferenceGraph, selected: &[bool]) -> f64 {
    let mut c = 0.0;
    for v in g.node_ids() {
        if selected[v.index()] {
            c += g.node_weight(v);
        } else {
            let covered: f64 = g
                .out_edges(v)
                .filter(|(u, _)| selected[u.index()] && *u != v)
                .map(|(_, w)| w)
                .sum();
            c += g.node_weight(v) * covered;
        }
    }
    c
}

/// Raw material for a delta against an `n`-node graph: node index pairs
/// plus an op selector (`0` = remove, otherwise upsert at the drawn
/// weight) — indices reduced mod `n` by the consumer.
fn arb_delta_ops(n: usize) -> impl Strategy<Value = Vec<(usize, usize, Option<f64>)>> {
    proptest::collection::vec((0..n, 0..n, 0u8..4, 0.01f64..=1.0), 0..12).prop_map(|raw| {
        raw.into_iter()
            .map(|(s, t, op, w)| (s, t, (op != 0).then_some(w)))
            .collect()
    })
}

/// Builds a well-formed edge-only delta from `ops` against `g`, together
/// with its exact inverse. Tracks the evolving edge state so repeated
/// changes to the same edge invert correctly; removals of absent edges are
/// skipped (they would not validate).
fn edge_delta_with_inverse(
    g: &PreferenceGraph,
    ops: &[(usize, usize, Option<f64>)],
) -> (GraphDelta, GraphDelta) {
    let mut state: HashMap<(usize, usize), f64> = HashMap::new();
    for v in g.node_ids() {
        for (u, w) in g.out_edges(v) {
            state.insert((v.index(), u.index()), w);
        }
    }
    let n = g.node_count();
    let mut delta = GraphDelta::new();
    let mut inverse_changes: Vec<Change> = Vec::new();
    for &(s, t, op) in ops {
        let (s, t) = (s % n, t % n);
        if s == t {
            continue;
        }
        let (source, target) = (ItemId::from_index(s), ItemId::from_index(t));
        let old = state.get(&(s, t)).copied();
        match op {
            Some(weight) => {
                delta = delta.push(Change::UpsertEdge {
                    source,
                    target,
                    weight,
                });
                state.insert((s, t), weight);
                inverse_changes.push(match old {
                    Some(w) => Change::UpsertEdge {
                        source,
                        target,
                        weight: w,
                    },
                    None => Change::RemoveEdge { source, target },
                });
            }
            None => {
                let Some(w) = old else { continue };
                delta = delta.push(Change::RemoveEdge { source, target });
                state.remove(&(s, t));
                inverse_changes.push(Change::UpsertEdge {
                    source,
                    target,
                    weight: w,
                });
            }
        }
    }
    let mut inverse = GraphDelta::new();
    for change in inverse_changes.into_iter().rev() {
        inverse = inverse.push(change);
    }
    (delta, inverse)
}

/// A deterministic family of selections exercising the cover from several
/// angles: empty, full, alternating, and every singleton.
fn sample_selections(n: usize) -> Vec<Vec<bool>> {
    let mut sels = vec![
        vec![false; n],
        vec![true; n],
        (0..n).map(|i| i % 2 == 0).collect(),
    ];
    for i in 0..n {
        let mut s = vec![false; n];
        s[i] = true;
        sels.push(s);
    }
    sels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn delta_json_roundtrip_preserves_touched_nodes(
        g in arb_graph(12),
        ops in arb_delta_ops(12),
        reweight in (0u8..2, 0usize..12, 0.1f64..10.0),
        delist in (0u8..2, 0usize..12),
        add in (0u8..2, 0.1f64..10.0),
    ) {
        let n = g.node_count();
        let (mut delta, _) = edge_delta_with_inverse(&g, &ops);
        if reweight.0 == 1 {
            delta = delta.push(Change::SetNodeWeight {
                node: ItemId::from_index(reweight.1 % n),
                weight: reweight.2,
            });
        }
        if delist.0 == 1 {
            delta = delta.push(Change::Delist { node: ItemId::from_index(delist.1 % n) });
        }
        if add.0 == 1 {
            delta = delta.push(Change::AddNode { weight: add.1, label: None });
        }
        let s = delta.to_json_string().unwrap();
        let back = GraphDelta::from_json_str(&s).unwrap();
        prop_assert_eq!(back.touched_nodes(&g), delta.touched_nodes(&g));
        prop_assert_eq!(back.rescales_node_weights(), delta.rescales_node_weights());
    }

    #[test]
    fn edge_delta_then_inverse_restores_cover_values(
        g in arb_graph(12),
        ops in arb_delta_ops(12),
    ) {
        let (delta, inverse) = edge_delta_with_inverse(&g, &ops);
        let perturbed = apply(&g, &delta).unwrap();
        let restored = apply(&perturbed, &inverse).unwrap();
        // Edge-only deltas never renormalize: node weights survive bitwise…
        for v in g.node_ids() {
            prop_assert_eq!(
                restored.node_weight(v).to_bits(),
                g.node_weight(v).to_bits(),
                "node weight drifted through delta+inverse at {}", v
            );
        }
        // …and the restored edges give back the original cover values.
        for sel in sample_selections(g.node_count()) {
            let before = npc_cover(&g, &sel);
            let after = npc_cover(&restored, &sel);
            prop_assert!(
                (before - after).abs() < 1e-12,
                "cover drifted: {} vs {} for {:?}", before, after, sel
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn weights_always_normalized(g in arb_graph(12)) {
        prop_assert!((g.total_node_weight() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn json_roundtrip(g in arb_graph(12)) {
        let s = json::to_json_string(&g);
        let back = json::from_json_str(&s, &LoadOptions::default()).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn binary_roundtrip(g in arb_graph(12)) {
        let dir = std::env::temp_dir().join("pcover-prop-bin");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("g-{}.pcg", std::process::id()));
        binary::write_binary(&g, &path).unwrap();
        let back = binary::read_binary(&path, &LoadOptions::default()).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn csv_roundtrip(g in arb_graph(12)) {
        let dir = std::env::temp_dir()
            .join("pcover-prop-csv")
            .join(format!("{}", std::process::id()));
        csv::write_csv(&g, &dir).unwrap();
        let back = csv::read_csv(&dir, &LoadOptions::default()).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn double_reverse_is_identity(g in arb_graph(12)) {
        prop_assert_eq!(reverse(&reverse(&g)), g);
    }

    #[test]
    fn reverse_preserves_counts_and_swaps_degrees(g in arb_graph(12)) {
        let r = reverse(&g);
        prop_assert_eq!(r.node_count(), g.node_count());
        prop_assert_eq!(r.edge_count(), g.edge_count());
        for v in g.node_ids() {
            prop_assert_eq!(r.in_degree(v), g.out_degree(v));
            prop_assert_eq!(r.out_degree(v), g.in_degree(v));
        }
    }

    #[test]
    fn self_loop_completion_sums_to_one(g in arb_graph(12)) {
        let c = complete_with_self_loops(&g).unwrap();
        for v in c.node_ids() {
            let s = c.out_weight_sum(v);
            // Nodes whose out-sum already exceeded 1 get no loop and keep
            // their sum; everyone else is completed to exactly 1.
            if g.out_weight_sum(v) <= 1.0 {
                prop_assert!((s - 1.0).abs() < 1e-9, "node {} sum {}", v, s);
            }
        }
        // Cover-relevant structure unchanged: non-loop edges identical.
        for v in g.node_ids() {
            for (u, w) in g.out_edges(v) {
                prop_assert_eq!(c.edge_weight(v, u), Some(w));
            }
        }
    }

    #[test]
    fn npc_vck_reduction_preserves_cover(g in arb_graph(10)) {
        // Skip graphs violating the Normalized invariant; the reduction is
        // only defined for them.
        let normalized_ok = g.node_ids().all(|v| g.out_weight_sum(v) <= 1.0 + 1e-9);
        prop_assume!(normalized_ok);
        let inst = npc_to_vck(&g).unwrap();
        let n = g.node_count();
        // Exhaustively check all selections on small n, random ones beyond.
        if n <= 8 {
            for bits in 0u32..(1 << n) {
                let sel: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                let lhs = npc_cover(&g, &sel);
                let rhs = inst.cover_weight(&sel);
                prop_assert!((lhs - rhs).abs() < 1e-9, "bits {:b}: {} vs {}", bits, lhs, rhs);
            }
        }
    }

    #[test]
    fn vck_npc_roundtrip_preserves_scaled_cover(g in arb_graph(8)) {
        let normalized_ok = g.node_ids().all(|v| g.out_weight_sum(v) <= 1.0 + 1e-9);
        prop_assume!(normalized_ok);
        let inst = npc_to_vck(&g).unwrap();
        let (g2, n_const) = vck_to_npc(&inst).unwrap();
        let n = g.node_count();
        for bits in 0u32..(1 << n) {
            let sel: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let direct = inst.cover_weight(&sel);
            let via = npc_cover(&g2, &sel) * n_const;
            prop_assert!((direct - via).abs() < 1e-9, "bits {:b}: {} vs {}", bits, direct, via);
        }
    }

    #[test]
    fn subgraph_of_everything_is_identity_up_to_weights(g in arb_graph(12)) {
        let all: Vec<ItemId> = g.node_ids().collect();
        let sub = induced_subgraph(&g, &all).unwrap();
        prop_assert_eq!(sub.graph.node_count(), g.node_count());
        prop_assert_eq!(sub.graph.edge_count(), g.edge_count());
        for v in g.node_ids() {
            // Weights were already normalized, so they survive unchanged.
            prop_assert!((sub.graph.node_weight(v) - g.node_weight(v)).abs() < 1e-9);
        }
    }

    #[test]
    fn transitive_closure_monotone_in_depth(g in arb_graph(8)) {
        let t1 = transitive_closure(&g, 1, 1e-9, PathCombination::Independent).unwrap();
        let t3 = transitive_closure(&g, 3, 1e-9, PathCombination::Independent).unwrap();
        // Depth 1 equals the input edge set.
        prop_assert_eq!(t1.edge_count(), g.edge_count());
        // More depth can only add edges or increase weights.
        prop_assert!(t3.edge_count() >= t1.edge_count());
        for v in g.node_ids() {
            for (u, w1) in t1.out_edges(v) {
                let w3 = t3.edge_weight(v, u).expect("edge cannot disappear");
                prop_assert!(w3 >= w1 - 1e-12);
            }
        }
    }
}

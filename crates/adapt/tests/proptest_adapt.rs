//! Property tests for the Data Adaptation Engine and diagnostics on random
//! clickstreams.

use proptest::prelude::*;

use pcover_adapt::diagnostics::weighted_mean_pairwise_nmi;
use pcover_adapt::{adapt, AdaptOptions};
use pcover_clickstream::{Clickstream, Session};
use pcover_core::Variant;

/// Random single-purchase clickstreams over a small item universe.
fn arb_clickstream(max_sessions: usize) -> impl Strategy<Value = Clickstream> {
    proptest::collection::vec(
        (
            1u64..30,                                  // purchase
            proptest::collection::vec(1u64..30, 0..5), // clicks
        ),
        1..=max_sessions,
    )
    .prop_map(|raw| {
        Clickstream::new(
            raw.into_iter()
                .enumerate()
                .map(|(i, (purchase, mut clicks))| {
                    clicks.insert(0, purchase);
                    Session::new(i as u64 + 1, clicks, purchase)
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn node_weights_are_purchase_shares(cs in arb_clickstream(60)) {
        let adapted = adapt(&cs, &AdaptOptions::default()).unwrap();
        let counts = cs.item_purchase_counts();
        let total = cs.len() as f64;
        prop_assert!((adapted.graph.total_node_weight() - 1.0).abs() < 1e-9);
        for (&ext, &count) in &counts {
            let v = adapted.node_of(ext).unwrap();
            prop_assert!(
                (adapted.graph.node_weight(v) - count as f64 / total).abs() < 1e-12
            );
        }
    }

    #[test]
    fn normalized_adaptation_always_satisfies_invariant(cs in arb_clickstream(60)) {
        let adapted = adapt(
            &cs,
            &AdaptOptions {
                variant: Variant::Normalized,
                ..AdaptOptions::default()
            },
        )
        .unwrap();
        for v in adapted.graph.node_ids() {
            prop_assert!(adapted.graph.out_weight_sum(v) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn independent_weights_dominate_normalized(cs in arb_clickstream(60)) {
        // The 1/t split can only shrink edge mass, so for every edge the
        // Independent weight >= the Normalized weight.
        let ind = adapt(
            &cs,
            &AdaptOptions {
                variant: Variant::Independent,
                ..AdaptOptions::default()
            },
        )
        .unwrap();
        let nrm = adapt(
            &cs,
            &AdaptOptions {
                variant: Variant::Normalized,
                ..AdaptOptions::default()
            },
        )
        .unwrap();
        prop_assert_eq!(ind.graph.edge_count(), nrm.graph.edge_count());
        prop_assert_eq!(&ind.external_ids, &nrm.external_ids);
        for e in ind.graph.edges() {
            let w_nrm = nrm.graph.edge_weight(e.source, e.target).unwrap();
            prop_assert!(e.weight >= w_nrm - 1e-12);
        }
    }

    #[test]
    fn edge_weights_in_domain_and_supported(cs in arb_clickstream(60)) {
        let adapted = adapt(&cs, &AdaptOptions::default()).unwrap();
        for e in adapted.graph.edges() {
            prop_assert!(e.weight > 0.0 && e.weight <= 1.0);
            prop_assert!(e.source != e.target, "self-loop emitted");
            // Source must have been purchased at least once.
            prop_assert!(adapted.graph.node_weight(e.source) > 0.0);
        }
    }

    #[test]
    fn min_edge_support_only_removes_edges(cs in arb_clickstream(60), support in 1u64..4) {
        let all = adapt(&cs, &AdaptOptions::default()).unwrap();
        let filtered = adapt(
            &cs,
            &AdaptOptions {
                min_edge_support: support,
                ..AdaptOptions::default()
            },
        )
        .unwrap();
        prop_assert!(filtered.graph.edge_count() <= all.graph.edge_count());
        // Every surviving edge keeps its exact weight.
        for e in filtered.graph.edges() {
            prop_assert_eq!(all.graph.edge_weight(e.source, e.target), Some(e.weight));
        }
        prop_assert_eq!(
            filtered.report.edges + filtered.report.edges_dropped_by_support,
            all.report.edges
        );
    }

    #[test]
    fn nmi_is_in_unit_range(cs in arb_clickstream(60)) {
        if let Some(nmi) = weighted_mean_pairwise_nmi(&cs, 10, 1) {
            prop_assert!((0.0..=1.0).contains(&nmi), "NMI {} out of range", nmi);
        }
    }

    #[test]
    fn adaptation_is_deterministic(cs in arb_clickstream(40)) {
        let a = adapt(&cs, &AdaptOptions::default()).unwrap();
        let b = adapt(&cs, &AdaptOptions::default()).unwrap();
        prop_assert_eq!(a.graph, b.graph);
        prop_assert_eq!(a.external_ids, b.external_ids);
    }
}

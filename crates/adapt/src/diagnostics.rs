//! Variant-selection diagnostics (Section 5.2).
//!
//! Two rules decide which edge-dependency model fits a dataset:
//!
//! * **Normalized rule** — at least 90% of sessions click at most one
//!   alternative.
//! * **Independence rule** — the popularity-weighted average, over desired
//!   items, of the mean pairwise *normalized mutual information* between
//!   the click indicators of the item's alternatives is below 0.1.
//!
//! NMI follows Strehl & Ghosh: `I(X; Y) / sqrt(H(X) · H(Y))`, with the
//! convention that a constant indicator (zero entropy) contributes 0 —
//! a variable with no variation demonstrates no dependence.

// lint: allow-file(no-index) — indices come from ItemId::index() against arrays sized to the
// graph's node_count, in bounds by construction.
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pcover_clickstream::{Clickstream, ExternalItemId};
use pcover_core::Variant;

/// Thresholds for [`diagnose`], defaulting to the paper's.
#[derive(Clone, Copy, Debug)]
pub struct DiagnosticThresholds {
    /// Minimum fraction of ≤1-alternative sessions for the Normalized
    /// variant (paper: 0.9).
    pub single_alt_fraction: f64,
    /// Maximum weighted mean NMI for the Independent variant (paper: 0.1).
    pub max_nmi: f64,
    /// Consider at most this many of an item's most-clicked alternatives
    /// when forming pairs (bounds the `O(alternatives²)` pair count; 10
    /// covers everything the affinity tail contributes).
    pub max_alternatives_per_item: usize,
    /// Only include items with at least this many purchase sessions in the
    /// NMI average. Sample mutual information has an upward finite-sample
    /// bias of order `1/(2N)` per degree of freedom, so items observed a
    /// handful of times read as spuriously dependent; the paper's weighting
    /// by popularity addresses the same concern.
    pub min_sessions_per_item: usize,
}

impl Default for DiagnosticThresholds {
    fn default() -> Self {
        DiagnosticThresholds {
            single_alt_fraction: 0.9,
            max_nmi: 0.1,
            max_alternatives_per_item: 10,
            min_sessions_per_item: 20,
        }
    }
}

/// The verdict of [`diagnose`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Recommendation {
    /// ≥ 90% of sessions have at most one alternative.
    Normalized,
    /// Dependence measure below threshold.
    Independent,
    /// Neither rule fires; the paper's two models do not cleanly apply.
    Unclear,
}

impl Recommendation {
    /// The [`Variant`] to use, if the data fits one.
    pub fn variant(self) -> Option<Variant> {
        match self {
            Recommendation::Normalized => Some(Variant::Normalized),
            Recommendation::Independent => Some(Variant::Independent),
            Recommendation::Unclear => None,
        }
    }
}

/// Full diagnostic output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Fraction of sessions with ≤ 1 distinct clicked alternative.
    pub single_alt_fraction: f64,
    /// Popularity-weighted mean pairwise NMI between alternative clicks
    /// (`None` when no item has two alternatives to pair).
    pub weighted_mean_nmi: Option<f64>,
    /// The verdict.
    pub recommendation: Recommendation,
}

/// Runs both variant-selection rules on a clickstream.
pub fn diagnose(cs: &Clickstream, thresholds: &DiagnosticThresholds) -> Diagnosis {
    let stats = cs.stats();
    let single_alt_fraction = stats.at_most_one_alternative_fraction;
    let weighted_mean_nmi = weighted_mean_pairwise_nmi(
        cs,
        thresholds.max_alternatives_per_item,
        thresholds.min_sessions_per_item,
    );

    let recommendation = if single_alt_fraction >= thresholds.single_alt_fraction {
        Recommendation::Normalized
    } else if weighted_mean_nmi.unwrap_or(0.0) < thresholds.max_nmi {
        Recommendation::Independent
    } else {
        Recommendation::Unclear
    };

    Diagnosis {
        single_alt_fraction,
        weighted_mean_nmi,
        recommendation,
    }
}

/// The paper's dependence measure: for every desired (purchased) item with
/// at least `min_sessions` observations, the mean NMI over pairs of its top
/// alternatives; averaged over items weighted by purchase counts. `None`
/// if no qualifying item has ≥ 2 alternatives.
pub fn weighted_mean_pairwise_nmi(
    cs: &Clickstream,
    max_alternatives: usize,
    min_sessions: usize,
) -> Option<f64> {
    // Group sessions by purchased item.
    let mut by_item: HashMap<ExternalItemId, Vec<Vec<ExternalItemId>>> = HashMap::new();
    for s in &cs.sessions {
        by_item
            .entry(s.purchase)
            .or_default()
            .push(s.alternatives());
    }

    let mut weighted_sum = 0.0f64;
    let mut weight_total = 0.0f64;
    for (_, sessions) in by_item {
        let n = sessions.len();
        if n < min_sessions {
            continue;
        }
        // Click counts per alternative of this item.
        let mut counts: HashMap<ExternalItemId, usize> = HashMap::new();
        for alts in &sessions {
            for &a in alts {
                *counts.entry(a).or_insert(0) += 1;
            }
        }
        if counts.len() < 2 {
            continue;
        }
        // Top alternatives by click count (ties by id for determinism).
        let mut ranked: Vec<(ExternalItemId, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(max_alternatives);

        let mut pair_sum = 0.0f64;
        let mut pairs = 0usize;
        for i in 0..ranked.len() {
            for j in (i + 1)..ranked.len() {
                pair_sum += pair_nmi(&sessions, ranked[i].0, ranked[j].0, n);
                pairs += 1;
            }
        }
        if pairs > 0 {
            weighted_sum += (pair_sum / pairs as f64) * n as f64;
            weight_total += n as f64;
        }
    }
    if weight_total > 0.0 {
        Some(weighted_sum / weight_total)
    } else {
        None
    }
}

/// NMI between the indicator variables "clicked `b`" and "clicked `c`"
/// over an item's sessions.
fn pair_nmi(
    sessions: &[Vec<ExternalItemId>],
    b: ExternalItemId,
    c: ExternalItemId,
    n: usize,
) -> f64 {
    let mut joint = [[0usize; 2]; 2];
    for alts in sessions {
        let x = usize::from(alts.contains(&b));
        let y = usize::from(alts.contains(&c));
        joint[x][y] += 1;
    }
    let n = n as f64;
    let px = [
        (joint[0][0] + joint[0][1]) as f64 / n,
        (joint[1][0] + joint[1][1]) as f64 / n,
    ];
    let py = [
        (joint[0][0] + joint[1][0]) as f64 / n,
        (joint[0][1] + joint[1][1]) as f64 / n,
    ];
    let hx = entropy2(px);
    let hy = entropy2(py);
    if hx == 0.0 || hy == 0.0 {
        return 0.0;
    }
    let mut mi = 0.0;
    for x in 0..2 {
        for y in 0..2 {
            let pxy = joint[x][y] as f64 / n;
            if pxy > 0.0 {
                mi += pxy * (pxy / (px[x] * py[y])).ln();
            }
        }
    }
    // Clamp numeric dust; MI is nonnegative and bounded by sqrt(HxHy) for
    // indicator variables under this normalization.
    (mi / (hx * hy).sqrt()).clamp(0.0, 1.0)
}

fn entropy2(p: [f64; 2]) -> f64 {
    let mut h = 0.0;
    for &q in &p {
        if q > 0.0 {
            h -= q * q.ln();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use pcover_clickstream::Session;
    use pcover_datagen::behavior::BehaviorModel;
    use pcover_datagen::catalog::CatalogConfig;
    use pcover_datagen::sessions::{generate_clickstream, SessionConfig};

    use super::*;

    fn gen(behavior: BehaviorModel, seed: u64) -> Clickstream {
        generate_clickstream(
            &CatalogConfig {
                items: 300,
                ..CatalogConfig::default()
            },
            &SessionConfig {
                sessions: 20_000,
                behavior,
                seed,
            },
        )
        .1
    }

    #[test]
    fn independent_data_diagnosed_independent() {
        let cs = gen(BehaviorModel::independent_default(), 1);
        let d = diagnose(&cs, &DiagnosticThresholds::default());
        assert_eq!(d.recommendation, Recommendation::Independent);
        assert!(d.single_alt_fraction < 0.9);
        let nmi = d.weighted_mean_nmi.unwrap();
        assert!(nmi < 0.1, "NMI {nmi} should be below the paper threshold");
    }

    #[test]
    fn single_alternative_data_diagnosed_normalized() {
        let cs = gen(BehaviorModel::single_alternative_default(), 2);
        let d = diagnose(&cs, &DiagnosticThresholds::default());
        assert_eq!(d.recommendation, Recommendation::Normalized);
        assert!(d.single_alt_fraction >= 0.9);
        assert_eq!(d.recommendation.variant(), Some(Variant::Normalized));
    }

    #[test]
    fn perfectly_dependent_clicks_yield_high_nmi() {
        // Every session for item 1 clicks alternatives 2 and 3 together or
        // neither: X == Y, NMI = 1.
        let mut sessions = Vec::new();
        for i in 0..50 {
            sessions.push(Session::new(i, vec![1, 2, 3], 1));
        }
        for i in 50..100 {
            sessions.push(Session::new(i, vec![1], 1));
        }
        let cs = Clickstream::new(sessions);
        let nmi = weighted_mean_pairwise_nmi(&cs, 10, 1).unwrap();
        assert!((nmi - 1.0).abs() < 1e-9, "NMI {nmi}");
        // And the verdict is Unclear: too many multi-alt sessions for
        // Normalized, too dependent for Independent.
        let d = diagnose(&cs, &DiagnosticThresholds::default());
        assert_eq!(d.recommendation, Recommendation::Unclear);
        assert_eq!(d.recommendation.variant(), None);
    }

    #[test]
    fn perfectly_independent_clicks_yield_low_nmi() {
        // Click 2 in a 50% stripe and 3 in an interleaved 50% stripe:
        // jointly independent by construction.
        let mut sessions = Vec::new();
        for i in 0..200u64 {
            let mut clicks = vec![1];
            if i % 2 == 0 {
                clicks.push(2);
            }
            if (i / 2) % 2 == 0 {
                clicks.push(3);
            }
            sessions.push(Session::new(i, clicks, 1));
        }
        let cs = Clickstream::new(sessions);
        let nmi = weighted_mean_pairwise_nmi(&cs, 10, 1).unwrap();
        assert!(nmi < 1e-9, "NMI {nmi}");
    }

    #[test]
    fn constant_indicators_contribute_zero() {
        // Alternative 2 is clicked in *every* session: H(X) = 0.
        let sessions = (0..40)
            .map(|i| Session::new(i, vec![1, 2, if i % 2 == 0 { 3 } else { 4 }], 1))
            .collect();
        let cs = Clickstream::new(sessions);
        let nmi = weighted_mean_pairwise_nmi(&cs, 10, 1).unwrap();
        // Pairs involving the constant alternative contribute 0; the
        // (3, 4) pair is perfectly anti-dependent... which IS dependence,
        // so the average is strictly between 0 and 1.
        assert!(nmi > 0.0 && nmi < 1.0);
    }

    #[test]
    fn no_pairs_means_no_nmi() {
        let cs = Clickstream::new(vec![Session::new(1, vec![1, 2], 1)]);
        assert_eq!(weighted_mean_pairwise_nmi(&cs, 10, 1), None);
        let d = diagnose(&cs, &DiagnosticThresholds::default());
        // Single session with one alternative: Normalized rule fires.
        assert_eq!(d.recommendation, Recommendation::Normalized);
    }
}

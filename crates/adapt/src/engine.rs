//! Clickstream → preference graph construction.

// lint: allow-file(no-index) — indices come from ItemId::index() against arrays sized to the
// graph's node_count, in bounds by construction.
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pcover_clickstream::{Clickstream, ExternalItemId};
use pcover_core::{SolveCtx, SolveError, SolveReport, SolverSpec, Variant};
use pcover_graph::{GraphBuilder, GraphError, ItemId, PreferenceGraph};

/// Options for [`adapt`].
#[derive(Clone, Copy, Debug)]
pub struct AdaptOptions {
    /// Which variant's counting rule to apply. The Independent rule counts
    /// each clicked alternative fully; the Normalized rule counts a session
    /// with `t` alternatives as `1/t` per alternative, bounding out-sums
    /// by 1.
    pub variant: Variant,
    /// Attach the external item id (decimal) as the node label. Costs
    /// memory on multi-million-item graphs; invaluable everywhere else.
    pub label_nodes: bool,
    /// Drop edges supported by fewer than this many raw co-occurrence
    /// sessions (noise floor; 1 keeps everything, as the paper does —
    /// rarely-clicked items have negligible node weight anyway).
    pub min_edge_support: u64,
}

impl Default for AdaptOptions {
    fn default() -> Self {
        AdaptOptions {
            variant: Variant::Independent,
            label_nodes: true,
            min_edge_support: 1,
        }
    }
}

/// Construction metadata returned alongside the graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdaptReport {
    /// The variant rule used.
    pub variant: Variant,
    /// Sessions consumed.
    pub sessions: usize,
    /// Items (nodes) in the graph.
    pub items: usize,
    /// Items that were clicked but never purchased (their node weight
    /// is 0; they can still serve as retained alternatives).
    pub never_purchased_items: usize,
    /// Edges emitted.
    pub edges: usize,
    /// Edges dropped by the `min_edge_support` floor.
    pub edges_dropped_by_support: usize,
}

/// The result of adaptation: the graph plus the id mapping and metadata.
#[derive(Clone, Debug)]
pub struct Adapted {
    /// The preference graph; for `Variant::Normalized` it satisfies the
    /// out-sum ≤ 1 invariant by construction.
    pub graph: PreferenceGraph,
    /// `external_ids[v.index()]` is the platform id of node `v`.
    pub external_ids: Vec<ExternalItemId>,
    /// Construction metadata.
    pub report: AdaptReport,
}

impl Adapted {
    /// Looks up the dense node id of a platform item id (`O(log n)`).
    pub fn node_of(&self, external: ExternalItemId) -> Option<ItemId> {
        self.external_ids
            .binary_search(&external)
            .ok()
            .map(ItemId::from_index)
    }

    /// Solves the adapted graph with a registry solver under the variant
    /// this graph was built for — the end-to-end Figure 2 path
    /// (clickstream → graph → retained set) in one call.
    ///
    /// # Errors
    ///
    /// Propagates the solver's [`SolveError`], including
    /// [`SolveError::UnsupportedVariant`] when the spec cannot run under
    /// the adaptation variant.
    pub fn solve(
        &self,
        spec: &SolverSpec,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        spec.solve(self.report.variant, &self.graph, k, ctx)
    }
}

/// Runs the Data Adaptation Engine on a (single-purchase) clickstream.
///
/// # Errors
///
/// Fails with [`GraphError::EmptyGraph`] on an empty clickstream, and
/// propagates builder validation failures (which would indicate a bug in
/// the counting rules rather than bad input).
pub fn adapt(cs: &Clickstream, opts: &AdaptOptions) -> Result<Adapted, GraphError> {
    if cs.is_empty() {
        return Err(GraphError::EmptyGraph);
    }

    // Dense ids sorted by external id: deterministic and binary-searchable.
    let mut external_ids: Vec<ExternalItemId> = cs.item_purchase_counts().into_keys().collect();
    external_ids.sort_unstable();
    if external_ids.len() > u32::MAX as usize {
        return Err(GraphError::CapacityExceeded {
            what: "more than u32::MAX distinct items",
        });
    }
    let index: HashMap<ExternalItemId, u32> = external_ids
        .iter()
        .enumerate()
        .map(|(i, &e)| (e, i as u32))
        .collect();

    // Counting pass.
    let n = external_ids.len();
    let mut purchase_counts = vec![0u64; n];
    // (source, target) -> (fractional click mass, raw support count)
    let mut edge_mass: HashMap<(u32, u32), (f64, u64)> = HashMap::new();
    for s in &cs.sessions {
        let a = index[&s.purchase];
        purchase_counts[a as usize] += 1;
        let alts = s.alternatives();
        if alts.is_empty() {
            continue;
        }
        let mass = match opts.variant {
            Variant::Independent => 1.0,
            Variant::Normalized => 1.0 / alts.len() as f64,
        };
        for alt in alts {
            let b = index[&alt];
            let entry = edge_mass.entry((a, b)).or_insert((0.0, 0));
            entry.0 += mass;
            entry.1 += 1;
        }
    }

    // Emission pass.
    let total_sessions = cs.len() as f64;
    let mut builder = GraphBuilder::with_capacity(n, edge_mass.len());
    for (i, &ext) in external_ids.iter().enumerate() {
        let w = purchase_counts[i] as f64 / total_sessions;
        if opts.label_nodes {
            builder.add_node_labeled(w, ext.to_string());
        } else {
            builder.add_node(w);
        }
    }
    let mut edges: Vec<((u32, u32), (f64, u64))> = edge_mass.into_iter().collect();
    edges.sort_unstable_by_key(|&(key, _)| key);
    let mut emitted = 0usize;
    let mut dropped = 0usize;
    for ((a, b), (mass, support)) in edges {
        if support < opts.min_edge_support {
            dropped += 1;
            continue;
        }
        let weight = (mass / purchase_counts[a as usize] as f64).min(1.0);
        builder.add_edge(ItemId::new(a), ItemId::new(b), weight)?;
        emitted += 1;
    }

    let graph = match opts.variant {
        Variant::Normalized => builder.build_normalized()?,
        Variant::Independent => builder.build()?,
    };
    let never_purchased = purchase_counts.iter().filter(|&&c| c == 0).count();

    Ok(Adapted {
        graph,
        report: AdaptReport {
            variant: opts.variant,
            sessions: cs.len(),
            items: n,
            never_purchased_items: never_purchased,
            edges: emitted,
            edges_dropped_by_support: dropped,
        },
        external_ids,
    })
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use pcover_clickstream::Session;
    use pcover_graph::examples::figure3;

    use super::*;

    /// The exact five sessions of Figure 3a (items: 1 = Silver, 2 = Gold,
    /// 3 = Space Gray).
    fn figure3_sessions() -> Clickstream {
        Clickstream::new(vec![
            // 2 purchases of Space Gray: one clean, one clicking Silver.
            Session::new(1, vec![3], 3),
            Session::new(2, vec![3, 1], 3),
            // 2 purchases of Silver: one clicks Gold, one clicks Space Gray.
            Session::new(3, vec![1, 2], 1),
            Session::new(4, vec![1, 3], 1),
            // 1 purchase of Gold, clicking Space Gray.
            Session::new(5, vec![2, 3], 2),
        ])
    }

    #[test]
    fn figure3_graph_reconstructed_exactly() {
        let cs = figure3_sessions();
        let adapted = adapt(
            &cs,
            &AdaptOptions {
                variant: Variant::Normalized,
                ..AdaptOptions::default()
            },
        )
        .unwrap();
        let g = &adapted.graph;
        let silver = adapted.node_of(1).unwrap();
        let gold = adapted.node_of(2).unwrap();
        let gray = adapted.node_of(3).unwrap();

        // Node weights 0.4 / 0.2 / 0.4 (Figure 3b).
        assert!((g.node_weight(silver) - 0.4).abs() < 1e-12);
        assert!((g.node_weight(gold) - 0.2).abs() < 1e-12);
        assert!((g.node_weight(gray) - 0.4).abs() < 1e-12);

        // Edges: Silver→Gold 1/2, Silver→Gray 1/2, Gray→Silver 1/2,
        // Gold→Gray 1.
        assert_eq!(g.edge_weight(silver, gold), Some(0.5));
        assert_eq!(g.edge_weight(silver, gray), Some(0.5));
        assert_eq!(g.edge_weight(gray, silver), Some(0.5));
        assert_eq!(g.edge_weight(gold, gray), Some(1.0));
        assert_eq!(g.edge_count(), 4);

        // And it matches the hand-built Figure 3 graph up to labels.
        let expected = figure3();
        for v in expected.node_ids() {
            assert!((g.node_weight(v) - expected.node_weight(v)).abs() < 1e-12);
        }
    }

    #[test]
    fn independent_and_normalized_agree_when_sessions_have_one_alt() {
        // Every Figure 3 session clicks at most one alternative, so the
        // 1/t rule never fires and both variants build the same graph.
        let cs = figure3_sessions();
        let ind = adapt(
            &cs,
            &AdaptOptions {
                variant: Variant::Independent,
                ..AdaptOptions::default()
            },
        )
        .unwrap();
        let nrm = adapt(
            &cs,
            &AdaptOptions {
                variant: Variant::Normalized,
                ..AdaptOptions::default()
            },
        )
        .unwrap();
        assert_eq!(ind.graph, nrm.graph);
    }

    #[test]
    fn normalized_rule_splits_multi_alt_sessions() {
        // One session purchasing 1 clicks both 2 and 3: Normalized gives
        // each edge 1/2, Independent gives each 1.
        let cs = Clickstream::new(vec![Session::new(1, vec![1, 2, 3], 1)]);
        let nrm = adapt(
            &cs,
            &AdaptOptions {
                variant: Variant::Normalized,
                ..AdaptOptions::default()
            },
        )
        .unwrap();
        let one = nrm.node_of(1).unwrap();
        let two = nrm.node_of(2).unwrap();
        let three = nrm.node_of(3).unwrap();
        assert_eq!(nrm.graph.edge_weight(one, two), Some(0.5));
        assert_eq!(nrm.graph.edge_weight(one, three), Some(0.5));
        assert!((nrm.graph.out_weight_sum(one) - 1.0).abs() < 1e-12);

        let ind = adapt(
            &cs,
            &AdaptOptions {
                variant: Variant::Independent,
                ..AdaptOptions::default()
            },
        )
        .unwrap();
        let one = ind.node_of(1).unwrap();
        let two = ind.node_of(2).unwrap();
        assert_eq!(ind.graph.edge_weight(one, two), Some(1.0));
    }

    #[test]
    fn normalized_out_sums_bounded_on_any_input() {
        // Mixed multi-alt sessions; build_normalized would reject any
        // violation, so success is the assertion.
        let cs = Clickstream::new(vec![
            Session::new(1, vec![1, 2, 3, 4], 1),
            Session::new(2, vec![1, 2], 1),
            Session::new(3, vec![1, 5], 1),
            Session::new(4, vec![2, 1], 2),
        ]);
        let adapted = adapt(
            &cs,
            &AdaptOptions {
                variant: Variant::Normalized,
                ..AdaptOptions::default()
            },
        )
        .unwrap();
        for v in adapted.graph.node_ids() {
            assert!(adapted.graph.out_weight_sum(v) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn clicked_only_items_become_zero_weight_nodes() {
        let cs = Clickstream::new(vec![Session::new(1, vec![1, 99], 1)]);
        let adapted = adapt(&cs, &AdaptOptions::default()).unwrap();
        assert_eq!(adapted.report.items, 2);
        assert_eq!(adapted.report.never_purchased_items, 1);
        let ninety_nine = adapted.node_of(99).unwrap();
        assert_eq!(adapted.graph.node_weight(ninety_nine), 0.0);
        // The zero-weight node still receives the edge.
        let one = adapted.node_of(1).unwrap();
        assert_eq!(adapted.graph.edge_weight(one, ninety_nine), Some(1.0));
    }

    #[test]
    fn min_edge_support_drops_rare_edges() {
        let mut sessions = vec![Session::new(1, vec![1, 50], 1)];
        for i in 0..10 {
            sessions.push(Session::new(2 + i, vec![1, 2], 1));
        }
        let cs = Clickstream::new(sessions);
        let adapted = adapt(
            &cs,
            &AdaptOptions {
                min_edge_support: 2,
                ..AdaptOptions::default()
            },
        )
        .unwrap();
        assert_eq!(adapted.report.edges, 1);
        assert_eq!(adapted.report.edges_dropped_by_support, 1);
        let one = adapted.node_of(1).unwrap();
        let fifty = adapted.node_of(50).unwrap();
        assert_eq!(adapted.graph.edge_weight(one, fifty), None);
    }

    #[test]
    fn labels_carry_external_ids() {
        let cs = Clickstream::new(vec![Session::new(1, vec![777, 888], 777)]);
        let adapted = adapt(&cs, &AdaptOptions::default()).unwrap();
        let node = adapted.node_of(777).unwrap();
        assert_eq!(adapted.graph.label(node), Some("777"));

        let unlabeled = adapt(
            &cs,
            &AdaptOptions {
                label_nodes: false,
                ..AdaptOptions::default()
            },
        )
        .unwrap();
        assert!(!unlabeled.graph.has_labels());
    }

    #[test]
    fn empty_clickstream_rejected() {
        assert!(adapt(&Clickstream::default(), &AdaptOptions::default()).is_err());
    }

    #[test]
    fn adapted_solve_routes_through_the_registry() {
        use pcover_core::{Registry, SolveCtx, SolverConfig};

        let cs = figure3_sessions();
        let adapted = adapt(
            &cs,
            &AdaptOptions {
                variant: Variant::Normalized,
                ..AdaptOptions::default()
            },
        )
        .unwrap();
        let registry = Registry::builtin();
        let spec = registry.get("greedy").unwrap();
        let mut ctx = SolveCtx::new(SolverConfig::default());
        let report = adapted.solve(spec, 2, &mut ctx).unwrap();
        assert_eq!(report.k(), 2);
        assert_eq!(report.variant, Variant::Normalized);
        assert!(report.cover > 0.0);

        // A Normalized-only solver works here because the graph was built
        // under the Normalized rule...
        let maxvc = registry.get("maxvc").unwrap();
        let vc = adapted.solve(maxvc, 2, &mut ctx).unwrap();
        assert!((vc.cover - report.cover).abs() < 1e-9);

        // ...and an Independent-built graph reports the mismatch.
        let ind = adapt(&cs, &AdaptOptions::default()).unwrap();
        assert!(matches!(
            ind.solve(maxvc, 2, &mut ctx),
            Err(SolveError::UnsupportedVariant { .. })
        ));
    }

    #[test]
    fn node_of_unknown_item_is_none() {
        let cs = Clickstream::new(vec![Session::new(1, vec![], 5)]);
        let adapted = adapt(&cs, &AdaptOptions::default()).unwrap();
        assert!(adapted.node_of(6).is_none());
        assert!(adapted.node_of(5).is_some());
    }
}

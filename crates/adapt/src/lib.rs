//! # pcover-adapt
//!
//! The **Data Adaptation Engine** of the Preference Cover system
//! (Section 5.2 and Figure 2 of the EDBT 2020 paper): turns raw clickstream
//! sessions into a preference graph, and diagnoses which problem variant
//! (Independent or Normalized) fits a dataset.
//!
//! ## Graph construction (paper rules)
//!
//! * One node per item; node weight = the item's share of purchases.
//! * An edge `A → B` exists iff some session purchased `A` and clicked `B`;
//!   its weight is the fraction of `A`-purchasing sessions that clicked `B`.
//! * For the Normalized variant, a session with `t > 1` clicked
//!   alternatives counts each as a `1/t` fraction of a click, which makes
//!   every node's out-weight sum ≤ 1 by construction.
//!
//! Note the deliberate direction: edges go from the *purchased* item to the
//! *clicked* ones — in a fully-stocked store the purchase reveals the true
//! request, and clicks reveal acceptable alternatives (see the discussion
//! in Section 5.2 of why the reverse orientation is wrong).
//!
//! ## Variant selection (paper rules)
//!
//! * If ≥ 90% of sessions click at most one alternative → **Normalized**.
//! * Else, if the popularity-weighted mean pairwise normalized mutual
//!   information between alternative-click indicators is < 0.1 →
//!   **Independent**.
//! * Otherwise the data fits neither dependency scheme cleanly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;

pub mod diagnostics;

pub use engine::{adapt, AdaptOptions, AdaptReport, Adapted};

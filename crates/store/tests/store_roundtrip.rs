//! End-to-end container tests: round-trips over both load paths, a
//! corrupt-input table (every malformed file yields a typed error, never a
//! panic), streaming-vs-whole-graph byte identity, and property-based
//! round-trip / mutation fuzzing.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use pcover_graph::examples::figure1;
use pcover_graph::{DuplicateEdgePolicy, GraphBuilder, ItemId, PreferenceGraph};
use pcover_store::{
    is_container, probe, read_graph, read_graph_auto, verify, write_graph, OpenMode, StoreError,
    StreamingWriter, VariantHint, WriteOptions,
};

/// A unique scratch file path under a per-process temp directory.
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("pcover-store-test-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!(
        "{tag}-{}.pcov",
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Every open mode this build can serve.
fn supported_modes() -> Vec<OpenMode> {
    let mut modes = vec![OpenMode::Pread, OpenMode::Auto];
    let path = scratch("mode-probe");
    write_graph(&figure1(), &path, WriteOptions::default()).expect("write probe container");
    if probe(&path).expect("probe").mmap_supported {
        modes.push(OpenMode::Mmap);
    }
    fs::remove_file(&path).ok();
    modes
}

#[test]
fn labeled_graph_round_trips_on_every_path() {
    let g = figure1();
    let path = scratch("figure1");
    let summary = write_graph(
        &g,
        &path,
        WriteOptions {
            variant: VariantHint::Normalized,
        },
    )
    .expect("write");
    assert_eq!(summary.nodes, 5);
    assert_eq!(summary.edges, 4);
    assert_eq!(summary.bytes, fs::metadata(&path).expect("metadata").len());
    assert!(is_container(&path).expect("is_container"));

    for mode in supported_modes() {
        let (loaded, load_path) = read_graph(&path, mode).expect("read");
        assert_eq!(loaded, g, "mode {mode:?} ({})", load_path.name());
        assert_eq!(
            loaded.is_externally_backed(),
            load_path.name() == "mmap",
            "backing for {mode:?}"
        );
        assert_eq!(loaded.labels().map(|l| l.len()), Some(5));
    }

    let info = verify(&path).expect("verify");
    assert_eq!(info.node_count, 5);
    assert_eq!(info.edge_count, 4);
    assert_eq!(info.variant, VariantHint::Normalized);
    assert!(info.has_labels);
    assert_eq!(info.sections.len(), 8);
}

#[test]
fn read_graph_auto_accepts_container_and_json() {
    let g = figure1();
    let container = scratch("auto");
    write_graph(&g, &container, WriteOptions::default()).expect("write container");
    let (from_container, how) = read_graph_auto(&container, OpenMode::Pread).expect("container");
    assert_eq!(how, "pread");
    assert_eq!(from_container, g);

    let json = scratch("auto-json");
    pcover_graph::io::json::write_json(&g, &json).expect("write json");
    assert!(!is_container(&json).expect("is_container"));
    let (from_json, how) = read_graph_auto(&json, OpenMode::Auto).expect("json");
    assert_eq!(how, "json");
    assert_eq!(from_json, g);

    let missing = scratch("auto-missing");
    assert!(matches!(
        read_graph_auto(&missing, OpenMode::Auto),
        Err(StoreError::Io(_))
    ));
}

/// The corrupt-input table: `(name, mutate, check)` triples applied to a
/// fresh valid container. Every load path must return the expected typed
/// error — and must never panic.
#[test]
fn corrupt_containers_fail_with_typed_errors() {
    type Check = fn(&StoreError) -> bool;
    type Mutate = fn(&mut Vec<u8>);
    let cases: &[(&str, Mutate, Check)] = &[
        (
            "empty",
            |b| b.clear(),
            |e| matches!(e, StoreError::Truncated { .. }),
        ),
        (
            "truncated-header",
            |b| b.truncate(10),
            |e| matches!(e, StoreError::Truncated { .. }),
        ),
        (
            "truncated-tail",
            |b| {
                let keep = b.len() - 5;
                b.truncate(keep);
            },
            |e| matches!(e, StoreError::Truncated { .. }),
        ),
        (
            "bad-magic",
            |b| b[0] = b'X',
            |e| matches!(e, StoreError::BadMagic { .. }),
        ),
        (
            "future-version",
            |b| b[8] = 99,
            |e| matches!(e, StoreError::UnsupportedVersion { found: 99, .. }),
        ),
        (
            "flipped-node-count",
            |b| b[16] ^= 0xff,
            |e| matches!(e, StoreError::ChecksumMismatch { section: 0, .. }),
        ),
        (
            "flipped-section-table",
            |b| b[60] ^= 0x01,
            |e| matches!(e, StoreError::ChecksumMismatch { section: 0, .. }),
        ),
        (
            "flipped-first-payload-byte",
            // Sections start at the first 64-byte boundary past the table;
            // with 8 sections that is offset 320 (node weights).
            |b| b[320] ^= 0x01,
            |e| matches!(e, StoreError::ChecksumMismatch { section: 1, .. }),
        ),
        (
            "flipped-last-payload-byte",
            |b| {
                let last = b.len() - 1;
                b[last] ^= 0x80;
            },
            |e| matches!(e, StoreError::ChecksumMismatch { .. }),
        ),
    ];

    let pristine = {
        let path = scratch("pristine");
        write_graph(&figure1(), &path, WriteOptions::default()).expect("write");
        let bytes = fs::read(&path).expect("read back");
        fs::remove_file(&path).ok();
        bytes
    };

    for (name, mutate, check) in cases {
        let mut bytes = pristine.clone();
        mutate(&mut bytes);
        let path = scratch(name);
        fs::write(&path, &bytes).expect("write corrupt file");
        for mode in supported_modes() {
            let err = read_graph(&path, mode).expect_err(name);
            assert!(check(&err), "{name} under {mode:?}: got {err}");
            // The error must render without panicking.
            let _ = err.to_string();
        }
        // verify() must agree for payload-level corruption too.
        assert!(verify(&path).is_err(), "{name}: verify accepted it");
    }
}

#[test]
fn streaming_writer_matches_write_graph_byte_for_byte() {
    // Unlabeled graph (streaming path does not carry labels).
    let mut b = GraphBuilder::new().normalize_node_weights(true);
    let ids: Vec<ItemId> = (0..6).map(|i| b.add_node(1.0 + i as f64)).collect();
    let rows: Vec<Vec<(u32, f64)>> = vec![
        vec![(1, 0.5), (3, 0.25)],
        vec![(0, 0.9)],
        vec![],
        vec![(0, 0.125), (4, 0.75), (5, 0.0625)],
        vec![(3, 1.0)],
        vec![],
    ];
    for (s, row) in rows.iter().enumerate() {
        for &(t, w) in row {
            b.add_edge(ids[s], ids[t as usize], w).expect("edge");
        }
    }
    let g = b.build().expect("build");

    let whole = scratch("whole");
    write_graph(&g, &whole, WriteOptions::default()).expect("write_graph");

    let streamed = scratch("streamed");
    let mut w = StreamingWriter::create(
        &streamed,
        g.node_weights().to_vec(),
        WriteOptions::default(),
    )
    .expect("create");
    for row in &rows {
        w.append_row(row).expect("append");
    }
    let summary = w.finish().expect("finish");
    assert_eq!(summary.edges, g.edge_count() as u64);

    let a = fs::read(&whole).expect("read whole");
    let b = fs::read(&streamed).expect("read streamed");
    assert_eq!(
        a, b,
        "streaming and whole-graph containers must be bitwise identical"
    );
}

#[test]
fn streaming_writer_rejects_contract_violations() {
    let weights = vec![0.5, 0.3, 0.2];
    let path = scratch("contract");
    let opts = WriteOptions::default();

    // Node weight outside [0, 1].
    assert!(matches!(
        StreamingWriter::create(&path, vec![0.5, 1.5], opts),
        Err(StoreError::WriterContract { .. })
    ));

    // Unsorted row.
    let mut w = StreamingWriter::create(&path, weights.clone(), opts).expect("create");
    assert!(matches!(
        w.append_row(&[(2, 0.5), (1, 0.5)]),
        Err(StoreError::WriterContract { .. })
    ));
    drop(w);

    // Duplicate target.
    let mut w = StreamingWriter::create(&path, weights.clone(), opts).expect("create");
    assert!(matches!(
        w.append_row(&[(1, 0.5), (1, 0.5)]),
        Err(StoreError::WriterContract { .. })
    ));
    drop(w);

    // Target out of range.
    let mut w = StreamingWriter::create(&path, weights.clone(), opts).expect("create");
    assert!(matches!(
        w.append_row(&[(7, 0.5)]),
        Err(StoreError::WriterContract { .. })
    ));
    drop(w);

    // Edge weight outside (0, 1].
    let mut w = StreamingWriter::create(&path, weights.clone(), opts).expect("create");
    assert!(matches!(
        w.append_row(&[(1, 0.0)]),
        Err(StoreError::WriterContract { .. })
    ));
    drop(w);

    // Finish before all rows are appended.
    let mut w = StreamingWriter::create(&path, weights.clone(), opts).expect("create");
    w.append_row(&[(1, 0.5)]).expect("row 0");
    assert!(matches!(w.finish(), Err(StoreError::WriterContract { .. })));

    // Too many rows.
    let mut w = StreamingWriter::create(&path, weights, opts).expect("create");
    for _ in 0..3 {
        w.append_row(&[]).expect("row");
    }
    assert!(matches!(
        w.append_row(&[]),
        Err(StoreError::WriterContract { .. })
    ));
    drop(w);

    // Nothing was ever committed to the destination.
    assert!(!path.exists(), "failed writes must not leave a container");
}

/// A strategy producing small random well-formed preference graphs
/// (same shape as the graph crate's proptest strategy; unlabeled).
fn arb_graph(max_nodes: usize) -> impl Strategy<Value = PreferenceGraph> {
    (1..=max_nodes)
        .prop_flat_map(|n| {
            let weights = proptest::collection::vec(1u32..1000, n);
            let edges = proptest::collection::vec((0..n, 0..n, 0.01f64..=1.0), 0..(n * 3).min(64));
            (Just(n), weights, edges)
        })
        .prop_map(|(_n, weights, edges)| {
            let mut b = GraphBuilder::new()
                .normalize_node_weights(true)
                .duplicate_edge_policy(DuplicateEdgePolicy::Max);
            let ids: Vec<ItemId> = weights.iter().map(|&w| b.add_node(w as f64)).collect();
            for (s, t, w) in edges {
                if s != t {
                    b.add_edge(ids[s], ids[t], w).expect("edge weight in range");
                }
            }
            b.build().expect("generated graph is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any well-formed graph survives the container round trip bitwise on
    /// every load path.
    #[test]
    fn round_trip_is_bitwise_identity(g in arb_graph(24)) {
        let path = scratch("prop-rt");
        write_graph(&g, &path, WriteOptions::default()).expect("write");
        for mode in supported_modes() {
            let (loaded, _) = read_graph(&path, mode).expect("read");
            prop_assert_eq!(&loaded, &g);
        }
        fs::remove_file(&path).ok();
    }

    /// Flipping any single byte of a container either fails with a typed
    /// error or — only when the byte lies in unchecksummed padding — loads
    /// a graph identical to the original. It never panics.
    #[test]
    fn single_byte_mutation_never_panics(pos in 0usize..2048, mask in 1u8..=255) {
        let g = figure1();
        let path = scratch("prop-mut");
        write_graph(&g, &path, WriteOptions::default()).expect("write");
        let mut bytes = fs::read(&path).expect("read back");
        let pos = pos % bytes.len();
        bytes[pos] ^= mask;
        fs::write(&path, &bytes).expect("write mutated");
        for mode in supported_modes() {
            match read_graph(&path, mode) {
                Ok((loaded, _)) => prop_assert_eq!(&loaded, &g),
                Err(e) => {
                    let _ = e.to_string();
                }
            }
        }
        fs::remove_file(&path).ok();
    }
}

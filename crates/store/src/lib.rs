//! # pcover-store
//!
//! A versioned, checksummed on-disk container for
//! [`PreferenceGraph`](pcover_graph::PreferenceGraph) — the storage layer
//! that lets million-node graphs open in milliseconds instead of re-parsing
//! JSON and rebuilding the CSR on every run.
//!
//! A `.pcov` container is a little-endian binary file: a fixed header
//! (magic, format version, variant metadata) and a section table, followed
//! by the seven CSR sections (node weights, out/in offsets, targets,
//! sources, edge weights) plus optional labels, each 64-byte-aligned and
//! FNV-1a-checksummed. See [`format`] for the exact byte layout.
//!
//! Two load paths, selected by [`OpenMode`] at open time:
//!
//! * **mmap** — zero-copy: sections become typed slices straight into a
//!   read-only file mapping ([`pcover_graph::CsrSource`]). The only
//!   `unsafe` code in the crate lives in the narrow, audited `mmap` module
//!   (the workspace otherwise forbids unsafe; the xtask `unsafe-scope`
//!   rule pins it there).
//! * **pread** — buffered portable fallback decoding sections into owned
//!   vectors.
//!
//! Both paths verify every checksum and re-run full CSR validation, so
//! corrupt or adversarial containers produce typed [`StoreError`]s, never
//! panics.
//!
//! ## Quick example
//!
//! ```
//! use pcover_graph::examples::figure1;
//! use pcover_store::{read_graph, write_graph, OpenMode, WriteOptions};
//!
//! let dir = std::env::temp_dir().join(format!("pcov-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("figure1.pcov");
//!
//! let g = figure1();
//! write_graph(&g, &path, WriteOptions::default()).unwrap();
//! let (loaded, _path_used) = read_graph(&path, OpenMode::Auto).unwrap();
//! assert_eq!(loaded, g);
//! # std::fs::remove_file(&path).ok();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod container;
mod error;
mod mmap;
mod writer;

pub mod format;

pub use container::{
    is_container, probe, read_graph, read_graph_auto, verify, ContainerInfo, LoadPath, OpenMode,
};
pub use error::StoreError;
pub use format::VariantHint;
pub use writer::{write_graph, StreamingWriter, WriteOptions, WriteSummary};

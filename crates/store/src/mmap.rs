//! The crate's **only** unsafe module: a read-only `mmap(2)` wrapper and
//! the byte→typed-slice casts behind the zero-copy load path.
//!
//! # Safety argument
//!
//! Everything `unsafe` in this crate lives in this file (enforced by the
//! `unsafe-scope` xtask audit rule) and reduces to three obligations:
//!
//! 1. **Mapping lifetime** — [`Mapping`] owns the region returned by a
//!    successful `mmap` and is the only place that calls `munmap` (in
//!    `Drop`). Slices derived from it borrow the `Mapping`, so the borrow
//!    checker guarantees no access after unmap.
//! 2. **Read-only sharing** — the region is mapped `PROT_READ` +
//!    `MAP_PRIVATE`: no thread can write through it, so `Send`/`Sync` for
//!    the owning type is sound (it is an immutable byte array). A
//!    concurrent writer truncating the *file* could still fault readers —
//!    which is why callers snapshot the file length once and validate every
//!    section extent against it before mapping, and the container contract
//!    declares in-place modification of a mapped container undefined at the
//!    operational (not memory-safety beyond SIGBUS) level, exactly like
//!    every other mmap consumer.
//! 3. **Typed views** — [`cast_f64`] / [`cast_u32`] / [`cast_item_ids`]
//!    reinterpret `&[u8]` as `&[f64]` / `&[u32]` / `&[ItemId]`. Soundness
//!    needs correct alignment, length divisibility, and valid bit patterns:
//!    alignment and divisibility are asserted here (and guaranteed by the
//!    container's 64-byte section alignment over a page-aligned base);
//!    every bit pattern is a valid `u32`/`f64`; and `ItemId` is
//!    `#[repr(transparent)]` over `u32`. Only little-endian unix targets
//!    compile this module (`cfg` below) — byte order on disk *is* the
//!    in-memory representation there.
//!
//! The `extern "C"` declarations are hand-written because the build
//! vendors no `libc` crate; the symbols come from the platform libc that
//! `std` already links.

// The workspace forbids unsafe code; this crate downgrades to `deny` so
// that exactly this module can opt back in, with the audit rule pinning
// any future unsafe to this file.
#![allow(unsafe_code)]

use pcover_graph::ItemId;

#[cfg(all(unix, target_endian = "little"))]
pub(crate) use enabled::Mapping;

/// Whether the zero-copy mmap backend exists in this build.
pub(crate) const MMAP_SUPPORTED: bool = cfg!(all(unix, target_endian = "little"));

#[cfg(all(unix, target_endian = "little"))]
mod enabled {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    use crate::error::StoreError;

    // Hand-declared bindings for the two syscall wrappers this module
    // needs. Constants are the x86_64/aarch64 Linux *and* BSD/macOS values
    // for these particular flags (PROT_READ=1, MAP_PRIVATE=2 agree across
    // the unix family this repo builds on).
    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// An owned, read-only, private file mapping.
    #[derive(Debug)]
    pub(crate) struct Mapping {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the region is PROT_READ/MAP_PRIVATE — an immutable byte
    // array for this process — and `Mapping` is the unique owner of the
    // unmap, so sharing references across threads is as sound as sharing
    // `&[u8]`.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps the first `len` bytes of `file` read-only.
        pub(crate) fn map(file: &File, len: u64) -> Result<Self, StoreError> {
            let len = usize::try_from(len).map_err(|_| StoreError::TooLarge {
                what: "file length exceeds usize",
            })?;
            if len == 0 {
                // mmap(len = 0) is EINVAL; a zero-length container cannot
                // even hold a header, so this is unreachable through the
                // public API — handled defensively for completeness.
                return Err(StoreError::Unsupported {
                    message: "cannot map an empty file",
                });
            }
            // SAFETY: fd is a valid open file descriptor for the lifetime
            // of the call; addr=null lets the kernel choose placement;
            // offset 0 is page-aligned. A failed map returns MAP_FAILED
            // (-1), checked below, and ownership of a successful map is
            // transferred into the returned value whose Drop unmaps it.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(StoreError::Io(io::Error::last_os_error()));
            }
            Ok(Mapping {
                ptr: ptr as *const u8,
                len,
            })
        }

        /// The mapped bytes.
        pub(crate) fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` points at a live `len`-byte PROT_READ mapping
            // owned by `self`; the returned slice borrows `self`, so it
            // cannot outlive the mapping.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe exactly the region obtained
            // from `mmap`, unmapped exactly once here. A failure return is
            // ignored: the region is gone or never existed, and Drop has
            // no error channel.
            unsafe {
                munmap(self.ptr as *mut core::ffi::c_void, self.len);
            }
        }
    }
}

/// Reinterprets container section bytes as `f64` values.
///
/// # Panics
///
/// Asserts 8-byte alignment and length divisibility. Both hold by
/// construction for any section handed out by the container layer
/// (64-byte-aligned offsets over a page-aligned base, length checked
/// against the header counts); the asserts are the audited backstop that
/// turns a would-be soundness bug into a deterministic panic.
pub(crate) fn cast_f64(bytes: &[u8]) -> &[f64] {
    assert_eq!(bytes.len() % std::mem::size_of::<f64>(), 0);
    assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<f64>(), 0);
    // SAFETY: alignment and length asserted above; every 8-byte pattern is
    // a valid f64; the cast slice borrows the same region as `bytes`.
    unsafe {
        std::slice::from_raw_parts(
            bytes.as_ptr().cast::<f64>(),
            bytes.len() / std::mem::size_of::<f64>(),
        )
    }
}

/// Reinterprets container section bytes as `u32` values.
///
/// # Panics
///
/// As [`cast_f64`].
pub(crate) fn cast_u32(bytes: &[u8]) -> &[u32] {
    assert_eq!(bytes.len() % std::mem::size_of::<u32>(), 0);
    assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<u32>(), 0);
    // SAFETY: alignment and length asserted above; every 4-byte pattern is
    // a valid u32; the cast slice borrows the same region as `bytes`.
    unsafe {
        std::slice::from_raw_parts(
            bytes.as_ptr().cast::<u32>(),
            bytes.len() / std::mem::size_of::<u32>(),
        )
    }
}

/// Reinterprets container section bytes as [`ItemId`] values.
///
/// # Panics
///
/// As [`cast_f64`].
pub(crate) fn cast_item_ids(bytes: &[u8]) -> &[ItemId] {
    // SAFETY: `ItemId` is `#[repr(transparent)]` over `u32`, so a valid
    // `&[u32]` view is a valid `&[ItemId]` view of the same bytes.
    let words = cast_u32(bytes);
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<ItemId>(), words.len()) }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use super::*;

    /// Byte view of a typed slice — test-only inverse of the cast helpers.
    fn as_bytes<T>(v: &[T]) -> &[u8] {
        // SAFETY: any initialized slice may be viewed as its raw bytes;
        // the view borrows `v`.
        unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), std::mem::size_of_val(v)) }
    }

    #[test]
    fn casts_round_trip_typed_views() {
        let weights: Vec<f64> = vec![0.25, 0.5, 1.0];
        assert_eq!(cast_f64(as_bytes(&weights)), &weights[..]);
        let ids: Vec<u32> = vec![1, 2, 3];
        assert_eq!(cast_u32(as_bytes(&ids)), &ids[..]);
        assert_eq!(cast_item_ids(as_bytes(&ids))[2], ItemId::new(3));
    }

    #[cfg(all(unix, target_endian = "little"))]
    #[test]
    fn mapping_reads_file_bytes_and_unmaps() {
        let dir = std::env::temp_dir().join(format!("pcover-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("map.bin");
        std::fs::write(&path, b"hello mapping").expect("write");
        let file = std::fs::File::open(&path).expect("open");
        let map = Mapping::map(&file, 13).expect("map");
        assert_eq!(map.bytes(), b"hello mapping");
        drop(map); // munmap; nothing to assert beyond "no crash"
        std::fs::remove_file(&path).ok();
    }

    #[cfg(all(unix, target_endian = "little"))]
    #[test]
    fn mapping_rejects_empty_files() {
        let dir = std::env::temp_dir().join(format!("pcover-mmap-test0-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").expect("write");
        let file = std::fs::File::open(&path).expect("open");
        assert!(Mapping::map(&file, 0).is_err());
        std::fs::remove_file(&path).ok();
    }
}

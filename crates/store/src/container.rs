//! Opening, probing and loading `.pcov` containers.
//!
//! Two load paths share one verification pipeline (header checksum →
//! layout bounds → per-section checksums → full CSR validation in
//! `pcover-graph`):
//!
//! * **mmap** — zero-copy: the file is mapped read-only and the CSR
//!   sections are typed views straight into the mapping. Open cost is
//!   dominated by checksum verification (a sequential read of the file);
//!   the graph itself borrows the page cache, so repeated opens across
//!   processes share one physical copy. Little-endian unix only.
//! * **pread** — portable fallback: sections are read into owned vectors
//!   and decoded with explicit little-endian conversion. Works everywhere,
//!   costs one heap copy of the graph.

// lint: allow-file(no-index) — every slice range comes from `Header::validate_layout`,
// which checks each section's offset+len against the file (and mapping) length before
// any view is taken; the magic-read loop indexes by bytes-read, bounded by magic.len().

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Arc;

use pcover_graph::{CsrParts, ItemId, PreferenceGraph};

use crate::error::StoreError;
use crate::format::{
    Fnv1a, Header, SectionEntry, VariantHint, HEADER_LEN, MAGIC, SECTION_ENTRY_LEN, SEC_IN_OFFSETS,
    SEC_IN_SOURCES, SEC_IN_WEIGHTS, SEC_LABELS, SEC_NODE_WEIGHTS, SEC_OUT_OFFSETS, SEC_OUT_TARGETS,
    SEC_OUT_WEIGHTS,
};
use crate::mmap;

/// How to load a container's CSR sections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OpenMode {
    /// Zero-copy mmap when the platform supports it, pread otherwise.
    #[default]
    Auto,
    /// Require the zero-copy mmap backend; error where unsupported.
    Mmap,
    /// Force the buffered pread backend.
    Pread,
}

impl OpenMode {
    /// Parses a CLI token.
    pub fn parse(token: &str) -> Option<Self> {
        match token {
            "auto" => Some(OpenMode::Auto),
            "mmap" => Some(OpenMode::Mmap),
            "pread" => Some(OpenMode::Pread),
            _ => None,
        }
    }
}

/// Which backend actually served a load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadPath {
    /// Zero-copy mapped sections.
    Mmap,
    /// Buffered read into owned vectors.
    Pread,
}

impl LoadPath {
    /// Stable name for reports and stats output.
    pub fn name(self) -> &'static str {
        match self {
            LoadPath::Mmap => "mmap",
            LoadPath::Pread => "pread",
        }
    }
}

/// Header-level description of a container, as dumped by `pcover probe`.
#[derive(Clone, Debug)]
pub struct ContainerInfo {
    /// Total file length in bytes.
    pub file_len: u64,
    /// Format version stamped in the header.
    pub version: u32,
    /// Number of nodes.
    pub node_count: u64,
    /// Number of directed edges.
    pub edge_count: u64,
    /// Advisory variant metadata.
    pub variant: VariantHint,
    /// Whether a labels section is present.
    pub has_labels: bool,
    /// The section table in file order.
    pub sections: Vec<SectionEntry>,
    /// Whether this build can mmap the container.
    pub mmap_supported: bool,
}

/// Whether `path` starts with the container magic. `Ok(false)` for any
/// readable file that is something else (e.g. a JSON graph).
///
/// # Errors
///
/// Only IO errors propagate; a short file is simply not a container.
pub fn is_container(path: &Path) -> Result<bool, StoreError> {
    let mut file = File::open(path)?;
    let mut magic = [0u8; 8];
    let mut read = 0;
    while read < magic.len() {
        match file.read(&mut magic[read..])? {
            0 => return Ok(false),
            k => read += k,
        }
    }
    Ok(magic == MAGIC)
}

/// Reads and fully validates header + section table against the file
/// length, without touching section payloads.
fn read_header(file: &mut File) -> Result<(Header, u64), StoreError> {
    let file_len = file.metadata()?.len();
    let prefix_len = (HEADER_LEN + 64 * SECTION_ENTRY_LEN).min(file_len);
    let mut prefix = vec![0u8; prefix_len as usize];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut prefix)?;
    let header = Header::decode(&prefix)?;
    header.validate_layout(file_len)?;
    Ok((header, file_len))
}

/// Probes a container: decodes and checksums the header, validates the
/// section layout against the file length, and returns the table. Section
/// payloads are *not* hashed — use [`verify`] for a full integrity pass.
///
/// # Errors
///
/// Typed [`StoreError`]s for every malformed-header case.
pub fn probe(path: &Path) -> Result<ContainerInfo, StoreError> {
    let mut file = File::open(path)?;
    let (header, file_len) = read_header(&mut file)?;
    Ok(ContainerInfo {
        file_len,
        version: header.version,
        node_count: header.node_count,
        edge_count: header.edge_count,
        variant: header.variant,
        has_labels: header.has_labels(),
        sections: header.sections,
        mmap_supported: mmap::MMAP_SUPPORTED,
    })
}

/// Full integrity pass: header validation plus a sequential hash of every
/// section payload against its stored checksum.
///
/// # Errors
///
/// The first [`StoreError::ChecksumMismatch`] (or header error) found.
pub fn verify(path: &Path) -> Result<ContainerInfo, StoreError> {
    let mut file = File::open(path)?;
    let (header, file_len) = read_header(&mut file)?;
    for s in &header.sections {
        let bytes = read_section(&mut file, s)?;
        check_section(s, &bytes)?;
    }
    Ok(ContainerInfo {
        file_len,
        version: header.version,
        node_count: header.node_count,
        edge_count: header.edge_count,
        variant: header.variant,
        has_labels: header.has_labels(),
        sections: header.sections,
        mmap_supported: mmap::MMAP_SUPPORTED,
    })
}

/// Loads the graph stored in a container.
///
/// Every load verifies all section checksums and re-runs full CSR
/// validation, so a corrupt or adversarial file yields a typed error, never
/// a panic or an out-of-bounds access.
///
/// # Errors
///
/// [`StoreError`] for malformed containers; [`StoreError::Unsupported`]
/// when `OpenMode::Mmap` is requested on a platform without the backend.
pub fn read_graph(path: &Path, mode: OpenMode) -> Result<(PreferenceGraph, LoadPath), StoreError> {
    let mut file = File::open(path)?;
    let (header, file_len) = read_header(&mut file)?;
    match mode {
        OpenMode::Mmap => mmap_load(file, &header, file_len).map(|g| (g, LoadPath::Mmap)),
        OpenMode::Pread => pread_load(file, &header).map(|g| (g, LoadPath::Pread)),
        OpenMode::Auto => {
            if mmap::MMAP_SUPPORTED {
                mmap_load(file, &header, file_len).map(|g| (g, LoadPath::Mmap))
            } else {
                pread_load(file, &header).map(|g| (g, LoadPath::Pread))
            }
        }
    }
}

/// Loads a graph from `path` whatever its format: a `.pcov` container via
/// [`read_graph`], anything else as a JSON graph. This is the single entry
/// point CLI and serve use, so every graph-consuming surface accepts both
/// formats transparently.
///
/// # Errors
///
/// Container errors as [`read_graph`]; JSON errors wrapped in
/// [`StoreError::InvalidGraph`].
pub fn read_graph_auto(
    path: &Path,
    mode: OpenMode,
) -> Result<(PreferenceGraph, &'static str), StoreError> {
    if is_container(path)? {
        let (graph, load) = read_graph(path, mode)?;
        Ok((graph, load.name()))
    } else {
        let graph =
            pcover_graph::io::json::read_json(path, &pcover_graph::io::LoadOptions::default())?;
        Ok((graph, "json"))
    }
}

fn read_section(file: &mut File, s: &SectionEntry) -> Result<Vec<u8>, StoreError> {
    let len = usize::try_from(s.len).map_err(|_| StoreError::TooLarge {
        what: "section length exceeds usize",
    })?;
    let mut bytes = vec![0u8; len];
    file.seek(SeekFrom::Start(s.offset))?;
    file.read_exact(&mut bytes)?;
    Ok(bytes)
}

fn check_section(s: &SectionEntry, bytes: &[u8]) -> Result<(), StoreError> {
    let mut h = Fnv1a::new();
    h.update(bytes);
    let computed = h.finish();
    if computed != s.checksum {
        return Err(StoreError::ChecksumMismatch {
            section: s.id,
            stored: s.checksum,
            computed,
        });
    }
    Ok(())
}

fn required_section(header: &Header, id: u32) -> Result<&SectionEntry, StoreError> {
    // validate_layout guarantees presence; the error path is a defensive
    // typed failure rather than a panic.
    header.section(id).ok_or_else(|| StoreError::SectionTable {
        message: format!("missing section {}", crate::format::section_name(id)),
    })
}

fn decode_f64(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            f64::from_le_bytes(b)
        })
        .collect()
}

fn decode_u32(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| {
            let mut b = [0u8; 4];
            b.copy_from_slice(c);
            u32::from_le_bytes(b)
        })
        .collect()
}

fn decode_ids(bytes: &[u8]) -> Vec<ItemId> {
    bytes
        .chunks_exact(4)
        .map(|c| {
            let mut b = [0u8; 4];
            b.copy_from_slice(c);
            ItemId::new(u32::from_le_bytes(b))
        })
        .collect()
}

/// Decodes the labels section: `n` entries of `u32` length + UTF-8 bytes.
fn decode_labels(bytes: &[u8], n: usize) -> Result<Vec<String>, StoreError> {
    let fail = |message: String| StoreError::SectionTable { message };
    let mut labels = Vec::with_capacity(n);
    let mut pos = 0usize;
    for i in 0..n {
        let Some(len_bytes) = bytes.get(pos..pos + 4) else {
            return Err(fail(format!("labels section ends inside entry {i}")));
        };
        let mut b = [0u8; 4];
        b.copy_from_slice(len_bytes);
        let len = u32::from_le_bytes(b) as usize;
        pos += 4;
        let Some(text) = bytes.get(pos..pos + len) else {
            return Err(fail(format!("labels section ends inside entry {i}")));
        };
        let text = std::str::from_utf8(text)
            .map_err(|e| fail(format!("label {i} is not valid UTF-8: {e}")))?;
        labels.push(text.to_string());
        pos += len;
    }
    if pos != bytes.len() {
        return Err(fail(format!(
            "labels section has {} trailing bytes",
            bytes.len() - pos
        )));
    }
    Ok(labels)
}

fn load_labels(file: &mut File, header: &Header) -> Result<Option<Vec<String>>, StoreError> {
    if !header.has_labels() {
        return Ok(None);
    }
    let entry = required_section(header, SEC_LABELS)?;
    let bytes = read_section(file, entry)?;
    check_section(entry, &bytes)?;
    let n = usize::try_from(header.node_count).map_err(|_| StoreError::TooLarge {
        what: "node count exceeds usize",
    })?;
    Ok(Some(decode_labels(&bytes, n)?))
}

/// Buffered load: every section is read, checksummed, decoded into owned
/// vectors, and assembled through `PreferenceGraph::from_csr_parts`.
fn pread_load(mut file: File, header: &Header) -> Result<PreferenceGraph, StoreError> {
    let mut read_checked = |id: u32| -> Result<Vec<u8>, StoreError> {
        let entry = required_section(header, id)?;
        let bytes = read_section(&mut file, entry)?;
        check_section(entry, &bytes)?;
        Ok(bytes)
    };
    let node_weights = decode_f64(&read_checked(SEC_NODE_WEIGHTS)?);
    let out_offsets = decode_u32(&read_checked(SEC_OUT_OFFSETS)?);
    let out_targets = decode_ids(&read_checked(SEC_OUT_TARGETS)?);
    let out_weights = decode_f64(&read_checked(SEC_OUT_WEIGHTS)?);
    let in_offsets = decode_u32(&read_checked(SEC_IN_OFFSETS)?);
    let in_sources = decode_ids(&read_checked(SEC_IN_SOURCES)?);
    let in_weights = decode_f64(&read_checked(SEC_IN_WEIGHTS)?);
    let labels = load_labels(&mut file, header)?;
    let parts = CsrParts {
        node_weights,
        out_offsets,
        out_targets,
        out_weights,
        in_offsets,
        in_sources,
        in_weights,
        labels,
    };
    Ok(PreferenceGraph::from_csr_parts(parts)?)
}

#[cfg(all(unix, target_endian = "little"))]
mod mapped {
    //! Safe composition layer over the audited `mmap` module: holds the
    //! mapping plus byte ranges and exposes the typed `CsrSource` views.

    use super::*;
    use pcover_graph::CsrSource;
    use std::ops::Range;

    /// A zero-copy `CsrSource` over a mapped container.
    #[derive(Debug)]
    pub(super) struct MappedCsr {
        map: mmap::Mapping,
        node_weights: Range<usize>,
        out_offsets: Range<usize>,
        out_targets: Range<usize>,
        out_weights: Range<usize>,
        in_offsets: Range<usize>,
        in_sources: Range<usize>,
        in_weights: Range<usize>,
    }

    fn range(entry: &SectionEntry) -> Result<Range<usize>, StoreError> {
        let start = usize::try_from(entry.offset).map_err(|_| StoreError::TooLarge {
            what: "section offset exceeds usize",
        })?;
        let len = usize::try_from(entry.len).map_err(|_| StoreError::TooLarge {
            what: "section length exceeds usize",
        })?;
        Ok(start..start + len)
    }

    impl MappedCsr {
        pub(super) fn new(map: mmap::Mapping, header: &Header) -> Result<Self, StoreError> {
            Ok(MappedCsr {
                node_weights: range(required_section(header, SEC_NODE_WEIGHTS)?)?,
                out_offsets: range(required_section(header, SEC_OUT_OFFSETS)?)?,
                out_targets: range(required_section(header, SEC_OUT_TARGETS)?)?,
                out_weights: range(required_section(header, SEC_OUT_WEIGHTS)?)?,
                in_offsets: range(required_section(header, SEC_IN_OFFSETS)?)?,
                in_sources: range(required_section(header, SEC_IN_SOURCES)?)?,
                in_weights: range(required_section(header, SEC_IN_WEIGHTS)?)?,
                map,
            })
        }

        fn bytes(&self, r: &Range<usize>) -> &[u8] {
            // Ranges were validated against the file (and thus mapping)
            // length by `Header::validate_layout`.
            &self.map.bytes()[r.clone()]
        }
    }

    impl CsrSource for MappedCsr {
        fn node_weights(&self) -> &[f64] {
            mmap::cast_f64(self.bytes(&self.node_weights))
        }
        fn out_offsets(&self) -> &[u32] {
            mmap::cast_u32(self.bytes(&self.out_offsets))
        }
        fn out_targets(&self) -> &[ItemId] {
            mmap::cast_item_ids(self.bytes(&self.out_targets))
        }
        fn out_weights(&self) -> &[f64] {
            mmap::cast_f64(self.bytes(&self.out_weights))
        }
        fn in_offsets(&self) -> &[u32] {
            mmap::cast_u32(self.bytes(&self.in_offsets))
        }
        fn in_sources(&self) -> &[ItemId] {
            mmap::cast_item_ids(self.bytes(&self.in_sources))
        }
        fn in_weights(&self) -> &[f64] {
            mmap::cast_f64(self.bytes(&self.in_weights))
        }
    }
}

/// Zero-copy load: map the file, checksum the mapped section bytes, and
/// hand the typed views to `PreferenceGraph::from_csr_source` (which
/// re-validates the full CSR structure before any solver sees it).
#[cfg(all(unix, target_endian = "little"))]
fn mmap_load(
    mut file: File,
    header: &Header,
    file_len: u64,
) -> Result<PreferenceGraph, StoreError> {
    let map = mmap::Mapping::map(&file, file_len)?;
    {
        let bytes = map.bytes();
        for s in &header.sections {
            let start = usize::try_from(s.offset).map_err(|_| StoreError::TooLarge {
                what: "section offset exceeds usize",
            })?;
            let end = start
                + usize::try_from(s.len).map_err(|_| StoreError::TooLarge {
                    what: "section length exceeds usize",
                })?;
            check_section(s, &bytes[start..end])?;
        }
    }
    let labels = load_labels(&mut file, header)?;
    let source = mapped::MappedCsr::new(map, header)?;
    Ok(PreferenceGraph::from_csr_source(Arc::new(source), labels)?)
}

/// Stub on platforms without the mmap backend.
#[cfg(not(all(unix, target_endian = "little")))]
fn mmap_load(_file: File, _header: &Header, _file_len: u64) -> Result<PreferenceGraph, StoreError> {
    Err(StoreError::Unsupported {
        message: "mmap load path requires a little-endian unix target; use OpenMode::Pread",
    })
}

//! Writing containers: whole-graph and streaming writers.
//!
//! Both writers produce byte-identical layouts for the same graph: the
//! header and section table first, then the sections in canonical order
//! (`node_weights`, out-CSR, in-CSR, labels), each starting at a
//! 64-byte-aligned offset with zero padding between.
//!
//! [`StreamingWriter`] exists so `pcover-datagen` can emit million-node
//! containers without materializing the full edge list: out-CSR targets
//! and weights are spilled to temporary files next to the destination as
//! rows arrive, in-degrees are counted online, and `finish()` assembles
//! the in-CSR with a single streaming scatter pass — peak memory is
//! `O(16·n + 12·m)` bytes instead of the `O(48·m)`-plus-JSON-text of the
//! build-then-serialize path.

// lint: allow-file(no-index) — buffer ranges are `min`-clamped to the buffer length,
// and the scatter pass indexes node/edge arrays sized from the counted degrees
// (`in_degrees`/`out_offsets` cover exactly n nodes and m edges by construction).

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use pcover_graph::PreferenceGraph;

use crate::error::StoreError;
use crate::format::{
    align_up, Fnv1a, Header, SectionEntry, VariantHint, FLAG_LABELS, FORMAT_VERSION,
    SEC_IN_OFFSETS, SEC_IN_SOURCES, SEC_IN_WEIGHTS, SEC_LABELS, SEC_NODE_WEIGHTS, SEC_OUT_OFFSETS,
    SEC_OUT_TARGETS, SEC_OUT_WEIGHTS,
};

/// Options for container writers.
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteOptions {
    /// Advisory variant metadata stamped into the header.
    pub variant: VariantHint,
}

/// What a writer produced.
#[derive(Clone, Copy, Debug)]
pub struct WriteSummary {
    /// Nodes written.
    pub nodes: u64,
    /// Directed edges written.
    pub edges: u64,
    /// Total container size in bytes.
    pub bytes: u64,
}

fn hash_f64s(values: &[f64]) -> u64 {
    let mut h = Fnv1a::new();
    for v in values {
        h.update(&v.to_le_bytes());
    }
    h.finish()
}

fn hash_u32s(values: &[u32]) -> u64 {
    let mut h = Fnv1a::new();
    for v in values {
        h.update(&v.to_le_bytes());
    }
    h.finish()
}

fn write_f64s<W: Write>(out: &mut Emitter<W>, values: &[f64]) -> Result<(), StoreError> {
    for v in values {
        out.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn write_u32s<W: Write>(out: &mut Emitter<W>, values: &[u32]) -> Result<(), StoreError> {
    for v in values {
        out.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Encodes the labels section payload: `u32` length + UTF-8 bytes per
/// label.
fn encode_labels(labels: &[String]) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::new();
    for label in labels {
        let len = u32::try_from(label.len()).map_err(|_| StoreError::TooLarge {
            what: "label longer than u32::MAX bytes",
        })?;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(label.as_bytes());
    }
    Ok(out)
}

/// Assigns aligned offsets to planned sections, in order. Returns the
/// total file length: the file ends right after the last payload byte
/// (no trailing padding).
fn plan_offsets(sections: &mut [SectionEntry]) -> u64 {
    let table_len =
        crate::format::HEADER_LEN + sections.len() as u64 * crate::format::SECTION_ENTRY_LEN;
    let mut cursor = align_up(table_len);
    let mut end = table_len;
    for s in sections.iter_mut() {
        s.offset = cursor;
        end = cursor + s.len;
        cursor = align_up(end);
    }
    end
}

/// A positioned writer that zero-pads up to each section's aligned start.
struct Emitter<W: Write> {
    inner: W,
    pos: u64,
}

impl<W: Write> Emitter<W> {
    fn new(inner: W) -> Self {
        Emitter { inner, pos: 0 }
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.inner.write_all(bytes)?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    fn pad_to(&mut self, offset: u64) -> Result<(), StoreError> {
        debug_assert!(offset >= self.pos, "sections must be written in order");
        const ZEROS: [u8; 64] = [0u8; 64];
        let mut gap = offset.saturating_sub(self.pos);
        while gap > 0 {
            let chunk = gap.min(ZEROS.len() as u64) as usize;
            self.write_all(&ZEROS[..chunk])?;
            gap -= chunk as u64;
        }
        Ok(())
    }
}

/// Writes `graph` as a container at `path` (atomically: the file is
/// assembled under a `.tmp` suffix and renamed into place).
///
/// # Errors
///
/// IO failures and capacity overflows as typed [`StoreError`]s.
pub fn write_graph(
    graph: &PreferenceGraph,
    path: &Path,
    options: WriteOptions,
) -> Result<WriteSummary, StoreError> {
    let n = graph.node_count() as u64;
    let m = graph.edge_count() as u64;
    let labels_payload = match graph.labels() {
        Some(labels) => Some(encode_labels(labels)?),
        None => None,
    };

    let out_offsets = graph.csr_out_offsets();
    let in_offsets = graph.csr_in_offsets();
    // ItemId is a transparent u32 newtype; hash/write via raw values.
    let out_targets: Vec<u32> = graph.csr_out_targets().iter().map(|id| id.raw()).collect();
    let in_sources: Vec<u32> = graph.csr_in_sources().iter().map(|id| id.raw()).collect();

    let mut sections = vec![
        SectionEntry {
            id: SEC_NODE_WEIGHTS,
            offset: 0,
            len: n * 8,
            checksum: hash_f64s(graph.node_weights()),
        },
        SectionEntry {
            id: SEC_OUT_OFFSETS,
            offset: 0,
            len: (n + 1) * 4,
            checksum: hash_u32s(out_offsets),
        },
        SectionEntry {
            id: SEC_OUT_TARGETS,
            offset: 0,
            len: m * 4,
            checksum: hash_u32s(&out_targets),
        },
        SectionEntry {
            id: SEC_OUT_WEIGHTS,
            offset: 0,
            len: m * 8,
            checksum: hash_f64s(graph.csr_out_weights()),
        },
        SectionEntry {
            id: SEC_IN_OFFSETS,
            offset: 0,
            len: (n + 1) * 4,
            checksum: hash_u32s(in_offsets),
        },
        SectionEntry {
            id: SEC_IN_SOURCES,
            offset: 0,
            len: m * 4,
            checksum: hash_u32s(&in_sources),
        },
        SectionEntry {
            id: SEC_IN_WEIGHTS,
            offset: 0,
            len: m * 8,
            checksum: hash_f64s(graph.csr_in_weights()),
        },
    ];
    if let Some(payload) = &labels_payload {
        let mut h = Fnv1a::new();
        h.update(payload);
        sections.push(SectionEntry {
            id: SEC_LABELS,
            offset: 0,
            len: payload.len() as u64,
            checksum: h.finish(),
        });
    }
    let total = plan_offsets(&mut sections);

    let header = Header {
        version: FORMAT_VERSION,
        flags: if labels_payload.is_some() {
            FLAG_LABELS
        } else {
            0
        },
        node_count: n,
        edge_count: m,
        variant: options.variant,
        sections,
    };

    let tmp_path = tmp_sibling(path, "write");
    {
        let file = File::create(&tmp_path)?;
        let mut out = Emitter::new(BufWriter::new(file));
        out.write_all(&header.encode())?;
        for s in &header.sections {
            out.pad_to(s.offset)?;
            match s.id {
                SEC_NODE_WEIGHTS => write_f64s(&mut out, graph.node_weights())?,
                SEC_OUT_OFFSETS => write_u32s(&mut out, out_offsets)?,
                SEC_OUT_TARGETS => write_u32s(&mut out, &out_targets)?,
                SEC_OUT_WEIGHTS => write_f64s(&mut out, graph.csr_out_weights())?,
                SEC_IN_OFFSETS => write_u32s(&mut out, in_offsets)?,
                SEC_IN_SOURCES => write_u32s(&mut out, &in_sources)?,
                SEC_IN_WEIGHTS => write_f64s(&mut out, graph.csr_in_weights())?,
                SEC_LABELS => {
                    if let Some(payload) = &labels_payload {
                        out.write_all(payload)?;
                    }
                }
                _ => {}
            }
        }
        out.inner.flush()?;
    }
    std::fs::rename(&tmp_path, path)?;
    Ok(WriteSummary {
        nodes: n,
        edges: m,
        bytes: total,
    })
}

fn tmp_sibling(path: &Path, tag: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|s| s.to_os_string())
        .unwrap_or_default();
    name.push(format!(".{tag}.{}.tmp", std::process::id()));
    path.with_file_name(name)
}

/// Streams a container to disk one out-row at a time, without holding the
/// edge list in memory.
///
/// Contract: [`append_row`](Self::append_row) is called exactly once per
/// node in ascending node order, each row strictly ascending by target;
/// then [`finish`](Self::finish) assembles the in-CSR and the final file.
/// Contract violations and invalid weights yield
/// [`StoreError::WriterContract`] — nothing is written to `path` until
/// `finish` succeeds (spill files live next to it under `.tmp` suffixes
/// and are removed on both success and drop).
#[derive(Debug)]
pub struct StreamingWriter {
    path: PathBuf,
    options: WriteOptions,
    node_weights: Vec<f64>,
    out_offsets: Vec<u32>,
    in_degrees: Vec<u32>,
    targets_spill: SpillFile,
    weights_spill: SpillFile,
    edges: u64,
}

/// A hashing, buffered temp file that can be reopened for reading.
#[derive(Debug)]
struct SpillFile {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    hash: Fnv1a,
}

impl SpillFile {
    fn create(path: PathBuf) -> Result<Self, StoreError> {
        let file = File::create(&path)?;
        Ok(SpillFile {
            path,
            writer: Some(BufWriter::new(file)),
            hash: Fnv1a::new(),
        })
    }

    fn write(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.hash.update(bytes);
        match &mut self.writer {
            Some(w) => w.write_all(bytes)?,
            None => {
                return Err(StoreError::WriterContract {
                    message: "write after finish".into(),
                })
            }
        }
        Ok(())
    }

    /// Flushes and reopens for reading from the start.
    fn into_reader(mut self) -> Result<(BufReader<File>, u64, PathBuf), StoreError> {
        if let Some(mut w) = self.writer.take() {
            w.flush()?;
        }
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(0))?;
        Ok((BufReader::new(file), self.hash.finish(), self.path.clone()))
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        if self.writer.is_some() {
            // Finish was never reached; clean the spill up best-effort.
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl StreamingWriter {
    /// Starts a streaming write to `path` for a graph with the given node
    /// weights (labels are not supported on the streaming path).
    ///
    /// # Errors
    ///
    /// [`StoreError::WriterContract`] for out-of-domain node weights, IO
    /// errors creating the spill files.
    pub fn create(
        path: &Path,
        node_weights: Vec<f64>,
        options: WriteOptions,
    ) -> Result<Self, StoreError> {
        for (i, &w) in node_weights.iter().enumerate() {
            if !w.is_finite() || !(0.0..=1.0).contains(&w) {
                return Err(StoreError::WriterContract {
                    message: format!("node {i} weight {w} outside [0, 1]"),
                });
            }
        }
        let n = node_weights.len();
        if n > u32::MAX as usize {
            return Err(StoreError::TooLarge {
                what: "node count exceeds u32 index space",
            });
        }
        let mut out_offsets = Vec::with_capacity(n + 1);
        out_offsets.push(0);
        Ok(StreamingWriter {
            path: path.to_path_buf(),
            options,
            in_degrees: vec![0u32; n],
            node_weights,
            out_offsets,
            targets_spill: SpillFile::create(tmp_sibling(path, "targets"))?,
            weights_spill: SpillFile::create(tmp_sibling(path, "weights"))?,
            edges: 0,
        })
    }

    /// Number of rows appended so far (== the next source node id).
    pub fn rows_written(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Appends the out-row of the next node: `(target, weight)` pairs,
    /// strictly ascending by target.
    ///
    /// # Errors
    ///
    /// [`StoreError::WriterContract`] for too many rows, unsorted or
    /// duplicate targets, out-of-range targets, or invalid weights.
    pub fn append_row(&mut self, row: &[(u32, f64)]) -> Result<(), StoreError> {
        let n = self.node_weights.len();
        let source = self.rows_written();
        if source >= n {
            return Err(StoreError::WriterContract {
                message: format!("row {source} appended to a graph of {n} nodes"),
            });
        }
        let mut prev: Option<u32> = None;
        for &(target, weight) in row {
            if target as usize >= n {
                return Err(StoreError::WriterContract {
                    message: format!("edge {source} -> {target} out of range (n = {n})"),
                });
            }
            if prev.is_some_and(|p| p >= target) {
                return Err(StoreError::WriterContract {
                    message: format!("row {source} is not strictly ascending at target {target}"),
                });
            }
            if !(weight.is_finite() && weight > 0.0 && weight <= 1.0) {
                return Err(StoreError::WriterContract {
                    message: format!("edge {source} -> {target} weight {weight} outside (0, 1]"),
                });
            }
            prev = Some(target);
            self.targets_spill.write(&target.to_le_bytes())?;
            self.weights_spill.write(&weight.to_le_bytes())?;
            self.in_degrees[target as usize] += 1;
        }
        self.edges += row.len() as u64;
        if self.edges > u64::from(u32::MAX) {
            return Err(StoreError::TooLarge {
                what: "edge count exceeds u32 index space",
            });
        }
        let last = *self.out_offsets.last().unwrap_or(&0);
        self.out_offsets.push(last + row.len() as u32);
        Ok(())
    }

    /// Assembles the in-CSR (one streaming scatter pass over the spilled
    /// out-CSR) and writes the final container.
    ///
    /// # Errors
    ///
    /// [`StoreError::WriterContract`] when fewer rows than nodes were
    /// appended; IO errors otherwise.
    pub fn finish(self) -> Result<WriteSummary, StoreError> {
        let n = self.node_weights.len() as u64;
        let m = self.edges;
        if self.rows_written() as u64 != n {
            return Err(StoreError::WriterContract {
                message: format!("finish after {} of {n} rows", self.rows_written()),
            });
        }

        // Prefix-sum the in-degrees into in-offsets; the scatter cursor
        // starts as a copy of the row starts.
        let mut in_offsets = Vec::with_capacity(n as usize + 1);
        in_offsets.push(0u32);
        for &d in &self.in_degrees {
            let last = *in_offsets.last().unwrap_or(&0);
            in_offsets.push(last + d);
        }
        let mut cursor: Vec<u32> = in_offsets[..n as usize].to_vec();
        let mut in_sources = vec![0u32; m as usize];
        let mut in_weights = vec![0f64; m as usize];

        // Streaming scatter: read the spilled out-CSR back in chunks,
        // tracking the source node from the offsets array. Because edges
        // arrive in (source asc, target asc) order and the scatter is
        // stable, every in-row comes out sorted by source.
        let out_offsets = self.out_offsets;
        let node_weights = self.node_weights;
        let path = self.path.clone();
        let options = self.options;
        let (mut targets_reader, targets_hash, targets_path) = self.targets_spill.into_reader()?;
        let (mut weights_reader, weights_hash, weights_path) = self.weights_spill.into_reader()?;
        {
            const CHUNK_EDGES: usize = 64 * 1024;
            let mut tbuf = vec![0u8; CHUNK_EDGES * 4];
            let mut wbuf = vec![0u8; CHUNK_EDGES * 8];
            let mut source = 0u32;
            let mut consumed = 0u64;
            while consumed < m {
                let batch = CHUNK_EDGES.min((m - consumed) as usize);
                targets_reader.read_exact(&mut tbuf[..batch * 4])?;
                weights_reader.read_exact(&mut wbuf[..batch * 8])?;
                for k in 0..batch {
                    let edge_idx = consumed + k as u64;
                    while u64::from(out_offsets[source as usize + 1]) <= edge_idx {
                        source += 1;
                    }
                    let mut t4 = [0u8; 4];
                    t4.copy_from_slice(&tbuf[k * 4..k * 4 + 4]);
                    let target = u32::from_le_bytes(t4);
                    let mut w8 = [0u8; 8];
                    w8.copy_from_slice(&wbuf[k * 8..k * 8 + 8]);
                    let weight = f64::from_le_bytes(w8);
                    let slot = cursor[target as usize];
                    in_sources[slot as usize] = source;
                    in_weights[slot as usize] = weight;
                    cursor[target as usize] = slot + 1;
                }
                consumed += batch as u64;
            }
        }

        let mut sections = vec![
            SectionEntry {
                id: SEC_NODE_WEIGHTS,
                offset: 0,
                len: n * 8,
                checksum: hash_f64s(&node_weights),
            },
            SectionEntry {
                id: SEC_OUT_OFFSETS,
                offset: 0,
                len: (n + 1) * 4,
                checksum: hash_u32s(&out_offsets),
            },
            SectionEntry {
                id: SEC_OUT_TARGETS,
                offset: 0,
                len: m * 4,
                checksum: targets_hash,
            },
            SectionEntry {
                id: SEC_OUT_WEIGHTS,
                offset: 0,
                len: m * 8,
                checksum: weights_hash,
            },
            SectionEntry {
                id: SEC_IN_OFFSETS,
                offset: 0,
                len: (n + 1) * 4,
                checksum: hash_u32s(&in_offsets),
            },
            SectionEntry {
                id: SEC_IN_SOURCES,
                offset: 0,
                len: m * 4,
                checksum: hash_u32s(&in_sources),
            },
            SectionEntry {
                id: SEC_IN_WEIGHTS,
                offset: 0,
                len: m * 8,
                checksum: hash_f64s(&in_weights),
            },
        ];
        let total = plan_offsets(&mut sections);
        let header = Header {
            version: FORMAT_VERSION,
            flags: 0,
            node_count: n,
            edge_count: m,
            variant: options.variant,
            sections,
        };

        let tmp_path = tmp_sibling(&path, "stream");
        {
            let file = File::create(&tmp_path)?;
            let mut out = Emitter::new(BufWriter::new(file));
            out.write_all(&header.encode())?;
            for s in &header.sections {
                out.pad_to(s.offset)?;
                match s.id {
                    SEC_NODE_WEIGHTS => write_f64s(&mut out, &node_weights)?,
                    SEC_OUT_OFFSETS => write_u32s(&mut out, &out_offsets)?,
                    SEC_OUT_TARGETS => {
                        targets_reader.seek(SeekFrom::Start(0))?;
                        copy_stream(&mut targets_reader, &mut out, m * 4)?;
                    }
                    SEC_OUT_WEIGHTS => {
                        weights_reader.seek(SeekFrom::Start(0))?;
                        copy_stream(&mut weights_reader, &mut out, m * 8)?;
                    }
                    SEC_IN_OFFSETS => write_u32s(&mut out, &in_offsets)?,
                    SEC_IN_SOURCES => write_u32s(&mut out, &in_sources)?,
                    SEC_IN_WEIGHTS => write_f64s(&mut out, &in_weights)?,
                    _ => {}
                }
            }
            out.inner.flush()?;
        }
        drop(targets_reader);
        drop(weights_reader);
        let _ = std::fs::remove_file(&targets_path);
        let _ = std::fs::remove_file(&weights_path);
        std::fs::rename(&tmp_path, &path)?;
        Ok(WriteSummary {
            nodes: n,
            edges: m,
            bytes: total,
        })
    }
}

fn copy_stream<R: Read, W: Write>(
    reader: &mut R,
    out: &mut Emitter<W>,
    len: u64,
) -> Result<(), StoreError> {
    let mut remaining = len;
    let mut buf = vec![0u8; 1 << 16];
    while remaining > 0 {
        let chunk = remaining.min(buf.len() as u64) as usize;
        reader.read_exact(&mut buf[..chunk])?;
        out.write_all(&buf[..chunk])?;
        remaining -= chunk as u64;
    }
    Ok(())
}

//! Typed errors for container reading and writing.
//!
//! Every malformed input — truncated file, wrong magic, future version,
//! misaligned or out-of-bounds section, checksum mismatch — maps to a
//! dedicated variant; the crate never panics on untrusted bytes.

use std::fmt;
use std::io;

use pcover_graph::GraphError;

/// Errors raised while writing, probing or loading a `.pcov` container.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying IO failure.
    Io(io::Error),
    /// The file is shorter than a structure the parser needed to read.
    Truncated {
        /// What the parser was reading when the file ended.
        what: &'static str,
        /// Bytes required.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// The first 8 bytes are not the container magic.
    BadMagic {
        /// The bytes found in place of the magic.
        found: [u8; 8],
    },
    /// The container was written by an incompatible format version.
    UnsupportedVersion {
        /// Version stamped in the header.
        found: u32,
        /// The version this build understands.
        supported: u32,
    },
    /// A section offset violates the 64-byte alignment contract.
    MisalignedSection {
        /// Section id (see `format::section_name`).
        section: u32,
        /// The offending file offset.
        offset: u64,
    },
    /// Stored and recomputed checksums disagree for a section (or for the
    /// header itself, `section == 0`).
    ChecksumMismatch {
        /// Section id, or 0 for the header + section table.
        section: u32,
        /// Checksum stored in the section table.
        stored: u64,
        /// Checksum recomputed from the bytes on disk.
        computed: u64,
    },
    /// The section table is structurally invalid: duplicate or missing
    /// sections, lengths inconsistent with the header's node/edge counts,
    /// overlapping or out-of-bounds extents.
    SectionTable {
        /// Human-readable description of the violation.
        message: String,
    },
    /// The sections decoded, but the CSR they describe failed
    /// `PreferenceGraph` validation (or a wrapped JSON load failed).
    InvalidGraph(GraphError),
    /// The requested load path is not available on this platform/build
    /// (e.g. mmap on non-unix or big-endian targets).
    Unsupported {
        /// What is unavailable and why.
        message: &'static str,
    },
    /// A count in the header does not fit in this platform's `usize`.
    TooLarge {
        /// The dimension that overflowed.
        what: &'static str,
    },
    /// The streaming writer was driven out of contract (rows out of order,
    /// wrong row count at finish, invalid weight).
    WriterContract {
        /// What the caller did wrong.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated container: {what} needs {needed} bytes, only {available} available"
            ),
            StoreError::BadMagic { found } => {
                write!(f, "not a pcover container (magic {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "container format version {found} not supported (this build reads version {supported})"
            ),
            StoreError::MisalignedSection { section, offset } => write!(
                f,
                "section {} at offset {offset} violates 64-byte alignment",
                crate::format::section_name(*section)
            ),
            StoreError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {}: stored {stored:#018x}, computed {computed:#018x}",
                crate::format::section_name(*section)
            ),
            StoreError::SectionTable { message } => {
                write!(f, "invalid section table: {message}")
            }
            StoreError::InvalidGraph(e) => write!(f, "container holds an invalid graph: {e}"),
            StoreError::Unsupported { message } => write!(f, "unsupported: {message}"),
            StoreError::TooLarge { what } => {
                write!(f, "container too large for this platform: {what}")
            }
            StoreError::WriterContract { message } => {
                write!(f, "streaming writer misuse: {message}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::InvalidGraph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::InvalidGraph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StoreError::BadMagic {
            found: *b"NOTMAGIC",
        };
        assert!(e.to_string().contains("magic"));

        let e = StoreError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));

        let e = StoreError::ChecksumMismatch {
            section: crate::format::SEC_NODE_WEIGHTS,
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("node_weights"));
    }

    #[test]
    fn io_and_graph_errors_preserve_their_source() {
        let e: StoreError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&e).is_some());
        let e: StoreError = GraphError::EmptyGraph.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}

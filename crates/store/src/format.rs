//! The on-disk container format: header, section table, checksums.
//!
//! A `.pcov` container is a little-endian binary file:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "PCOVCSR1"
//! 8       4     format version (u32, currently 1)
//! 12      4     flags (bit 0: labels section present)
//! 16      8     node count n (u64)
//! 24      8     edge count m (u64)
//! 32      1     variant hint (0 unspecified, 1 independent, 2 normalized)
//! 33      7     reserved, zero
//! 40      4     section count (u32)
//! 44      4     reserved, zero
//! 48      8     header checksum: FNV-1a 64 over bytes [0, 48) + the table
//! 56      32*k  section table, one entry per section:
//!                 { id u32, reserved u32, offset u64, len u64, checksum u64 }
//! ...           sections, each starting at a 64-byte-aligned offset,
//!               zero-padded gaps, each FNV-1a-64 checksummed
//! ```
//!
//! Versioning: readers accept exactly [`FORMAT_VERSION`]; any other version
//! fails with `UnsupportedVersion` (no silent best-effort decoding). Unknown
//! *sections* are tolerated on read — a future writer may append new section
//! ids without breaking old required sections — but unknown header flags are
//! rejected, since flags change the meaning of what is present.

// lint: allow-file(no-index) — header encode/decode indexes fixed offsets into a
// buffer whose length is checked once up front (HEADER_LEN + section table); the
// windows(2) pairs are always length 2 by construction.

use crate::error::StoreError;

/// Magic bytes identifying a pcover CSR container.
pub const MAGIC: [u8; 8] = *b"PCOVCSR1";

/// The container format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Every section begins at a multiple of this alignment so a page-aligned
/// mmap base yields properly aligned `u32`/`f64` slices (and full cache
/// lines) without copying.
pub const SECTION_ALIGN: u64 = 64;

/// Header flag: the optional labels section is present.
pub const FLAG_LABELS: u32 = 1;

/// All flag bits this version understands.
pub const KNOWN_FLAGS: u32 = FLAG_LABELS;

/// Fixed-size part of the header preceding the section table.
pub const HEADER_LEN: u64 = 56;

/// Size of one section table entry.
pub const SECTION_ENTRY_LEN: u64 = 32;

/// Section id: node weights, `n × f64`.
pub const SEC_NODE_WEIGHTS: u32 = 1;
/// Section id: out-CSR row offsets, `(n + 1) × u32`.
pub const SEC_OUT_OFFSETS: u32 = 2;
/// Section id: out-CSR edge targets, `m × u32`.
pub const SEC_OUT_TARGETS: u32 = 3;
/// Section id: out-CSR edge weights, `m × f64`.
pub const SEC_OUT_WEIGHTS: u32 = 4;
/// Section id: in-CSR row offsets, `(n + 1) × u32`.
pub const SEC_IN_OFFSETS: u32 = 5;
/// Section id: in-CSR edge sources, `m × u32`.
pub const SEC_IN_SOURCES: u32 = 6;
/// Section id: in-CSR edge weights, `m × f64`.
pub const SEC_IN_WEIGHTS: u32 = 7;
/// Section id: optional node labels (`n × (u32 length + UTF-8 bytes)`).
pub const SEC_LABELS: u32 = 8;

/// The seven CSR sections every container must carry, in file order.
pub const REQUIRED_SECTIONS: [u32; 7] = [
    SEC_NODE_WEIGHTS,
    SEC_OUT_OFFSETS,
    SEC_OUT_TARGETS,
    SEC_OUT_WEIGHTS,
    SEC_IN_OFFSETS,
    SEC_IN_SOURCES,
    SEC_IN_WEIGHTS,
];

/// Human-readable section name for diagnostics (`probe`, error messages).
pub fn section_name(id: u32) -> &'static str {
    match id {
        0 => "header",
        SEC_NODE_WEIGHTS => "node_weights",
        SEC_OUT_OFFSETS => "out_offsets",
        SEC_OUT_TARGETS => "out_targets",
        SEC_OUT_WEIGHTS => "out_weights",
        SEC_IN_OFFSETS => "in_offsets",
        SEC_IN_SOURCES => "in_sources",
        SEC_IN_WEIGHTS => "in_weights",
        SEC_LABELS => "labels",
        _ => "unknown",
    }
}

/// What the writer claims about the graph's edge-weight semantics. Purely
/// informational metadata: the solver variant is still chosen at solve time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VariantHint {
    /// No claim recorded.
    #[default]
    Unspecified,
    /// Edge weights are independent acceptance probabilities.
    Independent,
    /// Each node's out-weights sum to at most 1.
    Normalized,
}

impl VariantHint {
    /// The byte stored in the header.
    pub fn to_byte(self) -> u8 {
        match self {
            VariantHint::Unspecified => 0,
            VariantHint::Independent => 1,
            VariantHint::Normalized => 2,
        }
    }

    /// Decodes the header byte; unknown values degrade to `Unspecified`
    /// (the hint is advisory, not load-bearing).
    pub fn from_byte(b: u8) -> Self {
        match b {
            1 => VariantHint::Independent,
            2 => VariantHint::Normalized,
            _ => VariantHint::Unspecified,
        }
    }

    /// Name used by `probe` output.
    pub fn name(self) -> &'static str {
        match self {
            VariantHint::Unspecified => "unspecified",
            VariantHint::Independent => "independent",
            VariantHint::Normalized => "normalized",
        }
    }
}

/// One entry of the section table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section id (`SEC_*`).
    pub id: u32,
    /// Absolute file offset of the first byte; multiple of [`SECTION_ALIGN`].
    pub offset: u64,
    /// Exact payload length in bytes (padding excluded).
    pub len: u64,
    /// FNV-1a 64 checksum of the payload bytes.
    pub checksum: u64,
}

/// The decoded fixed header plus section table.
#[derive(Clone, Debug)]
pub struct Header {
    /// Format version stamped in the file.
    pub version: u32,
    /// Flag bits (see `FLAG_*`).
    pub flags: u32,
    /// Number of nodes.
    pub node_count: u64,
    /// Number of directed edges.
    pub edge_count: u64,
    /// Advisory variant metadata.
    pub variant: VariantHint,
    /// Section table in file order.
    pub sections: Vec<SectionEntry>,
}

impl Header {
    /// Looks up a section by id.
    pub fn section(&self, id: u32) -> Option<&SectionEntry> {
        self.sections.iter().find(|s| s.id == id)
    }

    /// Whether the labels section is present (per flags).
    pub fn has_labels(&self) -> bool {
        self.flags & FLAG_LABELS != 0
    }

    /// Total encoded length of header + section table.
    pub fn encoded_len(&self) -> u64 {
        HEADER_LEN + self.sections.len() as u64 * SECTION_ENTRY_LEN
    }

    /// Serializes the header and section table, computing the header
    /// checksum over everything but the checksum field itself.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() as usize);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&self.node_count.to_le_bytes());
        out.extend_from_slice(&self.edge_count.to_le_bytes());
        out.push(self.variant.to_byte());
        out.extend_from_slice(&[0u8; 7]);
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&[0u8; 4]);
        // Placeholder for the checksum; patched below.
        out.extend_from_slice(&[0u8; 8]);
        for s in &self.sections {
            out.extend_from_slice(&s.id.to_le_bytes());
            out.extend_from_slice(&[0u8; 4]);
            out.extend_from_slice(&s.offset.to_le_bytes());
            out.extend_from_slice(&s.len.to_le_bytes());
            out.extend_from_slice(&s.checksum.to_le_bytes());
        }
        let checksum = header_checksum(&out);
        out[48..56].copy_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses and verifies the fixed header from `bytes` (which must hold
    /// at least the fixed part; the table may extend beyond).
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`]s for truncation, bad magic, version or flag
    /// mismatch, checksum mismatch and malformed section counts.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < HEADER_LEN as usize {
            return Err(StoreError::Truncated {
                what: "fixed header",
                needed: HEADER_LEN,
                available: bytes.len() as u64,
            });
        }
        let magic: [u8; 8] = read_array(bytes, 0);
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(read_array(bytes, 8));
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let flags = u32::from_le_bytes(read_array(bytes, 12));
        if flags & !KNOWN_FLAGS != 0 {
            return Err(StoreError::SectionTable {
                message: format!("unknown header flags {:#x}", flags & !KNOWN_FLAGS),
            });
        }
        let node_count = u64::from_le_bytes(read_array(bytes, 16));
        let edge_count = u64::from_le_bytes(read_array(bytes, 24));
        let variant = VariantHint::from_byte(bytes[32]);
        let section_count = u32::from_le_bytes(read_array(bytes, 40)) as usize;
        // 64 sections is far beyond anything this version writes; the cap
        // keeps a corrupt count from driving a huge read.
        if section_count == 0 || section_count > 64 {
            return Err(StoreError::SectionTable {
                message: format!("implausible section count {section_count}"),
            });
        }
        let stored_checksum = u64::from_le_bytes(read_array(bytes, 48));
        let table_len = section_count as u64 * SECTION_ENTRY_LEN;
        let total = HEADER_LEN + table_len;
        if (bytes.len() as u64) < total {
            return Err(StoreError::Truncated {
                what: "section table",
                needed: total,
                available: bytes.len() as u64,
            });
        }
        let encoded = &bytes[..total as usize];
        let computed = header_checksum(encoded);
        if computed != stored_checksum {
            return Err(StoreError::ChecksumMismatch {
                section: 0,
                stored: stored_checksum,
                computed,
            });
        }
        let mut sections = Vec::with_capacity(section_count);
        for i in 0..section_count {
            let base = HEADER_LEN as usize + i * SECTION_ENTRY_LEN as usize;
            sections.push(SectionEntry {
                id: u32::from_le_bytes(read_array(bytes, base)),
                offset: u64::from_le_bytes(read_array(bytes, base + 8)),
                len: u64::from_le_bytes(read_array(bytes, base + 16)),
                checksum: u64::from_le_bytes(read_array(bytes, base + 24)),
            });
        }
        Ok(Header {
            version,
            flags,
            node_count,
            edge_count,
            variant,
            sections,
        })
    }

    /// Structural validation of the section table against the header
    /// counts and the file length: required sections present exactly once,
    /// 64-byte alignment, in-bounds non-overlapping extents, and payload
    /// lengths that match `n`/`m`.
    ///
    /// # Errors
    ///
    /// [`StoreError::SectionTable`] / [`StoreError::MisalignedSection`] /
    /// [`StoreError::Truncated`] describing the first violation found.
    pub fn validate_layout(&self, file_len: u64) -> Result<(), StoreError> {
        let n = self.node_count;
        let m = self.edge_count;
        // The graph indexes nodes and edges with u32; capping here also
        // keeps the length arithmetic below comfortably inside u64.
        if n > u64::from(u32::MAX) {
            return Err(StoreError::TooLarge {
                what: "node count exceeds u32 index space",
            });
        }
        if m > u64::from(u32::MAX) {
            return Err(StoreError::TooLarge {
                what: "edge count exceeds u32 index space",
            });
        }
        let expected_len = |id: u32| -> Option<u64> {
            match id {
                SEC_NODE_WEIGHTS => Some(n * 8),
                SEC_OUT_OFFSETS | SEC_IN_OFFSETS => Some((n + 1) * 4),
                SEC_OUT_TARGETS | SEC_IN_SOURCES => Some(m * 4),
                SEC_OUT_WEIGHTS | SEC_IN_WEIGHTS => Some(m * 8),
                _ => None,
            }
        };
        for id in REQUIRED_SECTIONS {
            let count = self.sections.iter().filter(|s| s.id == id).count();
            if count != 1 {
                return Err(StoreError::SectionTable {
                    message: format!(
                        "section {} appears {count} times (want exactly 1)",
                        section_name(id)
                    ),
                });
            }
        }
        let labels = self.sections.iter().filter(|s| s.id == SEC_LABELS).count();
        if self.has_labels() && labels != 1 {
            return Err(StoreError::SectionTable {
                message: format!("labels flag set but {labels} labels sections present"),
            });
        }
        if !self.has_labels() && labels != 0 {
            return Err(StoreError::SectionTable {
                message: "labels section present without the labels flag".into(),
            });
        }
        let mut extents: Vec<(u64, u64, u32)> = Vec::with_capacity(self.sections.len());
        for s in &self.sections {
            if s.offset % SECTION_ALIGN != 0 {
                return Err(StoreError::MisalignedSection {
                    section: s.id,
                    offset: s.offset,
                });
            }
            if s.offset < self.encoded_len() {
                return Err(StoreError::SectionTable {
                    message: format!(
                        "section {} at offset {} overlaps the header",
                        section_name(s.id),
                        s.offset
                    ),
                });
            }
            let end = s.offset.checked_add(s.len).ok_or(StoreError::TooLarge {
                what: "section extent overflows u64",
            })?;
            if end > file_len {
                return Err(StoreError::Truncated {
                    what: section_name(s.id),
                    needed: end,
                    available: file_len,
                });
            }
            if let Some(want) = expected_len(s.id) {
                if s.len != want {
                    return Err(StoreError::SectionTable {
                        message: format!(
                            "section {} has length {} but header counts require {want}",
                            section_name(s.id),
                            s.len
                        ),
                    });
                }
            }
            extents.push((s.offset, end, s.id));
        }
        extents.sort_unstable();
        for pair in extents.windows(2) {
            if pair[1].0 < pair[0].1 {
                return Err(StoreError::SectionTable {
                    message: format!(
                        "sections {} and {} overlap",
                        section_name(pair[0].2),
                        section_name(pair[1].2)
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Reads a fixed-size array out of `bytes` at `offset`.
///
/// Callers bound-check first (all call sites sit behind explicit length
/// guards), so the copy cannot slice out of range.
fn read_array<const N: usize>(bytes: &[u8], offset: usize) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&bytes[offset..offset + N]);
    out
}

/// FNV-1a 64 over the encoded header + table with the checksum field
/// itself zeroed (bytes 48..56).
fn header_checksum(encoded: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(&encoded[..48]);
    h.update(&[0u8; 8]);
    h.update(&encoded[56..]);
    h.finish()
}

/// Incremental FNV-1a 64-bit hasher — the same checksum the PCG1 binary
/// edge-list format uses, chosen for zero dependencies and streaming use.
#[derive(Clone, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Feeds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Rounds `offset` up to the next multiple of [`SECTION_ALIGN`].
pub fn align_up(offset: u64) -> u64 {
    offset.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        let sections = vec![
            SectionEntry {
                id: SEC_NODE_WEIGHTS,
                offset: 320,
                len: 32,
                checksum: 7,
            },
            SectionEntry {
                id: SEC_OUT_OFFSETS,
                offset: 384,
                len: 20,
                checksum: 8,
            },
        ];
        Header {
            version: FORMAT_VERSION,
            flags: 0,
            node_count: 4,
            edge_count: 3,
            variant: VariantHint::Independent,
            sections,
        }
    }

    #[test]
    fn header_encode_decode_round_trip() {
        let h = sample_header();
        let bytes = h.encode();
        assert_eq!(bytes.len() as u64, h.encoded_len());
        let back = Header::decode(&bytes).expect("round trip");
        assert_eq!(back.node_count, 4);
        assert_eq!(back.edge_count, 3);
        assert_eq!(back.variant, VariantHint::Independent);
        assert_eq!(back.sections, h.sections);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample_header().encode();
        bytes[0] = b'X';
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut h = sample_header();
        h.version = FORMAT_VERSION + 1;
        let bytes = h.encode();
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::UnsupportedVersion { found, .. }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let mut h = sample_header();
        h.flags = 0x80;
        let bytes = h.encode();
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::SectionTable { .. })
        ));
    }

    #[test]
    fn truncated_header_is_typed() {
        let bytes = sample_header().encode();
        assert!(matches!(
            Header::decode(&bytes[..20]),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            Header::decode(&bytes[..HEADER_LEN as usize + 10]),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn flipped_byte_fails_the_header_checksum() {
        let mut bytes = sample_header().encode();
        // Mutate the node count; the header checksum must catch it.
        bytes[16] ^= 0xff;
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::ChecksumMismatch { section: 0, .. })
        ));
    }

    /// A header listing every required section with correct lengths for
    /// `(n, m)`, laid out back-to-back with alignment. Returns the header
    /// and the file length it expects.
    fn full_header(n: u64, m: u64) -> (Header, u64) {
        let mut offset = 320;
        let mut sections = Vec::new();
        for id in REQUIRED_SECTIONS {
            let len = match id {
                SEC_NODE_WEIGHTS => n * 8,
                SEC_OUT_OFFSETS | SEC_IN_OFFSETS => (n + 1) * 4,
                SEC_OUT_TARGETS | SEC_IN_SOURCES => m * 4,
                _ => m * 8,
            };
            sections.push(SectionEntry {
                id,
                offset,
                len,
                checksum: 0,
            });
            offset = align_up(offset + len);
        }
        let h = Header {
            version: FORMAT_VERSION,
            flags: 0,
            node_count: n,
            edge_count: m,
            variant: VariantHint::Unspecified,
            sections,
        };
        (h, offset)
    }

    #[test]
    fn layout_rejects_misalignment_and_overlap() {
        let (mut h, file_len) = full_header(2, 1);
        h.sections[0].offset += 1; // 64-byte alignment broken
        assert!(matches!(
            h.validate_layout(file_len + 64),
            Err(StoreError::MisalignedSection { .. })
        ));

        let (mut h, file_len) = full_header(2, 1);
        h.sections[1].offset = h.sections[0].offset; // overlap
        assert!(matches!(
            h.validate_layout(file_len),
            Err(StoreError::SectionTable { .. })
        ));
    }

    #[test]
    fn layout_rejects_wrong_section_length_and_truncation() {
        let (h, offset) = full_header(2, 1);
        assert!(h.validate_layout(offset).is_ok());
        // Short file: last section truncated.
        assert!(matches!(
            h.validate_layout(offset - 70),
            Err(StoreError::Truncated { .. })
        ));
        // Wrong length for a counted section.
        let mut bad = h.clone();
        bad.sections[0].len += 8;
        assert!(matches!(
            bad.validate_layout(offset + 64),
            Err(StoreError::SectionTable { .. })
        ));
        // Duplicate required section.
        let mut bad = h.clone();
        bad.sections.push(bad.sections[0]);
        assert!(matches!(
            bad.validate_layout(offset),
            Err(StoreError::SectionTable { .. })
        ));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Known FNV-1a 64 vectors.
        let mut h = Fnv1a::new();
        h.update(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn align_up_is_monotone() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 64);
        assert_eq!(align_up(64), 64);
        assert_eq!(align_up(65), 128);
    }
}

//! Determinism regression grid: the dynamic counterpart of the static
//! `par-argmax`/`par-float-accum` audit rules.
//!
//! For a grid of seeds × cover model (IPC, NPC) × budget `k`, the parallel
//! solver (across several thread counts), the partitioned solver, and the
//! delta solvers (sequential and chunked-parallel) must
//! return **bit-identical** output to sequential greedy: same retained set
//! in the same selection order, the same cover to the last mantissa bit,
//! and the same per-step trajectory. Any drift — a changed tie-break, a
//! reordered float reduction — fails here even when it is far below any
//! tolerance, because the paper's parallelization claim (Section 4.2) is
//! *identical* output, not *approximately equal* output.

use rand::{RngExt, SeedableRng};

use pcover_core::{
    delta, greedy, parallel, partitioned, Algorithm, CoverModel, Independent, Normalized, SolveCtx,
    SolveReport, WarmState,
};
use pcover_graph::delta::{apply, Change, GraphDelta};
use pcover_graph::{DuplicateEdgePolicy, GraphBuilder, ItemId, PreferenceGraph};

const SEEDS: [u64; 4] = [0, 1, 7, 42];
const THREADS: [usize; 4] = [1, 2, 3, 8];

/// One connected-ish random graph: every node gets a few out-edges.
fn random_graph(n: usize, seed: u64) -> PreferenceGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new()
        .normalize_node_weights(true)
        .duplicate_edge_policy(DuplicateEdgePolicy::Max);
    let ids: Vec<ItemId> = (0..n)
        .map(|_| b.add_node(rng.random_range(1.0..50.0)))
        .collect();
    for &v in &ids {
        for _ in 0..3 {
            let u = ids[rng.random_range(0..n)];
            if u != v {
                b.add_edge(v, u, rng.random_range(0.05..0.95))
                    .expect("edge endpoints exist");
            }
        }
    }
    b.build().expect("valid graph")
}

/// A graph of disjoint clusters, so the partitioned solver actually has
/// several components to merge.
fn clustered_graph(clusters: usize, cluster_size: usize, seed: u64) -> PreferenceGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new()
        .normalize_node_weights(true)
        .duplicate_edge_policy(DuplicateEdgePolicy::Max);
    let ids: Vec<ItemId> = (0..clusters * cluster_size)
        .map(|_| b.add_node(rng.random_range(1.0..50.0)))
        .collect();
    for c in 0..clusters {
        let base = c * cluster_size;
        for i in 0..cluster_size {
            for _ in 0..2 {
                let j = rng.random_range(0..cluster_size);
                if i != j {
                    b.add_edge(ids[base + i], ids[base + j], rng.random_range(0.05..0.95))
                        .expect("edge endpoints exist");
                }
            }
        }
    }
    b.build().expect("valid graph")
}

/// Bit-identity assertion between two solve reports. `assert_eq!` on the
/// raw bit patterns, so -0.0 vs 0.0 or a 1-ulp drift fails loudly with the
/// offending context in the message.
fn assert_bit_identical(seq: &SolveReport, other: &SolveReport, ctx: &str) {
    assert_eq!(seq.order, other.order, "retained set drifted: {ctx}");
    assert_eq!(
        seq.cover.to_bits(),
        other.cover.to_bits(),
        "cover not bit-identical ({} vs {}): {ctx}",
        seq.cover,
        other.cover
    );
    let seq_traj: Vec<u64> = seq.trajectory.iter().map(|c| c.to_bits()).collect();
    let other_traj: Vec<u64> = other.trajectory.iter().map(|c| c.to_bits()).collect();
    assert_eq!(seq_traj, other_traj, "trajectory drifted: {ctx}");
}

fn run_grid<M: CoverModel>(model_name: &str, g: &PreferenceGraph, graph_name: &str) {
    let n = g.node_count();
    for k in [1, 2, n / 4, n / 2, n] {
        let k = k.max(1);
        let seq = greedy::solve::<M>(g, k).expect("sequential greedy");
        for threads in THREADS {
            let (par, _) = parallel::solve::<M>(g, k, threads).expect("parallel greedy");
            assert_bit_identical(
                &seq,
                &par,
                &format!("{graph_name} {model_name} k={k} threads={threads}"),
            );
        }
        let part = partitioned::solve::<M>(g, k).expect("partitioned greedy");
        assert_bit_identical(
            &seq,
            &part,
            &format!("{graph_name} {model_name} k={k} partitioned"),
        );
        let del = delta::solve::<M>(g, k).expect("delta greedy");
        assert_bit_identical(
            &seq,
            &del,
            &format!("{graph_name} {model_name} k={k} delta"),
        );
        for threads in THREADS {
            let dpar = delta::parallel_solve::<M>(g, k, threads).expect("delta-parallel greedy");
            assert_bit_identical(
                &seq,
                &dpar,
                &format!("{graph_name} {model_name} k={k} delta-parallel threads={threads}"),
            );
        }
    }
}

/// A deterministic perturbation of `g`: edge reweights, and (when
/// `edge_only` is false) node reweights that force a full renormalization —
/// the worst case for the warm dirty set, since every weight drifts.
fn perturbing_delta(g: &PreferenceGraph, changes: usize, seed: u64, edge_only: bool) -> GraphDelta {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed);
    let n = g.node_count();
    let mut delta = GraphDelta::new();
    for i in 0..changes {
        let v = ItemId::from_index(rng.random_range(0..n));
        if edge_only || i % 2 == 0 {
            let mut u = ItemId::from_index(rng.random_range(0..n));
            if u == v {
                u = ItemId::from_index((v.index() + 1) % n);
            }
            delta = delta.push(Change::UpsertEdge {
                source: v,
                target: u,
                weight: rng.random_range(0.05..0.95),
            });
        } else {
            delta = delta.push(Change::SetNodeWeight {
                node: v,
                weight: rng.random_range(1.0..50.0),
            });
        }
    }
    delta
}

/// The warm axis: for every budget, a warm re-solve seeded from the
/// pre-delta solution must be bit-identical to a cold delta-greedy solve of
/// the post-delta graph, with every round accounted as reused or repaired.
fn run_warm_grid<M: CoverModel>(
    model_name: &str,
    g: &PreferenceGraph,
    graph_delta: &GraphDelta,
    edge_only: bool,
    ctx_name: &str,
) {
    let g2 = apply(g, graph_delta).expect("delta applies");
    let touched = graph_delta.touched_nodes(g);
    let n = g2.node_count();
    for k in [1, 2, n / 4, n / 2, n] {
        let k = k.max(1);
        let before = delta::solve::<M>(g, k).expect("cold pre-delta solve");
        let warm_state = WarmState::capture::<M>(g, &before.order);
        let cold = delta::solve::<M>(&g2, k).expect("cold post-delta solve");
        let mut ctx = SolveCtx::default();
        let warm = delta::resolve_warm::<M>(
            &g2,
            k,
            &touched,
            &warm_state,
            Algorithm::DeltaGreedy,
            &mut ctx,
        )
        .expect("warm re-solve");
        let label = format!("{ctx_name} {model_name} k={k} warm-vs-cold");
        assert_bit_identical(&cold, &warm.report, &label);
        assert_eq!(
            warm.rounds_reused + warm.rounds_repaired,
            k,
            "round accounting must partition the budget: {label}"
        );
        if edge_only && touched.len() < n {
            // No renormalization → only the touched frontier re-evaluates in
            // round 0, so the warm solve must beat the cold one outright.
            assert!(
                warm.report.gain_evaluations < cold.gain_evaluations,
                "warm {} evals vs cold {}: {label}",
                warm.report.gain_evaluations,
                cold.gain_evaluations
            );
        }
    }
}

#[test]
fn warm_resolve_matches_cold_across_seeds_models_and_delta_sizes() {
    for seed in SEEDS {
        let g = random_graph(60, seed);
        // Delta sizes: single edge, several edges, and a mixed batch whose
        // node reweights renormalize every weight (full-drift worst case).
        for (dseed, changes, edge_only) in [
            (seed, 1, true),
            (seed + 100, 4, true),
            (seed + 200, 6, false),
        ] {
            let delta = perturbing_delta(&g, changes, dseed, edge_only);
            let ctx = format!("random(seed={seed}) delta(seed={dseed},changes={changes})");
            run_warm_grid::<Independent>("IPC", &g, &delta, edge_only, &ctx);
            run_warm_grid::<Normalized>("NPC", &g, &delta, edge_only, &ctx);
        }
    }
}

#[test]
fn parallel_and_partitioned_match_greedy_on_random_graphs() {
    for seed in SEEDS {
        let g = random_graph(60, seed);
        run_grid::<Independent>("IPC", &g, &format!("random(seed={seed})"));
        run_grid::<Normalized>("NPC", &g, &format!("random(seed={seed})"));
    }
}

#[test]
fn parallel_and_partitioned_match_greedy_on_clustered_graphs() {
    // Disjoint components exercise the partitioned solver's k-way merge:
    // per-component greedy sequences must interleave back into exactly the
    // global greedy order.
    for seed in SEEDS {
        let g = clustered_graph(6, 10, seed);
        run_grid::<Independent>("IPC", &g, &format!("clustered(seed={seed})"));
        run_grid::<Normalized>("NPC", &g, &format!("clustered(seed={seed})"));
    }
}

#[test]
fn delta_evaluates_strictly_fewer_gains_at_scale() {
    // The point of the dirty set: on every n >= 100 grid point (with k >= 2
    // so at least one round can skip clean candidates), delta must do
    // strictly less gain-evaluation work than plain greedy while staying
    // bit-identical.
    for seed in SEEDS {
        let g = random_graph(120, seed);
        let n = g.node_count();
        for k in [2, n / 4, n / 2, n] {
            let seq = greedy::solve::<Independent>(&g, k).expect("sequential greedy");
            let del = delta::solve::<Independent>(&g, k).expect("delta greedy");
            assert_bit_identical(&seq, &del, &format!("eval-count seed={seed} k={k}"));
            assert!(
                del.gain_evaluations < seq.gain_evaluations,
                "seed={seed} k={k}: delta {} evals vs greedy {}",
                del.gain_evaluations,
                seq.gain_evaluations
            );
        }
    }
}

#[test]
fn thread_count_never_changes_output() {
    // Same graph, same k, every thread count: one canonical answer.
    let g = random_graph(45, 3);
    for k in [5, 20] {
        let (base, _) = parallel::solve::<Normalized>(&g, k, 1).expect("single thread");
        for threads in [2, 4, 5, 16] {
            let (par, _) = parallel::solve::<Normalized>(&g, k, threads).expect("parallel");
            assert_bit_identical(&base, &par, &format!("k={k} threads={threads}"));
        }
    }
}

//! Registry-driven conformance suite: every registered solver, under every
//! variant it supports, across several seeds, must satisfy the shared
//! report invariants. Because the suite iterates [`Registry::builtin`]
//! instead of naming solvers, a newly registered solver is covered
//! automatically — and a solver that silently drops out of the registry
//! fails the enum cross-check below.

use rand::{RngExt, SeedableRng};

use pcover_core::{
    Algorithm, Registry, SolveCtx, SolveError, SolverConfig, TraceObserver, Variant,
};
use pcover_graph::{GraphBuilder, ItemId, PreferenceGraph};

const SEEDS: [u64; 3] = [0, 7, 42];

/// A random graph valid for *both* variants: out-weight sums stay at most 1
/// (each node gets at most 2 out-edges of weight at most 0.5), so the NPC
/// semantics — and the Theorem 3.1 reduction behind the `maxvc` solver —
/// are exact, while IPC is unrestricted anyway.
fn random_graph(n: usize, seed: u64) -> PreferenceGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new().normalize_node_weights(true);
    let ids: Vec<ItemId> = (0..n)
        .map(|_| b.add_node(rng.random_range(1.0..50.0)))
        .collect();
    for &v in &ids {
        let mut used = std::collections::HashSet::new();
        for _ in 0..rng.random_range(0..3usize) {
            let u = ids[rng.random_range(0..n)];
            if u != v && used.insert(u) {
                b.add_edge(v, u, rng.random_range(0.05..=0.5))
                    .expect("edge endpoints exist");
            }
        }
    }
    b.build().expect("valid graph")
}

#[test]
fn every_solver_satisfies_shared_invariants() {
    let registry = Registry::builtin();
    for seed in SEEDS {
        let g = random_graph(24, seed);
        let k = 6;
        for spec in registry.specs() {
            for variant in [Variant::Independent, Variant::Normalized] {
                let mut ctx = SolveCtx::new(SolverConfig::default());
                let result = spec.solve(variant, &g, k, &mut ctx);
                if !spec.caps.variants.supports(variant) {
                    assert!(
                        matches!(result, Err(SolveError::UnsupportedVariant { .. })),
                        "{}/{variant:?}: expected UnsupportedVariant",
                        spec.name
                    );
                    continue;
                }
                let report = result.unwrap_or_else(|e| {
                    panic!("{}/{variant:?} seed {seed} failed: {e}", spec.name)
                });

                let label = format!("{}/{variant:?} seed {seed}", spec.name);

                // Budget: exactly k, or at most k for solvers that may
                // legitimately under-fill (sieve streaming).
                if spec.caps.fills_budget {
                    assert_eq!(report.order.len(), k, "{label}: order must fill k");
                } else {
                    assert!(report.order.len() <= k, "{label}: order exceeds k");
                }
                assert_eq!(
                    report.order.len(),
                    report.trajectory.len(),
                    "{label}: one trajectory point per selection"
                );
                assert_eq!(report.variant, variant, "{label}: variant tag");
                assert_eq!(report.algorithm, spec.algorithm, "{label}: algorithm tag");

                // Monotonicity: the trajectory never decreases.
                for w in report.trajectory.windows(2) {
                    assert!(w[1] >= w[0] - 1e-12, "{label}: trajectory decreased {w:?}");
                }

                // The I-array accounts for the cover exactly.
                let item_sum = pcover_core::float::sum_stable(report.item_cover.iter().copied());
                assert!(
                    (report.cover - item_sum).abs() <= 1e-9,
                    "{label}: cover {} != item_cover sum {}",
                    report.cover,
                    item_sum
                );

                // Work was measured.
                assert!(
                    report.gain_evaluations > 0,
                    "{label}: no evaluations counted"
                );

                // Determinism: a second run under the same config is
                // bit-identical.
                let mut ctx2 = SolveCtx::new(SolverConfig::default());
                let again = spec
                    .solve(variant, &g, k, &mut ctx2)
                    .unwrap_or_else(|e| panic!("{label}: rerun failed: {e}"));
                assert_eq!(report.order, again.order, "{label}: order drifted");
                assert_eq!(
                    report.cover.to_bits(),
                    again.cover.to_bits(),
                    "{label}: cover drifted"
                );
            }
        }
    }
}

#[test]
fn observer_stream_matches_returned_report_for_every_solver() {
    let registry = Registry::builtin();
    let g = random_graph(24, 1);
    let k = 5;
    for spec in registry.specs() {
        for variant in [Variant::Independent, Variant::Normalized] {
            if !spec.caps.variants.supports(variant) {
                continue;
            }
            let mut trace = TraceObserver::new();
            let mut ctx = SolveCtx::with_observer(SolverConfig::default(), &mut trace);
            let report = spec
                .solve(variant, &g, k, &mut ctx)
                .unwrap_or_else(|e| panic!("{}/{variant:?} failed: {e}", spec.name));
            let items: Vec<ItemId> = trace.events.iter().map(|e| e.item).collect();
            assert_eq!(
                items, report.order,
                "{}/{variant:?}: observer items must mirror the order",
                spec.name
            );
            for (e, (&t, i)) in trace
                .events
                .iter()
                .zip(report.trajectory.iter().zip(0usize..))
            {
                assert_eq!(e.iter, i, "{}: iteration index", spec.name);
                assert!(
                    (e.cover - t).abs() <= 1e-9,
                    "{}/{variant:?}: observed cover {} vs trajectory {}",
                    spec.name,
                    e.cover,
                    t
                );
            }
        }
    }
}

/// An observer whose cancellation flag flips after a fixed number of
/// selections (0 = cancelled from the start).
struct CancelAfter {
    selections: usize,
    after: usize,
}

impl pcover_core::Observer for CancelAfter {
    fn on_select(&mut self, _iter: usize, _item: ItemId, _gain: f64, _cover: f64) {
        self.selections += 1;
    }

    fn cancelled(&mut self) -> bool {
        self.selections >= self.after
    }
}

#[test]
fn every_solver_returns_cancelled_when_cancellation_is_signalled_up_front() {
    let registry = Registry::builtin();
    let g = random_graph(24, 3);
    for spec in registry.specs() {
        for variant in [Variant::Independent, Variant::Normalized] {
            if !spec.caps.variants.supports(variant) {
                continue;
            }
            let mut obs = CancelAfter {
                selections: 0,
                after: 0,
            };
            let mut ctx = SolveCtx::with_observer(SolverConfig::default(), &mut obs);
            let result = spec.solve(variant, &g, 6, &mut ctx);
            assert!(
                matches!(result, Err(SolveError::Cancelled)),
                "{}/{variant:?}: pre-cancelled observer must abort the solve, got {result:?}",
                spec.name
            );
            assert_eq!(
                obs.selections, 0,
                "{}/{variant:?}: no selections may be emitted after cancellation",
                spec.name
            );
        }
    }
}

#[test]
fn live_solvers_abort_mid_solve_when_cancelled_after_first_selection() {
    // The solvers that thread the ctx through their selection loop must
    // notice a cancellation raised *during* the solve, not only on entry.
    let registry = Registry::builtin();
    let g = random_graph(24, 4);
    let k = 6;
    for name in [
        "greedy",
        "lazy",
        "delta",
        "delta-parallel",
        "parallel",
        "stochastic",
    ] {
        let spec = registry.get(name).unwrap_or_else(|| {
            panic!("{name} must be registered");
        });
        let mut obs = CancelAfter {
            selections: 0,
            after: 1,
        };
        let mut ctx = SolveCtx::with_observer(SolverConfig::default(), &mut obs);
        let result = spec.solve(Variant::Normalized, &g, k, &mut ctx);
        assert!(
            matches!(result, Err(SolveError::Cancelled)),
            "{name}: cancel-after-one-selection must abort mid-solve, got {result:?}"
        );
        assert!(
            obs.selections < k,
            "{name}: solve ran to completion despite cancellation"
        );
        // The same spec solves fine once the flag is withdrawn: the worker
        // (and the registry entry) remain reusable after a cancellation.
        let mut ctx = SolveCtx::new(SolverConfig::default());
        assert!(
            spec.solve(Variant::Normalized, &g, k, &mut ctx).is_ok(),
            "{name}: solver must be reusable after a cancelled run"
        );
    }
}

#[test]
fn algorithm_enum_and_registry_are_one_to_one() {
    let registry = Registry::builtin();
    // Every enum variant is reachable through a registered solver...
    for algo in Algorithm::ALL {
        assert!(
            registry.specs().iter().any(|s| s.algorithm == algo),
            "{algo:?} has no registered solver"
        );
        assert!(
            registry.get(algo.cli_name()).is_some(),
            "{}: cli name not registered",
            algo.cli_name()
        );
    }
    // ...and every registered solver tags its reports with a listed variant.
    for spec in registry.specs() {
        assert!(
            Algorithm::ALL.contains(&spec.algorithm),
            "{}: algorithm not in Algorithm::ALL",
            spec.name
        );
    }
}

#[test]
fn readme_algorithm_table_is_generated_from_the_registry() {
    let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(readme_path).expect("workspace README exists");
    let table = Registry::builtin().markdown_table();
    assert!(
        readme.contains(&table),
        "README.md's algorithm table is out of date; regenerate it from \
         Registry::builtin().markdown_table():\n{table}"
    );
}

//! Property-based tests for the solver crate: the paper's structural claims
//! (monotonicity, submodularity, approximation bounds, reduction
//! equivalence) checked on random instances.

use proptest::prelude::*;

use pcover_core::brute_force::{self, BruteForceOptions};
use pcover_core::{
    baselines, cover_value, greedy, lazy, minimize, parallel, CoverModel, CoverState, Independent,
    Normalized,
};
use pcover_graph::{DuplicateEdgePolicy, GraphBuilder, ItemId, PreferenceGraph};

/// Random well-formed preference graphs, optionally obeying the Normalized
/// out-sum invariant.
fn arb_graph(max_nodes: usize, normalized: bool) -> impl Strategy<Value = PreferenceGraph> {
    (3..=max_nodes)
        .prop_flat_map(move |n| {
            let weights = proptest::collection::vec(1u32..100, n);
            let max_w = if normalized { 0.45 } else { 1.0 };
            let edges =
                proptest::collection::vec((0..n, 0..n, 0.01f64..=max_w), 0..(n * 2).min(48));
            (Just(n), weights, edges)
        })
        .prop_map(move |(n, weights, edges)| {
            let mut b = GraphBuilder::new()
                .normalize_node_weights(true)
                .duplicate_edge_policy(DuplicateEdgePolicy::KeepFirst);
            let ids: Vec<ItemId> = weights.iter().map(|&w| b.add_node(w as f64)).collect();
            let mut out_budget = vec![2usize; n];
            for (s, t, w) in edges {
                // Keep at most 2 out-edges per node so normalized graphs
                // respect the out-sum <= 1 invariant (2 * 0.45 < 1).
                if s != t && (!normalized || out_budget[s] > 0) {
                    b.add_edge(ids[s], ids[t], w).expect("edge weight in range");
                    out_budget[s] = out_budget[s].saturating_sub(1);
                }
            }
            b.build().expect("generated graph is valid")
        })
}

fn mask_of(n: usize, bits: u32) -> Vec<bool> {
    (0..n).map(|i| bits >> i & 1 == 1).collect()
}

fn check_monotone_submodular<M: CoverModel>(g: &PreferenceGraph) -> Result<(), TestCaseError> {
    let n = g.node_count();
    prop_assume!(n <= 10);
    // For random nested pairs S ⊂ T and elements x, check both properties.
    for bits in [0u32, 1, 3, 5, 0b1010, 0b0110] {
        let bits = bits & ((1 << n) - 1);
        let s_mask = mask_of(n, bits);
        let c_s = cover_value::<M>(g, &s_mask);
        for extra in 0..n {
            if bits >> extra & 1 == 1 {
                continue;
            }
            let t_bits = bits | (1 << extra);
            let t_mask = mask_of(n, t_bits);
            let c_t = cover_value::<M>(g, &t_mask);
            // Monotone.
            prop_assert!(c_t >= c_s - 1e-12, "monotonicity violated");
            for x in 0..n {
                if t_bits >> x & 1 == 1 {
                    continue;
                }
                let c_sx = cover_value::<M>(g, &mask_of(n, bits | (1 << x)));
                let c_tx = cover_value::<M>(g, &mask_of(n, t_bits | (1 << x)));
                // Submodular: marginal at S >= marginal at T.
                prop_assert!(
                    c_sx - c_s >= c_tx - c_t - 1e-9,
                    "submodularity violated: {} < {}",
                    c_sx - c_s,
                    c_tx - c_t
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn independent_cover_is_monotone_submodular(g in arb_graph(10, false)) {
        check_monotone_submodular::<Independent>(&g)?;
    }

    #[test]
    fn normalized_cover_is_monotone_submodular(g in arb_graph(10, true)) {
        check_monotone_submodular::<Normalized>(&g)?;
    }

    #[test]
    fn incremental_state_matches_scratch_eval(g in arb_graph(12, false), seed in 0u64..1000) {
        // Add nodes in a pseudo-random order; after every step the
        // incremental cover and I array must match a from-scratch eval.
        let n = g.node_count();
        let mut order: Vec<ItemId> = g.node_ids().collect();
        // Deterministic shuffle keyed by the seed.
        order.sort_by_key(|v| (v.raw().wrapping_mul(2654435761).wrapping_add(seed as u32)) % 1000);

        let mut st_i = CoverState::new(n);
        let mut st_n = CoverState::new(n);
        for &v in order.iter().take(n.min(6)) {
            st_i.add_node::<Independent>(&g, v);
            st_n.add_node::<Normalized>(&g, v);
            let scratch_i = cover_value::<Independent>(&g, st_i.selection_mask());
            let scratch_n = cover_value::<Normalized>(&g, st_n.selection_mask());
            prop_assert!((st_i.cover() - scratch_i).abs() < 1e-9);
            prop_assert!((st_n.cover() - scratch_n).abs() < 1e-9);
            let i_sum: f64 = st_i.item_cover().iter().sum();
            prop_assert!((st_i.cover() - i_sum).abs() < 1e-9);
        }
    }

    #[test]
    fn gain_equals_realized_gain(g in arb_graph(12, false)) {
        let mut st = CoverState::new(g.node_count());
        for v in g.node_ids().take(5) {
            let predicted = st.gain::<Independent>(&g, v);
            let realized = st.add_node::<Independent>(&g, v);
            prop_assert!((predicted - realized).abs() < 1e-12);
        }
    }

    #[test]
    fn greedy_achieves_its_bound_vs_brute_force(g in arb_graph(9, false), k_frac in 0.2f64..0.9) {
        let n = g.node_count();
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let bf = brute_force::solve::<Independent>(&g, k, &BruteForceOptions::default()).unwrap();
        let gr = greedy::solve::<Independent>(&g, k).unwrap();
        prop_assert!(gr.cover <= bf.cover + 1e-9);
        prop_assert!(gr.cover >= (1.0 - 1.0 / std::f64::consts::E) * bf.cover - 1e-9);
    }

    #[test]
    fn npc_greedy_achieves_its_bound_on_valid_instances(
        g in arb_graph(9, true),
        k_frac in 0.2f64..0.9,
    ) {
        // The max{1 - 1/e, 1 - (1 - k/n)^2} bound holds for graphs obeying
        // the Normalized invariant (out-weight sums <= 1); outside it the
        // instance is not an NPC_k problem at all.
        let n = g.node_count();
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let bf_n = brute_force::solve::<Normalized>(&g, k, &BruteForceOptions::default()).unwrap();
        let gr_n = greedy::solve::<Normalized>(&g, k).unwrap();
        let bound = pcover_core::bounds::greedy_ratio_npc(k as f64 / n as f64);
        prop_assert!(gr_n.cover >= bound * bf_n.cover - 1e-9,
            "NPC greedy {} below bound {} of optimum {}", gr_n.cover, bound, bf_n.cover);
    }

    #[test]
    fn lazy_matches_plain_cover(g in arb_graph(14, false), k_frac in 0.1f64..1.0) {
        let n = g.node_count();
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let plain = greedy::solve::<Independent>(&g, k).unwrap();
        let lz = lazy::solve::<Independent>(&g, k).unwrap();
        prop_assert!((plain.cover - lz.cover).abs() < 1e-9);
        prop_assert_eq!(plain.order.len(), lz.order.len());
    }

    #[test]
    fn parallel_matches_plain_exactly(g in arb_graph(14, false), threads in 1usize..5) {
        let k = (g.node_count() / 2).max(1);
        let plain = greedy::solve::<Normalized>(&g, k).unwrap();
        let (par, stats) = parallel::solve::<Normalized>(&g, k, threads).unwrap();
        prop_assert_eq!(&plain.order, &par.order);
        prop_assert!((plain.cover - par.cover).abs() < 1e-12);
        prop_assert_eq!(stats.per_thread_ops.len(), threads);
    }

    #[test]
    fn greedy_dominates_baselines(g in arb_graph(14, false), k_frac in 0.1f64..0.9) {
        let n = g.node_count();
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let gr = greedy::solve::<Independent>(&g, k).unwrap();
        let tw = baselines::top_k_weight::<Independent>(&g, k).unwrap();
        let tc = baselines::top_k_coverage::<Independent>(&g, k).unwrap();
        let rnd = baselines::random::<Independent>(&g, k, 17).unwrap();
        // Pointwise domination of a baseline is not a theorem (greedy is a
        // (1 - 1/e)-approximation, not optimal), but every baseline is at
        // most OPT, so greedy must reach (1 - 1/e) of the best of them.
        let best_baseline = tw.cover.max(tc.cover).max(rnd.cover);
        let ratio = 1.0 - 1.0 / std::f64::consts::E;
        prop_assert!(
            gr.cover >= ratio * best_baseline - 1e-9,
            "greedy {} below (1-1/e) of best baseline {}",
            gr.cover,
            best_baseline
        );
        // For k = 1 greedy IS the exact singleton argmax, hence dominant.
        let gr1 = greedy::solve::<Independent>(&g, 1).unwrap();
        let tc1 = baselines::top_k_coverage::<Independent>(&g, 1).unwrap();
        let tw1 = baselines::top_k_weight::<Independent>(&g, 1).unwrap();
        prop_assert!((gr1.cover - tc1.cover).abs() < 1e-9);
        prop_assert!(gr1.cover >= tw1.cover - 1e-9);
    }

    #[test]
    fn trajectory_is_monotone_and_ends_at_cover(g in arb_graph(14, false)) {
        let k = g.node_count();
        let r = greedy::solve::<Independent>(&g, k).unwrap();
        prop_assert_eq!(r.trajectory.len(), k);
        for w in r.trajectory.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        prop_assert!((r.trajectory[k - 1] - r.cover).abs() < 1e-12);
        prop_assert!((r.cover - 1.0).abs() < 1e-9, "full retention covers all");
    }

    #[test]
    fn minimize_is_consistent_with_trajectory(g in arb_graph(12, false), threshold in 0.1f64..0.9) {
        let full = lazy::solve::<Independent>(&g, g.node_count()).unwrap();
        let expected = full.smallest_prefix_reaching(threshold);
        let got = minimize::greedy_min_cover::<Independent>(&g, threshold).unwrap();
        prop_assert_eq!(Some(got.set_size()), expected);
        prop_assert!(got.report.cover >= threshold - 1e-12);
        // One fewer greedy item falls short (minimality along the greedy
        // order).
        if got.set_size() > 0 {
            let (_, prev) = full.prefix(got.set_size() - 1).unwrap_or((&[], 0.0));
            prop_assert!(prev < threshold);
        }
    }

    #[test]
    fn greedy_prefix_property(g in arb_graph(12, false)) {
        // §3.2 "Additional Advantages": the first k' items of a greedy
        // solution for k ARE the greedy solution for k', with the same
        // cover.
        let n = g.node_count();
        let full = greedy::solve::<Independent>(&g, n).unwrap();
        for k_prime in [1, n / 2, n - 1] {
            let direct = greedy::solve::<Independent>(&g, k_prime).unwrap();
            let (prefix, prefix_cover) = full.prefix(k_prime).unwrap();
            prop_assert_eq!(prefix, &direct.order[..]);
            prop_assert!((prefix_cover - direct.cover).abs() < 1e-9);
        }
    }

    #[test]
    fn stochastic_greedy_within_loose_bound(g in arb_graph(14, false), seed in 0u64..100) {
        let n = g.node_count();
        let k = (n / 2).max(1);
        let full = greedy::solve::<Independent>(&g, k).unwrap();
        let fast = pcover_core::stochastic::solve::<Independent>(
            &g,
            k,
            &pcover_core::stochastic::StochasticOptions { epsilon: 0.1, seed },
        )
        .unwrap();
        prop_assert_eq!(fast.k(), k);
        // In-expectation bound is 1 - 1/e - 0.1 ~ 0.53 of OPT; individual
        // runs fluctuate, so assert a loose 0.45 of greedy (<= OPT).
        prop_assert!(
            fast.cover >= 0.45 * full.cover,
            "stochastic {} vs greedy {}", fast.cover, full.cover
        );
    }

    #[test]
    fn sieve_streaming_within_loose_bound(g in arb_graph(14, false)) {
        let n = g.node_count();
        let k = (n / 2).max(1);
        let full = greedy::solve::<Independent>(&g, k).unwrap();
        let sv = pcover_core::streaming::solve::<Independent>(
            &g,
            k,
            &pcover_core::streaming::SieveOptions { epsilon: 0.1 },
        )
        .unwrap();
        prop_assert!(sv.k() <= k);
        prop_assert!(
            sv.cover >= (0.5 - 0.1 - 0.05) * full.cover,
            "sieve {} vs greedy {}", sv.cover, full.cover
        );
    }

    #[test]
    fn local_search_never_degrades_and_random_improves(g in arb_graph(12, false), seed in 0u64..50) {
        let n = g.node_count();
        let k = (n / 3).max(1);
        let start = baselines::random::<Independent>(&g, k, seed).unwrap();
        let refined = pcover_core::local_search::refine::<Independent>(
            &g,
            &start.order,
            &pcover_core::local_search::LocalSearchOptions::default(),
        )
        .unwrap();
        prop_assert!(refined.report.cover >= start.cover - 1e-12);
        prop_assert_eq!(refined.report.k(), k);
        // Result is a valid selection: cover matches scratch eval.
        let mut mask = vec![false; n];
        for &v in &refined.report.order {
            prop_assert!(!mask[v.index()], "duplicate in refined selection");
            mask[v.index()] = true;
        }
        let scratch = cover_value::<Independent>(&g, &mask);
        prop_assert!((refined.report.cover - scratch).abs() < 1e-9);
    }

    #[test]
    fn low_memory_normalized_equals_standard(g in arb_graph(14, true), k_frac in 0.1f64..1.0) {
        let n = g.node_count();
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let standard = greedy::solve::<Normalized>(&g, k).unwrap();
        let low_mem = greedy::solve_low_memory_normalized(&g, k).unwrap();
        prop_assert_eq!(&standard.order, &low_mem.order);
        prop_assert!((standard.cover - low_mem.cover).abs() < 1e-9);
    }

    #[test]
    fn partitioned_matches_plain_greedy_cover(g in arb_graph(16, false), k_frac in 0.1f64..1.0) {
        let n = g.node_count();
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let plain = greedy::solve::<Independent>(&g, k).unwrap();
        let part = pcover_core::partitioned::solve::<Independent>(&g, k).unwrap();
        prop_assert!(
            (plain.cover - part.cover).abs() < 1e-9,
            "plain {} vs partitioned {}", plain.cover, part.cover
        );
        prop_assert_eq!(part.k(), k);
    }

    #[test]
    fn evaluate_selection_matches_scratch(g in arb_graph(12, true), seed in 0u64..50) {
        let n = g.node_count();
        let k = (n / 2).max(1);
        let sel = baselines::random::<Normalized>(&g, k, seed).unwrap().order;
        let report = baselines::evaluate_selection::<Normalized>(&g, &sel).unwrap();
        let mut mask = vec![false; n];
        for &v in &sel {
            mask[v.index()] = true;
        }
        prop_assert!((report.cover - cover_value::<Normalized>(&g, &mask)).abs() < 1e-9);
    }

    #[test]
    fn coverage_metadata_in_unit_range(g in arb_graph(12, true), k_frac in 0.1f64..0.9) {
        let n = g.node_count();
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let r = greedy::solve::<Normalized>(&g, k).unwrap();
        for v in g.node_ids() {
            let c = r.coverage_of(&g, v);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c), "coverage {} out of range", c);
        }
        for &v in &r.order {
            prop_assert!((r.coverage_of(&g, v) - 1.0).abs() < 1e-9);
        }
    }
}

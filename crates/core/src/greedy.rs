//! Algorithm 1 — the paper's plain greedy scheme.
//!
//! At each of `k` iterations, scan every non-retained node, compute its
//! marginal gain with Algorithm 2 (Normalized) or 4 (Independent), and
//! retain the best with Algorithm 3 / 5. `O(nkD)` total.
//!
//! Ties are broken toward the smallest node id, so results are fully
//! deterministic and comparable across the greedy family.

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use std::time::Instant;

use pcover_graph::{ItemId, PreferenceGraph};

use crate::cover::CoverState;
use crate::report::{Algorithm, SolveReport};
use crate::solver::{RoundStats, SolveCtx, Solver, SolverCaps, SolverSpec, VariantSupport};
use crate::variant::{CoverModel, Variant};
use crate::SolveError;

/// Runs plain greedy for budget `k`.
///
/// ```
/// use pcover_core::{greedy, Normalized};
/// use pcover_graph::examples::figure1;
///
/// let g = figure1();
/// let report = greedy::solve::<Normalized>(&g, 2).unwrap();
/// assert!((report.cover - 0.873).abs() < 1e-9); // Example 1.1's 87.3%
/// assert_eq!(report.order.len(), 2);
/// ```
///
/// # Errors
///
/// [`SolveError::KTooLarge`] if `k > n`. `k = 0` yields an empty report with
/// cover 0.
pub fn solve<M: CoverModel>(g: &PreferenceGraph, k: usize) -> Result<SolveReport, SolveError> {
    solve_with::<M>(g, k, &mut SolveCtx::default())
}

/// [`solve`] with an execution context: observers installed on `ctx` see
/// each selection live. The selection arithmetic is identical to [`solve`].
///
/// # Errors
///
/// As [`solve`].
pub fn solve_with<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    ctx: &mut SolveCtx<'_>,
) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }

    let mut state = CoverState::new(n);
    let mut trajectory = Vec::with_capacity(k);
    let mut gain_evaluations = 0u64;

    for iter in 0..k {
        ctx.check_cancelled()?;
        let mut best: Option<(f64, ItemId)> = None;
        let mut round_evals = 0u64;
        for v in g.node_ids() {
            if state.contains(v) {
                continue;
            }
            let gain = state.gain::<M>(g, v);
            round_evals += 1;
            let better = crate::float::improves_argmax(gain, v, best);
            if better {
                best = Some((gain, v));
            }
        }
        gain_evaluations += round_evals;
        let Some((gain, chosen)) = best else {
            return Err(SolveError::internal(
                "greedy round found no candidate despite k <= n",
            ));
        };
        state.add_node::<M>(g, chosen);
        trajectory.push(state.cover());
        ctx.emit_select(iter, chosen, gain, state.cover());
        ctx.emit_round_stats(RoundStats {
            iter,
            gain_evaluations: round_evals,
        });
    }

    Ok(finish::<M>(
        Algorithm::Greedy,
        state,
        trajectory,
        started,
        gain_evaluations,
    ))
}

/// Plain greedy as a registry [`Solver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Greedy;

impl Solver for Greedy {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        solve_with::<M>(g, k, ctx)
    }
}

/// The registry entry for [`Greedy`].
pub fn spec() -> SolverSpec {
    SolverSpec::new(
        "greedy",
        Algorithm::Greedy,
        "Plain greedy (Algorithm 1): full candidate scan each round, 1-1/e guarantee, O(nkD)",
        SolverCaps::default(),
        |v, g, k, ctx| Greedy.dispatch(v, g, k, ctx),
    )
}

/// The `O(k)`-space Normalized-only greedy as a registry [`Solver`]
/// (see [`solve_low_memory_normalized`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct LowMemoryGreedy;

impl Solver for LowMemoryGreedy {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        if M::VARIANT != Variant::Normalized {
            return Err(SolveError::UnsupportedVariant {
                solver: "greedy-lowmem".to_string(),
                variant: M::VARIANT,
            });
        }
        let report = solve_low_memory_normalized(g, k)?;
        ctx.emit_report(&report);
        Ok(report)
    }
}

/// The registry entry for [`LowMemoryGreedy`].
pub fn low_memory_spec() -> SolverSpec {
    SolverSpec::new(
        "greedy-lowmem",
        Algorithm::Greedy,
        "O(k)-space greedy (Section 3.2): recomputes I-values on the fly; NPC only",
        SolverCaps {
            variants: VariantSupport::Only(Variant::Normalized),
            ..SolverCaps::default()
        },
        |v, g, k, ctx| LowMemoryGreedy.dispatch(v, g, k, ctx),
    )
}

/// The paper's `O(k)`-space variant for the **Normalized** cover
/// (Section 3.2): drops the `I` array entirely, recomputing a candidate's
/// own covered mass from its retained out-neighbors inside every gain
/// evaluation.
///
/// Works because the Normalized marginal of an in-neighbor `u` is
/// `W(u) · W(u, v)` — independent of `I[u]` — so only `I[v]` is needed,
/// and that is `W(v) · Σ_{u ∈ out(v) ∩ S} W(v, u)`, recomputable in
/// `O(out_degree(v))`. (The paper notes the same trick does **not** apply
/// to the Independent variant, whose marginals genuinely depend on the
/// accumulated `I[u]` values.)
///
/// Auxiliary space is `O(k)` (the selection; a bitmask over ids is kept
/// for `O(1)` membership, which the paper's analysis counts as part of the
/// output). Selects exactly the same items as [`solve`].
pub fn solve_low_memory_normalized(
    g: &PreferenceGraph,
    k: usize,
) -> Result<SolveReport, SolveError> {
    use crate::variant::Normalized;

    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }

    let mut in_set = vec![false; n];
    let mut order: Vec<ItemId> = Vec::with_capacity(k);
    let mut trajectory = Vec::with_capacity(k);
    let mut cover = 0.0f64;
    let mut gain_evaluations = 0u64;

    let own_uncovered = |in_set: &[bool], v: ItemId| -> f64 {
        let covered: f64 = g
            .out_edges(v)
            .filter(|&(u, _)| u != v && in_set[u.index()])
            .map(|(_, w)| w)
            .sum();
        g.node_weight(v) * (1.0 - covered)
    };

    for _ in 0..k {
        let mut best: Option<(f64, ItemId)> = None;
        for v in g.node_ids() {
            if in_set[v.index()] {
                continue;
            }
            // Algorithm 2 with I[v] recomputed on the fly.
            let mut gain = own_uncovered(&in_set, v);
            for (u, w) in g.in_edges(v) {
                if u != v && !in_set[u.index()] {
                    gain += g.node_weight(u) * w;
                }
            }
            gain_evaluations += 1;
            let better = crate::float::improves_argmax(gain, v, best);
            if better {
                best = Some((gain, v));
            }
        }
        let Some((gain, chosen)) = best else {
            return Err(SolveError::internal(
                "greedy round found no candidate despite k <= n",
            ));
        };
        in_set[chosen.index()] = true;
        order.push(chosen);
        cover += gain;
        trajectory.push(cover);
    }

    // One CoverState replay reconstructs the I-array metadata for the
    // report (callers who truly need O(k) memory use order/trajectory and
    // skip this; the report type carries the full array by contract).
    let mut state = CoverState::new(n);
    for &v in &order {
        state.add_node::<Normalized>(g, v);
    }
    Ok(finish::<Normalized>(
        Algorithm::Greedy,
        state,
        trajectory,
        started,
        gain_evaluations,
    ))
}

/// Packs a finished state into a [`SolveReport`].
pub(crate) fn finish<M: CoverModel>(
    algorithm: Algorithm,
    state: CoverState,
    trajectory: Vec<f64>,
    started: Instant,
    gain_evaluations: u64,
) -> SolveReport {
    let cover = state.cover();
    let (order, item_cover) = state_into_parts(state);
    SolveReport {
        algorithm,
        variant: M::VARIANT,
        order,
        trajectory,
        cover,
        item_cover,
        elapsed: started.elapsed(),
        gain_evaluations,
    }
}

fn state_into_parts(state: CoverState) -> (Vec<ItemId>, Vec<f64>) {
    // lint: allow(alloc-in-hot-loop) — ownership transfer into the final report; one copy per materialized result, not per round
    (state.order().to_vec(), state.item_cover().to_vec())
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use pcover_graph::examples::{figure1_ids, figure3_ids};
    use pcover_graph::GraphBuilder;

    use crate::cover::cover_value;
    use crate::{Independent, Normalized, Variant};

    use super::*;

    #[test]
    fn figure1_greedy_selects_b_then_d() {
        let (g, ids) = figure1_ids();
        for variant_run in 0..2 {
            let report = if variant_run == 0 {
                solve::<Normalized>(&g, 2).unwrap()
            } else {
                solve::<Independent>(&g, 2).unwrap()
            };
            assert_eq!(report.order, vec![ids.b, ids.d], "variant {variant_run}");
            assert!((report.cover - 0.873).abs() < 1e-9);
            assert!((report.trajectory[0] - 0.66).abs() < 1e-9);
            assert!((report.trajectory[1] - 0.873).abs() < 1e-9);
        }
    }

    #[test]
    fn figure2_coverage_metadata() {
        // Section 5.1: with {B, D} retained, C is covered 100%, A 67%, E 90%.
        let (g, ids) = figure1_ids();
        let report = solve::<Normalized>(&g, 2).unwrap();
        assert!((report.coverage_of(&g, ids.c) - 1.0).abs() < 1e-9);
        assert!((report.coverage_of(&g, ids.a) - 2.0 / 3.0).abs() < 1e-9);
        assert!((report.coverage_of(&g, ids.e) - 0.9).abs() < 1e-9);
        assert!((report.coverage_of(&g, ids.b) - 1.0).abs() < 1e-9);
        assert!((report.coverage_of(&g, ids.d) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn k_zero_is_empty() {
        let (g, _) = figure1_ids();
        let report = solve::<Normalized>(&g, 0).unwrap();
        assert!(report.order.is_empty());
        assert_eq!(report.cover, 0.0);
        assert_eq!(report.gain_evaluations, 0);
    }

    #[test]
    fn k_equals_n_covers_everything() {
        let (g, _) = figure1_ids();
        let report = solve::<Independent>(&g, g.node_count()).unwrap();
        assert!((report.cover - 1.0).abs() < 1e-9);
        assert_eq!(report.k(), g.node_count());
        // The trajectory is non-decreasing (monotonicity).
        for w in report.trajectory.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn k_too_large_rejected() {
        let (g, _) = figure1_ids();
        assert!(matches!(
            solve::<Normalized>(&g, 6),
            Err(SolveError::KTooLarge { k: 6, n: 5 })
        ));
    }

    #[test]
    fn reported_cover_matches_scratch_eval() {
        let (g, _) = figure3_ids();
        for k in 0..=3 {
            let r = solve::<Independent>(&g, k).unwrap();
            let mut mask = vec![false; g.node_count()];
            for &v in &r.order {
                mask[v.index()] = true;
            }
            let scratch = cover_value::<Independent>(&g, &mask);
            assert!((r.cover - scratch).abs() < 1e-9, "k = {k}");
        }
    }

    #[test]
    fn variant_tag_propagates() {
        let (g, _) = figure1_ids();
        assert_eq!(
            solve::<Normalized>(&g, 1).unwrap().variant,
            Variant::Normalized
        );
        assert_eq!(
            solve::<Independent>(&g, 1).unwrap().variant,
            Variant::Independent
        );
    }

    #[test]
    fn gain_evaluation_count_is_nk_shaped() {
        let (g, _) = figure1_ids();
        // Iteration i scans n - i candidates.
        let r = solve::<Normalized>(&g, 3).unwrap();
        assert_eq!(r.gain_evaluations, 5 + 4 + 3);
    }

    #[test]
    fn low_memory_normalized_matches_standard_greedy() {
        let (g, _) = figure1_ids();
        for k in 0..=5 {
            let standard = solve::<Normalized>(&g, k).unwrap();
            let low_mem = solve_low_memory_normalized(&g, k).unwrap();
            assert_eq!(standard.order, low_mem.order, "k = {k}");
            assert!((standard.cover - low_mem.cover).abs() < 1e-9);
            for (a, b) in standard.trajectory.iter().zip(&low_mem.trajectory) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn low_memory_handles_self_loops() {
        let mut b = GraphBuilder::new()
            .allow_self_loops(true)
            .normalize_node_weights(true);
        let x = b.add_node(1.0);
        let y = b.add_node(2.0);
        b.add_edge(x, x, 0.9).unwrap();
        b.add_edge(x, y, 0.5).unwrap();
        let g = b.build().unwrap();
        let standard = solve::<Normalized>(&g, 1).unwrap();
        let low_mem = solve_low_memory_normalized(&g, 1).unwrap();
        assert_eq!(standard.order, low_mem.order);
        assert!((standard.cover - low_mem.cover).abs() < 1e-12);
    }

    #[test]
    fn isolated_zero_weight_nodes_picked_last() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(0.5);
        let c = b.add_node(0.5);
        let z = b.add_node(0.0); // isolated, worthless
        b.add_edge(a, c, 0.5).unwrap();
        let g = b.build().unwrap();
        let r = solve::<Independent>(&g, 3).unwrap();
        assert_eq!(*r.order.last().unwrap(), z);
    }
}

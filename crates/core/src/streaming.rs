//! Sieve-streaming single-pass selection (Badanidiyuru et al., KDD 2014) —
//! a beyond-paper extension.
//!
//! When the item universe arrives as a stream (catalog ingestion pipelines,
//! or graphs too large to iterate repeatedly), sieve-streaming selects a
//! `(1/2 − ε)`-approximate set with **one pass** over the items and
//! `O((k log k)/ε)` candidate slots. It maintains geometrically-spaced
//! guesses `v` of OPT; for each guess, an item is admitted if its marginal
//! gain is at least `(v/2 − C(S_v)) / (k − |S_v|)`.
//!
//! The stream here is the node-id order of the graph; the cover oracle
//! still needs the (read-only) graph for gain evaluation, so what is
//! streamed is the *selection*, not the topology — the regime where each
//! node's gain may be evaluated only O(log k / ε) times total instead of
//! once per greedy round.

use std::time::Instant;

use pcover_graph::PreferenceGraph;

use crate::cover::CoverState;
use crate::greedy::finish;
use crate::report::{Algorithm, SolveReport};
use crate::solver::{SolveCtx, Solver, SolverCaps, SolverSpec};
use crate::variant::CoverModel;
use crate::SolveError;

/// Options for [`solve`].
#[derive(Clone, Copy, Debug)]
pub struct SieveOptions {
    /// Accuracy parameter ε in `(0, 1)`: thresholds are spaced by
    /// `(1 + ε)` and the guarantee is `1/2 − ε`.
    pub epsilon: f64,
}

impl Default for SieveOptions {
    fn default() -> Self {
        SieveOptions { epsilon: 0.1 }
    }
}

/// Runs sieve-streaming for budget `k` over the graph's nodes in id order.
///
/// Returns the best sieve's selection (padded greedily from leftover nodes
/// only if every sieve stayed below `k` **and** the caller's budget demands
/// exactness — the returned set may be smaller than `k`, which is inherent
/// to streaming selection; [`SolveReport::k`] reports the actual size).
///
/// # Errors
///
/// [`SolveError::KTooLarge`] / [`SolveError::InvalidThreshold`] on invalid
/// parameters.
pub fn solve<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    opts: &SieveOptions,
) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }
    if !(opts.epsilon > 0.0 && opts.epsilon < 1.0) {
        return Err(SolveError::InvalidThreshold {
            threshold: opts.epsilon,
        });
    }
    if k == 0 {
        return Ok(finish::<M>(
            Algorithm::SieveStreaming,
            CoverState::new(n),
            Vec::new(),
            started,
            0,
        ));
    }

    // m = max singleton value seen so far lower-bounds OPT; OPT <= k * m.
    // Maintain sieves for thresholds (1+eps)^i in [m, 2*k*m].
    let mut gain_evaluations = 0u64;
    let singleton_values: Vec<f64> = g
        .node_ids()
        .map(|v| {
            gain_evaluations += 1;
            CoverState::new(n).gain::<M>(g, v)
        })
        .collect();
    let m = singleton_values.iter().cloned().fold(0.0f64, f64::max);
    if m <= 0.0 {
        // Degenerate graph (all weights zero): nothing to cover.
        return Ok(finish::<M>(
            Algorithm::SieveStreaming,
            CoverState::new(n),
            Vec::new(),
            started,
            gain_evaluations,
        ));
    }

    let base = 1.0 + opts.epsilon;
    let lo = (m.ln() / base.ln()).floor() as i64;
    let hi = ((2.0 * k as f64 * m).ln() / base.ln()).ceil() as i64;
    let mut sieves: Vec<(f64, CoverState)> = (lo..=hi)
        .map(|i| (base.powi(i as i32), CoverState::new(n)))
        .collect();

    // One pass over the stream.
    for v in g.node_ids() {
        for (threshold, state) in &mut sieves {
            if state.len() >= k {
                continue;
            }
            let gain = state.gain::<M>(g, v);
            gain_evaluations += 1;
            let admit = gain >= (*threshold / 2.0 - state.cover()) / (k - state.len()) as f64;
            if admit && gain > 0.0 {
                state.add_node::<M>(g, v);
            }
        }
    }

    // Best sieve wins.
    let Some((_, best)) = sieves
        .into_iter()
        .max_by(|a, b| crate::float::cmp_gain(a.1.cover(), b.1.cover()))
    else {
        return Err(SolveError::internal("sieve streaming built no thresholds"));
    };

    // Reconstruct the trajectory by replaying the selected order.
    let mut replay = CoverState::new(n);
    let mut trajectory = Vec::with_capacity(best.len());
    for &v in best.order() {
        replay.add_node::<M>(g, v);
        trajectory.push(replay.cover());
    }

    Ok(finish::<M>(
        Algorithm::SieveStreaming,
        replay,
        trajectory,
        started,
        gain_evaluations,
    ))
}

/// Sieve-streaming as a registry [`Solver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SieveStreaming {
    /// Threshold-spacing options.
    pub opts: SieveOptions,
}

impl Solver for SieveStreaming {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        let report = solve::<M>(g, k, &self.opts)?;
        // The winning sieve is only known after the pass; replay it so the
        // observer stream matches the returned order exactly.
        ctx.emit_report(&report);
        Ok(report)
    }
}

/// The registry entry for [`SieveStreaming`]; epsilon comes from the
/// [`SolverConfig`](crate::solver::SolverConfig). May return fewer than `k`
/// items (`fills_budget` is false).
pub fn spec() -> SolverSpec {
    SolverSpec::new(
        "sieve",
        Algorithm::SieveStreaming,
        "Sieve-streaming: one pass, O((k log k)/eps) slots, 1/2-eps; may return fewer than k",
        SolverCaps {
            fills_budget: false,
            ..SolverCaps::default()
        },
        |v, g, k, ctx| {
            let opts = SieveOptions {
                epsilon: ctx.config.epsilon.unwrap_or(0.1),
            };
            SieveStreaming { opts }.dispatch(v, g, k, ctx)
        },
    )
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use pcover_graph::examples::figure1_ids;
    use pcover_graph::{GraphBuilder, ItemId};

    use crate::{greedy, Independent, Normalized};

    use super::*;

    fn random_graph(n: usize, seed: u64) -> PreferenceGraph {
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let ids: Vec<ItemId> = (0..n)
            .map(|i| b.add_node(1.0 + ((i as u64 * 11 + seed * 3) % 17) as f64))
            .collect();
        for i in 0..n {
            let j = (i + 1 + (seed as usize + i * 2) % 4) % n;
            if i != j {
                b.add_edge(ids[i], ids[j], 0.15 + 0.7 * ((i % 4) as f64 / 4.0))
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn achieves_half_of_greedy_on_figure1() {
        let (g, _) = figure1_ids();
        let gr = greedy::solve::<Normalized>(&g, 2).unwrap();
        let sv = solve::<Normalized>(&g, 2, &SieveOptions::default()).unwrap();
        assert!(
            sv.cover >= (0.5 - 0.1) * gr.cover,
            "sieve {} vs greedy {}",
            sv.cover,
            gr.cover
        );
        assert!(sv.k() <= 2);
        assert_eq!(sv.algorithm, crate::Algorithm::SieveStreaming);
    }

    #[test]
    fn achieves_guarantee_on_random_graphs() {
        for seed in 0..6 {
            let g = random_graph(120, seed);
            let k = 25;
            let gr = greedy::solve::<Independent>(&g, k).unwrap();
            let sv = solve::<Independent>(&g, k, &SieveOptions { epsilon: 0.1 }).unwrap();
            // Guarantee is (1/2 - eps) * OPT; greedy <= OPT so this is a
            // weaker-than-provable but meaningful check.
            assert!(
                sv.cover >= 0.4 * gr.cover,
                "seed {seed}: sieve {} vs greedy {}",
                sv.cover,
                gr.cover
            );
            assert!(sv.k() <= k);
        }
    }

    #[test]
    fn respects_budget_strictly() {
        let g = random_graph(80, 2);
        for k in [1, 5, 20, 80] {
            let sv = solve::<Independent>(&g, k, &SieveOptions::default()).unwrap();
            assert!(sv.k() <= k, "k = {k}, got {}", sv.k());
        }
    }

    #[test]
    fn k_zero_and_validation() {
        let (g, _) = figure1_ids();
        let r = solve::<Independent>(&g, 0, &SieveOptions::default()).unwrap();
        assert_eq!(r.k(), 0);
        assert!(solve::<Independent>(&g, 9, &SieveOptions::default()).is_err());
        assert!(solve::<Independent>(&g, 2, &SieveOptions { epsilon: 0.0 }).is_err());
    }

    #[test]
    fn zero_weight_graph_returns_empty() {
        let mut b = GraphBuilder::new().skip_weight_sum_check(true);
        for _ in 0..4 {
            b.add_node(0.0);
        }
        let g = b.build().unwrap();
        let r = solve::<Independent>(&g, 2, &SieveOptions::default()).unwrap();
        assert_eq!(r.k(), 0);
        assert_eq!(r.cover, 0.0);
    }

    #[test]
    fn single_pass_work_bound() {
        // Gain evaluations are at most n * (sieve count + 1); far below
        // greedy's n*k on large k.
        let g = random_graph(200, 4);
        let k = 100;
        let sv = solve::<Independent>(&g, k, &SieveOptions { epsilon: 0.2 }).unwrap();
        let gr = greedy::solve::<Independent>(&g, k).unwrap();
        assert!(
            sv.gain_evaluations < gr.gain_evaluations,
            "sieve {} vs greedy {}",
            sv.gain_evaluations,
            gr.gain_evaluations
        );
    }
}

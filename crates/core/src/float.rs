//! The float-comparison discipline for cover and gain values.
//!
//! Cover values and marginal gains are `f64` accumulations; comparing them
//! with raw `==`/`!=` is either meaningless (rounding noise) or — where
//! exactness *is* intended, as in the deterministic greedy tie-break — a
//! decision that deserves a named, total-order home. This module is the
//! single approved site for such comparisons: `cargo run -p xtask -- lint`
//! (rule `float-eq`) flags raw `==`/`!=` on cover/gain values anywhere else
//! in the workspace.

use std::cmp::Ordering;

/// Default absolute tolerance when comparing cover values that were computed
/// along different code paths (incremental vs from-scratch, parallel vs
/// sequential). Matches the tolerance used throughout the test suite.
pub const COVER_TOL: f64 = 1e-9;

/// Approximate equality under an explicit absolute tolerance.
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Approximate equality of two cover values at [`COVER_TOL`].
#[inline]
#[must_use]
pub fn cover_eq(a: f64, b: f64) -> bool {
    approx_eq(a, b, COVER_TOL)
}

/// Deterministic total order on gains. Gains produced by the solvers are
/// finite and non-negative, for which `total_cmp` agrees with the IEEE
/// partial order while never needing an `unwrap`/`expect` on a
/// `partial_cmp` result.
#[inline]
#[must_use]
pub fn cmp_gain(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// The canonical greedy argmax tie-break: candidate `(gain, v)` replaces the
/// incumbent `best` iff its gain is strictly larger, or exactly equal with a
/// smaller node id. Exact equality (not a tolerance) is deliberate — it is
/// what makes every solver variant (plain, lazy, parallel, partitioned)
/// select bit-identical sets, which the determinism tests assert. Generic
/// over the id type because some solvers work on raw `usize` indices and
/// others on `ItemId`.
#[inline]
#[must_use]
pub fn improves_argmax<V: Ord + Copy>(gain: f64, v: V, best: Option<(f64, V)>) -> bool {
    match best {
        None => true,
        Some((bg, bv)) => match cmp_gain(gain, bg) {
            Ordering::Greater => true,
            Ordering::Equal => v < bv,
            Ordering::Less => false,
        },
    }
}

/// Compensated (Neumaier) summation over a fixed iteration order.
///
/// This is the audited accumulation helper the `par-argmax`/
/// `par-float-accum` audit rules point parallel code at: gather partial
/// results into a deterministically ordered collection (e.g. indexed by
/// chunk slot), then reduce them here sequentially. The compensation term
/// keeps the result faithful even when magnitudes differ wildly, and the
/// single fixed order is what makes "same input, same output" hold across
/// thread counts.
#[must_use]
pub fn sum_stable<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    // One implementation for the whole workspace: it lives in the graph
    // crate (below this one in the dependency order) so graph-side weight
    // sums use the identical arithmetic.
    pcover_graph::float::sum_stable(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcover_graph::ItemId;

    fn id(i: u32) -> ItemId {
        ItemId::new(i)
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(cover_eq(0.5, 0.5 + 1e-10));
        assert!(!cover_eq(0.5, 0.5 + 1e-6));
    }

    #[test]
    fn cmp_gain_totally_orders_finite_gains() {
        assert_eq!(cmp_gain(0.2, 0.1), Ordering::Greater);
        assert_eq!(cmp_gain(0.1, 0.2), Ordering::Less);
        assert_eq!(cmp_gain(0.25, 0.25), Ordering::Equal);
    }

    #[test]
    fn argmax_prefers_larger_gain_then_smaller_id() {
        assert!(improves_argmax(0.5, id(3), None));
        assert!(improves_argmax(0.6, id(3), Some((0.5, id(1)))));
        assert!(!improves_argmax(0.4, id(0), Some((0.5, id(1)))));
        // Exact tie: smaller id wins.
        assert!(improves_argmax(0.5, id(0), Some((0.5, id(1)))));
        assert!(!improves_argmax(0.5, id(2), Some((0.5, id(1)))));
    }

    #[test]
    fn sum_stable_recovers_cancelled_terms() {
        // Naive left-to-right summation loses the 1.0 entirely here;
        // Neumaier compensation keeps it.
        let xs = [1.0, 1e100, 1.0, -1e100];
        assert_eq!(sum_stable(xs).to_bits(), 2.0f64.to_bits());
        let naive: f64 = xs.iter().sum();
        assert_eq!(naive.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn sum_stable_matches_naive_on_benign_input() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.125).collect();
        let naive: f64 = xs.iter().sum();
        assert_eq!(sum_stable(xs.iter().copied()).to_bits(), naive.to_bits());
    }
}

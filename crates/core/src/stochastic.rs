//! Stochastic greedy ("lazier than lazy greedy", Mirzasoleiman et al.,
//! AAAI 2015) — a beyond-paper extension.
//!
//! Each iteration evaluates the marginal gain of only a uniform random
//! sample of `⌈(n/k)·ln(1/ε)⌉` candidates and retains the best. Total work
//! drops from `O(nk)` gain evaluations to `O(n·ln(1/ε))` — *independent of
//! k* — while keeping a `(1 − 1/e − ε)` guarantee **in expectation** for
//! monotone submodular objectives, which both Preference Cover variants
//! are. At the paper's million-item scale this is the natural next step
//! past lazy evaluation, and the ablation bench compares all three.

use rand::seq::index::sample;
use rand::SeedableRng;
use std::time::Instant;

use pcover_graph::{ItemId, PreferenceGraph};

use crate::cover::CoverState;
use crate::greedy::finish;
use crate::report::{Algorithm, SolveReport};
use crate::solver::{RoundStats, SolveCtx, Solver, SolverCaps, SolverSpec};
use crate::variant::CoverModel;
use crate::SolveError;

/// Options for [`solve`].
#[derive(Clone, Copy, Debug)]
pub struct StochasticOptions {
    /// The accuracy parameter ε in `(0, 1)`; the expected approximation is
    /// `1 − 1/e − ε` and each iteration samples `⌈(n/k)·ln(1/ε)⌉`
    /// candidates.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StochasticOptions {
    fn default() -> Self {
        StochasticOptions {
            epsilon: 0.05,
            seed: 42,
        }
    }
}

/// Runs stochastic greedy for budget `k`.
///
/// # Errors
///
/// [`SolveError::KTooLarge`] if `k > n`; [`SolveError::InvalidThreshold`]
/// if `epsilon` is not in `(0, 1)`.
pub fn solve<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    opts: &StochasticOptions,
) -> Result<SolveReport, SolveError> {
    solve_with::<M>(g, k, opts, &mut SolveCtx::default())
}

/// [`solve`] with an execution context: observers installed on `ctx` see
/// each selection live. The selection arithmetic is identical to [`solve`].
///
/// # Errors
///
/// As [`solve`].
pub fn solve_with<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    opts: &StochasticOptions,
    ctx: &mut SolveCtx<'_>,
) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }
    if !(opts.epsilon > 0.0 && opts.epsilon < 1.0) {
        return Err(SolveError::InvalidThreshold {
            threshold: opts.epsilon,
        });
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
    let sample_size = if k == 0 {
        0
    } else {
        (((n as f64 / k as f64) * (1.0 / opts.epsilon).ln()).ceil() as usize).clamp(1, n)
    };

    let mut state = CoverState::new(n);
    let mut trajectory = Vec::with_capacity(k);
    let mut gain_evaluations = 0u64;

    for iter in 0..k {
        ctx.check_cancelled()?;
        // Sample from all nodes; already-retained hits are skipped. When
        // the filtered sample happens to be empty (late iterations with
        // small samples), fall back to the first non-retained node so the
        // budget is always filled.
        let mut best: Option<(f64, ItemId)> = None;
        let mut round_evals = 0u64;
        for idx in sample(&mut rng, n, sample_size.min(n)) {
            let v = ItemId::from_index(idx);
            if state.contains(v) {
                continue;
            }
            let gain = state.gain::<M>(g, v);
            round_evals += 1;
            let better = crate::float::improves_argmax(gain, v, best);
            if better {
                best = Some((gain, v));
            }
        }
        gain_evaluations += round_evals;
        let chosen = match best {
            Some((_, v)) => v,
            None => match g.node_ids().find(|&v| !state.contains(v)) {
                Some(v) => v,
                None => {
                    return Err(SolveError::internal(
                        "stochastic round found no leftover node despite k <= n",
                    ))
                }
            },
        };
        let cover_before = state.cover();
        state.add_node::<M>(g, chosen);
        trajectory.push(state.cover());
        ctx.emit_select(iter, chosen, state.cover() - cover_before, state.cover());
        ctx.emit_round_stats(RoundStats {
            iter,
            gain_evaluations: round_evals,
        });
    }

    let mut report = finish::<M>(
        Algorithm::Greedy,
        state,
        trajectory,
        started,
        gain_evaluations,
    );
    report.algorithm = Algorithm::StochasticGreedy;
    Ok(report)
}

/// Stochastic greedy as a registry [`Solver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StochasticGreedy {
    /// Sampling options (epsilon, seed).
    pub opts: StochasticOptions,
}

impl Solver for StochasticGreedy {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        let opts = self.opts;
        solve_with::<M>(g, k, &opts, ctx)
    }
}

/// The registry entry for [`StochasticGreedy`]; seed and epsilon come from
/// the [`SolverConfig`](crate::solver::SolverConfig).
pub fn spec() -> SolverSpec {
    SolverSpec::new(
        "stochastic",
        Algorithm::StochasticGreedy,
        "Stochastic greedy: sampled candidate scans, 1-1/e-eps in expectation, k-independent work",
        SolverCaps {
            needs_seed: true,
            ..SolverCaps::default()
        },
        |v, g, k, ctx| {
            let opts = StochasticOptions {
                epsilon: ctx.config.epsilon.unwrap_or(0.05),
                seed: ctx.config.seed,
            };
            StochasticGreedy { opts }.dispatch(v, g, k, ctx)
        },
    )
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::figure1_ids;

    use crate::{greedy, Independent};

    use super::*;

    fn random_graph(n: usize, seed: u64) -> PreferenceGraph {
        pcover_graph::GraphBuilder::new()
            .normalize_node_weights(true)
            .build_from_test_edges(n, seed)
    }

    // Small helper so tests don't need datagen: builds a ring-ish graph.
    trait TestGraphExt {
        fn build_from_test_edges(self, n: usize, seed: u64) -> PreferenceGraph;
    }
    impl TestGraphExt for pcover_graph::GraphBuilder {
        fn build_from_test_edges(mut self, n: usize, seed: u64) -> PreferenceGraph {
            let ids: Vec<ItemId> = (0..n)
                .map(|i| self.add_node(1.0 + ((i as u64 * 7 + seed) % 13) as f64))
                .collect();
            for i in 0..n {
                let j = (i + 1 + (seed as usize + i) % 3) % n;
                if i != j {
                    let w = 0.2 + 0.6 * (((i as u64 + seed) % 5) as f64 / 5.0);
                    self.add_edge(ids[i], ids[j], w).unwrap();
                }
            }
            self.build().unwrap()
        }
    }

    #[test]
    fn figure1_with_tiny_epsilon_matches_greedy() {
        // Sample size (n/k)·ln(1/eps) >= n makes it a full scan.
        let (g, ids) = figure1_ids();
        let r = solve::<Independent>(
            &g,
            2,
            &StochasticOptions {
                epsilon: 1e-9,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(r.order, vec![ids.b, ids.d]);
        assert!((r.cover - 0.873).abs() < 1e-9);
        assert_eq!(r.algorithm, crate::Algorithm::StochasticGreedy);
    }

    #[test]
    fn close_to_full_greedy_on_random_graphs() {
        for seed in 0..5 {
            let g = random_graph(200, seed);
            let k = 40;
            let full = greedy::solve::<Independent>(&g, k).unwrap();
            let fast = solve::<Independent>(
                &g,
                k,
                &StochasticOptions {
                    epsilon: 0.05,
                    seed,
                },
            )
            .unwrap();
            assert!(
                fast.cover >= (1.0 - 1.0 / std::f64::consts::E - 0.05) * full.cover,
                "seed {seed}: stochastic {} vs greedy {}",
                fast.cover,
                full.cover
            );
            assert!(fast.cover <= full.cover + 1e-9 || fast.cover <= 1.0);
            // And it does less work per unit of k.
            assert!(fast.gain_evaluations < full.gain_evaluations);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = random_graph(100, 3);
        let opts = StochasticOptions {
            epsilon: 0.2,
            seed: 9,
        };
        let a = solve::<Independent>(&g, 20, &opts).unwrap();
        let b = solve::<Independent>(&g, 20, &opts).unwrap();
        assert_eq!(a.order, b.order);
    }

    #[test]
    fn always_fills_the_budget() {
        let g = random_graph(50, 1);
        let r = solve::<Independent>(
            &g,
            50,
            &StochasticOptions {
                epsilon: 0.9,
                seed: 2,
            },
        )
        .unwrap();
        assert_eq!(r.k(), 50);
        assert!((r.cover - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parameter_validation() {
        let (g, _) = figure1_ids();
        assert!(solve::<Independent>(&g, 9, &StochasticOptions::default()).is_err());
        assert!(solve::<Independent>(
            &g,
            2,
            &StochasticOptions {
                epsilon: 0.0,
                seed: 0
            }
        )
        .is_err());
        assert!(solve::<Independent>(
            &g,
            2,
            &StochasticOptions {
                epsilon: 1.0,
                seed: 0
            }
        )
        .is_err());
    }
}

//! Pinned-prefix solving: greedy completion of a forced retained set.
//!
//! Real deployments carry constraints the optimizer must respect — items
//! under contract, flagship products, items already stocked in a warehouse.
//! This solver retains a caller-supplied prefix unconditionally and then
//! continues the ordinary greedy to fill the remaining budget. It is also
//! the primitive the [`incremental`](crate::extensions::incremental)
//! maintenance strategy is built on.

use std::time::Instant;

use pcover_graph::{ItemId, PreferenceGraph};

use crate::cover::CoverState;
use crate::greedy::finish;
use crate::report::{Algorithm, SolveReport};
use crate::variant::CoverModel;
use crate::SolveError;

/// Solves for budget `k` with `prefix` forced into the retained set (in the
/// given order), completing the remainder with lazy-style greedy scans.
///
/// The submodular guarantee degrades gracefully: the completion is a
/// `(1 − 1/e)`-approximation of the best completion *given* the prefix.
///
/// # Errors
///
/// * [`SolveError::KTooLarge`] if `k > n`.
/// * [`SolveError::InvalidPrefix`] if the prefix is longer than `k`,
///   contains duplicates, or references unknown nodes.
pub fn solve_with_prefix<M: CoverModel>(
    g: &PreferenceGraph,
    prefix: &[ItemId],
    k: usize,
) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }
    if prefix.len() > k {
        return Err(SolveError::InvalidPrefix {
            message: format!("prefix length {} exceeds k = {k}", prefix.len()),
        });
    }

    let mut state = CoverState::new(n);
    let mut trajectory = Vec::with_capacity(k);
    for &v in prefix {
        if v.index() >= n {
            return Err(SolveError::InvalidPrefix {
                message: format!("node {v} out of range"),
            });
        }
        if state.contains(v) {
            return Err(SolveError::InvalidPrefix {
                message: format!("node {v} pinned twice"),
            });
        }
        state.add_node::<M>(g, v);
        trajectory.push(state.cover());
    }

    let mut gain_evaluations = 0u64;
    for _ in prefix.len()..k {
        let mut best: Option<(f64, ItemId)> = None;
        for v in g.node_ids() {
            if state.contains(v) {
                continue;
            }
            let gain = state.gain::<M>(g, v);
            gain_evaluations += 1;
            let better = crate::float::improves_argmax(gain, v, best);
            if better {
                best = Some((gain, v));
            }
        }
        let Some((_, chosen)) = best else {
            return Err(SolveError::internal(
                "pinned greedy found no candidate despite k <= n",
            ));
        };
        state.add_node::<M>(g, chosen);
        trajectory.push(state.cover());
    }

    Ok(finish::<M>(
        Algorithm::Greedy,
        state,
        trajectory,
        started,
        gain_evaluations,
    ))
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::figure1_ids;

    use crate::{greedy, Independent, Normalized};

    use super::*;

    #[test]
    fn empty_prefix_is_plain_greedy() {
        let (g, _) = figure1_ids();
        let plain = greedy::solve::<Normalized>(&g, 3).unwrap();
        let pinned = solve_with_prefix::<Normalized>(&g, &[], 3).unwrap();
        assert_eq!(plain.order, pinned.order);
        assert!((plain.cover - pinned.cover).abs() < 1e-12);
    }

    #[test]
    fn prefix_is_respected() {
        let (g, ids) = figure1_ids();
        // Force the weak item E first; greedy then completes optimally.
        let r = solve_with_prefix::<Normalized>(&g, &[ids.e], 2).unwrap();
        assert_eq!(r.order[0], ids.e);
        // Best completion after E is B (covering A, B, C).
        assert_eq!(r.order[1], ids.b);
        // Pinning costs cover relative to the unconstrained optimum.
        let free = greedy::solve::<Normalized>(&g, 2).unwrap();
        assert!(r.cover < free.cover);
    }

    #[test]
    fn prefix_equal_to_k_is_pure_replay() {
        let (g, ids) = figure1_ids();
        let r = solve_with_prefix::<Independent>(&g, &[ids.b, ids.d], 2).unwrap();
        assert_eq!(r.order, vec![ids.b, ids.d]);
        assert!((r.cover - 0.873).abs() < 1e-9);
        assert_eq!(r.gain_evaluations, 0);
    }

    #[test]
    fn invalid_prefixes_rejected() {
        let (g, ids) = figure1_ids();
        assert!(solve_with_prefix::<Normalized>(&g, &[ids.a, ids.a], 3).is_err());
        assert!(solve_with_prefix::<Normalized>(&g, &[ids.a, ids.b], 1).is_err());
        assert!(solve_with_prefix::<Normalized>(&g, &[ItemId::new(77)], 2).is_err());
        assert!(solve_with_prefix::<Normalized>(&g, &[], 6).is_err());
    }
}

//! Category-quota constrained selection — a beyond-paper extension.
//!
//! Real assortment planning rarely runs unconstrained: a same-day-delivery
//! warehouse wants breadth ("at least 2 items from every top category")
//! and balance ("at most 50 phones"). This module runs the greedy scheme
//! under per-category minimum and maximum quotas:
//!
//! 1. **Breadth phase** — for each category with a minimum, repeatedly add
//!    the max-gain item of that category until its minimum is met
//!    (categories processed in order of remaining deficit, largest first).
//! 2. **Greedy phase** — ordinary max-gain greedy over all items whose
//!    category still has headroom.
//!
//! With only maxima this is greedy over a partition matroid — a classical
//! `1/2`-approximation for monotone submodular objectives; minima are a
//! feasibility constraint layered on top (infeasible combinations are
//! rejected up front).

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use std::time::Instant;

use pcover_graph::{ItemId, PreferenceGraph};

use crate::cover::CoverState;
use crate::greedy::finish;
use crate::report::{Algorithm, SolveReport};
use crate::variant::CoverModel;
use crate::SolveError;

/// Per-category constraints. Categories are dense `0..num_categories`.
#[derive(Clone, Debug)]
pub struct CategoryQuotas {
    /// `category_of[item.index()]` — the item's category.
    pub category_of: Vec<u32>,
    /// Per category, the minimum number of retained items (0 = none).
    pub min_per_category: Vec<usize>,
    /// Per category, the maximum number of retained items
    /// (`usize::MAX` = unbounded).
    pub max_per_category: Vec<usize>,
}

impl CategoryQuotas {
    /// Unconstrained quotas over `categories` categories for a graph of
    /// `category_of` assignments.
    pub fn unconstrained(category_of: Vec<u32>, categories: usize) -> Self {
        CategoryQuotas {
            category_of,
            min_per_category: vec![0; categories],
            max_per_category: vec![usize::MAX; categories],
        }
    }

    fn validate(&self, g: &PreferenceGraph, k: usize) -> Result<(), SolveError> {
        if self.category_of.len() != g.node_count() {
            return Err(SolveError::InvalidPrefix {
                message: format!(
                    "category assignment length {} does not match node count {}",
                    self.category_of.len(),
                    g.node_count()
                ),
            });
        }
        let c = self.min_per_category.len();
        if self.max_per_category.len() != c {
            return Err(SolveError::InvalidPrefix {
                message: "min and max quota vectors differ in length".into(),
            });
        }
        let mut sizes = vec![0usize; c];
        for &cat in &self.category_of {
            if cat as usize >= c {
                return Err(SolveError::InvalidPrefix {
                    message: format!("item category {cat} out of range (have {c})"),
                });
            }
            sizes[cat as usize] += 1;
        }
        let mut min_total = 0usize;
        for (cat, &size) in sizes.iter().enumerate() {
            if self.min_per_category[cat] > self.max_per_category[cat] {
                return Err(SolveError::InvalidPrefix {
                    message: format!("category {cat}: min exceeds max"),
                });
            }
            if self.min_per_category[cat] > size {
                return Err(SolveError::InvalidPrefix {
                    message: format!(
                        "category {cat}: minimum {} exceeds its {size} items",
                        self.min_per_category[cat]
                    ),
                });
            }
            min_total += self.min_per_category[cat];
        }
        if min_total > k {
            return Err(SolveError::InvalidPrefix {
                message: format!("sum of category minimums {min_total} exceeds k = {k}"),
            });
        }
        // k must be reachable under the maxima.
        let capacity: usize = (0..c)
            .map(|cat| self.max_per_category[cat].min(sizes[cat]))
            .sum();
        if capacity < k {
            return Err(SolveError::KTooLarge { k, n: capacity });
        }
        Ok(())
    }
}

/// Runs quota-constrained greedy for budget `k`.
pub fn solve<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    quotas: &CategoryQuotas,
) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }
    quotas.validate(g, k)?;

    let c = quotas.min_per_category.len();
    let mut taken = vec![0usize; c];
    let mut state = CoverState::new(n);
    let mut trajectory = Vec::with_capacity(k);
    let mut gain_evaluations = 0u64;

    // Phase 1: satisfy minimums, most-deficient category first.
    loop {
        let deficit_cat = (0..c)
            .filter(|&cat| taken[cat] < quotas.min_per_category[cat])
            .max_by_key(|&cat| quotas.min_per_category[cat] - taken[cat]);
        let Some(cat) = deficit_cat else { break };
        let mut best: Option<(f64, ItemId)> = None;
        for v in g.node_ids() {
            if state.contains(v) || quotas.category_of[v.index()] as usize != cat {
                continue;
            }
            let gain = state.gain::<M>(g, v);
            gain_evaluations += 1;
            let better = crate::float::improves_argmax(gain, v, best);
            if better {
                best = Some((gain, v));
            }
        }
        let Some((_, chosen)) = best else {
            return Err(SolveError::internal(
                "quota phase 1 found no candidate; quota validation should prevent this",
            ));
        };
        state.add_node::<M>(g, chosen);
        taken[cat] += 1;
        trajectory.push(state.cover());
    }

    // Phase 2: unconstrained-gain greedy over categories with headroom.
    while state.len() < k {
        let mut best: Option<(f64, ItemId)> = None;
        for v in g.node_ids() {
            if state.contains(v) {
                continue;
            }
            let cat = quotas.category_of[v.index()] as usize;
            if taken[cat] >= quotas.max_per_category[cat] {
                continue;
            }
            let gain = state.gain::<M>(g, v);
            gain_evaluations += 1;
            let better = crate::float::improves_argmax(gain, v, best);
            if better {
                best = Some((gain, v));
            }
        }
        let Some((_, chosen)) = best else {
            return Err(SolveError::internal(
                "quota phase 2 found no candidate; capacity validation should prevent this",
            ));
        };
        taken[quotas.category_of[chosen.index()] as usize] += 1;
        state.add_node::<M>(g, chosen);
        trajectory.push(state.cover());
    }

    Ok(finish::<M>(
        Algorithm::Greedy,
        state,
        trajectory,
        started,
        gain_evaluations,
    ))
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::figure1_ids;

    use crate::{greedy, Normalized};

    use super::*;

    /// Figure 1 categories: {A, B, C} = 0 (TVs), {D, E} = 1 (upgrades).
    fn fig1_quotas() -> CategoryQuotas {
        CategoryQuotas::unconstrained(vec![0, 0, 0, 1, 1], 2)
    }

    #[test]
    fn unconstrained_matches_plain_greedy() {
        let (g, _) = figure1_ids();
        for k in 1..=4 {
            let plain = greedy::solve::<Normalized>(&g, k).unwrap();
            let quota = solve::<Normalized>(&g, k, &fig1_quotas()).unwrap();
            assert_eq!(plain.order, quota.order, "k = {k}");
        }
    }

    #[test]
    fn max_quota_redirects_selection() {
        let (g, ids) = figure1_ids();
        // At most one item from category 0: greedy would pick {B, D}
        // anyway (one from each), but at k = 3 plain greedy adds A (cat 0);
        // constrained must pick E instead.
        let mut quotas = fig1_quotas();
        quotas.max_per_category[0] = 1;
        let r = solve::<Normalized>(&g, 3, &quotas).unwrap();
        assert_eq!(r.order[..2], [ids.b, ids.d]);
        assert_eq!(r.order[2], ids.e);
        let plain = greedy::solve::<Normalized>(&g, 3).unwrap();
        assert_eq!(plain.order[2], ids.a);
        assert!(r.cover <= plain.cover);
    }

    #[test]
    fn min_quota_forces_breadth() {
        let (g, ids) = figure1_ids();
        // k = 2 with a minimum of 1 in category 1: {B, D} already complies;
        // minimum of 2 in category 1 forces {D, E}.
        let mut quotas = fig1_quotas();
        quotas.min_per_category[1] = 2;
        let r = solve::<Normalized>(&g, 2, &quotas).unwrap();
        let mut sorted = r.order.clone();
        sorted.sort();
        assert_eq!(sorted, vec![ids.d, ids.e]);
    }

    #[test]
    fn infeasible_quotas_rejected() {
        let (g, _) = figure1_ids();
        // Minimum exceeding category size.
        let mut quotas = fig1_quotas();
        quotas.min_per_category[1] = 3;
        assert!(solve::<Normalized>(&g, 4, &quotas).is_err());

        // Minimums exceeding k.
        let mut quotas = fig1_quotas();
        quotas.min_per_category[0] = 2;
        quotas.min_per_category[1] = 2;
        assert!(solve::<Normalized>(&g, 3, &quotas).is_err());

        // Maxima too tight for k.
        let mut quotas = fig1_quotas();
        quotas.max_per_category[0] = 1;
        quotas.max_per_category[1] = 1;
        assert!(solve::<Normalized>(&g, 3, &quotas).is_err());

        // min > max.
        let mut quotas = fig1_quotas();
        quotas.min_per_category[0] = 2;
        quotas.max_per_category[0] = 1;
        assert!(solve::<Normalized>(&g, 3, &quotas).is_err());

        // Wrong assignment length.
        let quotas = CategoryQuotas::unconstrained(vec![0, 0], 1);
        assert!(solve::<Normalized>(&g, 1, &quotas).is_err());

        // Category id out of range.
        let quotas = CategoryQuotas::unconstrained(vec![0, 0, 0, 0, 7], 2);
        assert!(solve::<Normalized>(&g, 1, &quotas).is_err());
    }

    #[test]
    fn quotas_always_respected() {
        let (g, _) = figure1_ids();
        let mut quotas = fig1_quotas();
        quotas.min_per_category[1] = 1;
        quotas.max_per_category[0] = 2;
        let r = solve::<Normalized>(&g, 3, &quotas).unwrap();
        let mut counts = [0usize; 2];
        for &v in &r.order {
            counts[quotas.category_of[v.index()] as usize] += 1;
        }
        assert!(counts[0] <= 2);
        assert!(counts[1] >= 1);
        assert_eq!(r.k(), 3);
    }
}

//! Incremental maintenance of a retained set as the graph drifts.
//!
//! Preference graphs are re-derived from clickstreams periodically, and the
//! paper's conclusion flags "incremental maintenance in response to changes
//! over time" as ongoing work. Swapping the whole inventory on every
//! refresh is operationally expensive (restocking, delisting churn), so
//! this module offers a *repair* strategy with a tunable stability budget:
//!
//! 1. Re-evaluate the old solution on the new graph.
//! 2. Rank the old items by their marginal value in the new solution
//!    context (value of each item given all the others — a "leave-one-out"
//!    score).
//! 3. Evict up to `max_changes` lowest-value items and let greedy refill
//!    the freed budget on the new graph.
//!
//! `max_changes = k` degenerates to a fresh solve; `max_changes = 0` keeps
//! the old set and merely re-reports its (new) cover.

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use pcover_graph::{ItemId, PreferenceGraph};

use crate::baselines::evaluate_selection;
use crate::extensions::pinned::solve_with_prefix;
use crate::report::SolveReport;
use crate::variant::CoverModel;
use crate::SolveError;

/// The outcome of a repair: the new report plus the churn it required.
#[derive(Clone, Debug)]
pub struct RepairResult {
    /// Report for the repaired retained set on the new graph.
    pub report: SolveReport,
    /// Items evicted from the old solution.
    pub evicted: Vec<ItemId>,
    /// Items newly added.
    pub added: Vec<ItemId>,
    /// Cover the *unmodified* old set achieves on the new graph — the
    /// do-nothing baseline a repair must beat.
    pub stale_cover: f64,
}

impl RepairResult {
    /// Number of swapped items (evictions; additions may be fewer only when
    /// the old solution was larger than the graph allows).
    pub fn churn(&self) -> usize {
        self.evicted.len()
    }
}

/// Repairs `old_solution` against (a possibly updated) `g`, evicting at most
/// `max_changes` items.
///
/// # Errors
///
/// Propagates [`SolveError::InvalidPrefix`] if the old solution references
/// nodes that no longer exist, and [`SolveError::KTooLarge`] if it is larger
/// than the new graph.
pub fn repair<M: CoverModel>(
    g: &PreferenceGraph,
    old_solution: &[ItemId],
    max_changes: usize,
) -> Result<RepairResult, SolveError> {
    let stale = evaluate_selection::<M>(g, old_solution)?;
    let stale_cover = stale.cover;
    let k = old_solution.len();
    let evict_count = max_changes.min(k);
    if evict_count == 0 {
        return Ok(RepairResult {
            report: stale,
            evicted: Vec::new(),
            added: Vec::new(),
            stale_cover,
        });
    }

    // Leave-one-out value of each retained item: the cover drop from
    // removing it. Approximated in one pass: an item's value is its own
    // uncovered-by-others weight plus its marginal edge contributions, i.e.
    // C(S) − C(S \ {v}), evaluated exactly per item.
    let mut scored: Vec<(f64, ItemId)> = Vec::with_capacity(k);
    for (idx, &v) in old_solution.iter().enumerate() {
        let mut without: Vec<ItemId> = Vec::with_capacity(k - 1);
        without.extend(old_solution[..idx].iter().copied());
        without.extend(old_solution[idx + 1..].iter().copied());
        let c_without = evaluate_selection::<M>(g, &without)?.cover;
        scored.push((stale_cover - c_without, v));
    }
    // Lowest leave-one-out value first; ties toward larger id (keep older,
    // smaller-id items for stability).
    scored.sort_by(|a, b| crate::float::cmp_gain(a.0, b.0).then(b.1.cmp(&a.1)));
    let evicted: Vec<ItemId> = scored[..evict_count].iter().map(|&(_, v)| v).collect();
    let keep: Vec<ItemId> = old_solution
        .iter()
        .copied()
        .filter(|v| !evicted.contains(v))
        .collect();

    let report = solve_with_prefix::<M>(g, &keep, k)?;
    let added: Vec<ItemId> = report.order[keep.len()..].to_vec();
    Ok(RepairResult {
        report,
        evicted,
        added,
        stale_cover,
    })
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::figure1_ids;
    use pcover_graph::GraphBuilder;

    use crate::{greedy, Normalized};

    use super::*;

    /// Figure 1 graph with demand shifted: E became the best-seller.
    fn shifted_figure1() -> pcover_graph::PreferenceGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node_labeled(0.15, "A");
        let bb = b.add_node_labeled(0.10, "B");
        let c = b.add_node_labeled(0.10, "C");
        let _d = b.add_node_labeled(0.05, "D");
        let e = b.add_node_labeled(0.60, "E");
        b.add_edge(a, bb, 2.0 / 3.0).unwrap();
        b.add_edge(a, c, 1.0 / 3.0).unwrap();
        b.add_edge(bb, c, 1.0).unwrap();
        b.add_edge(c, bb, 1.0).unwrap();
        b.add_edge(e, ItemId::new(3), 0.9).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn zero_budget_keeps_old_set() {
        let (g, _) = figure1_ids();
        let old = greedy::solve::<Normalized>(&g, 2).unwrap().order;
        let r = repair::<Normalized>(&g, &old, 0).unwrap();
        assert!(r.evicted.is_empty());
        assert!(r.added.is_empty());
        assert_eq!(r.report.order, old);
    }

    #[test]
    fn repair_adapts_to_demand_shift() {
        let (g_old, ids) = figure1_ids();
        let old = greedy::solve::<Normalized>(&g_old, 2).unwrap().order;
        assert_eq!(old, vec![ids.b, ids.d]);

        let g_new = shifted_figure1();
        // Stale solution still covers D + 0.9·E but B's empire shrank.
        let r = repair::<Normalized>(&g_new, &old, 1).unwrap();
        assert_eq!(r.churn(), 1);
        assert!(r.report.cover >= r.stale_cover - 1e-12);
        // B (leave-one-out value 0.10 + 0.10 + 0.10 = 0.30) vs D (0.05 +
        // 0.54 = 0.59): B is evicted; greedy refills with... B again would
        // give 0.30; A gives 0.15 + nothing; E gives 0.60 but D already
        // covers 0.54 of it -> marginal 0.06 + own E? E's marginal: 0.60 -
        // 0.54 = 0.06. So B returns. Churn may be a no-op swap; cover must
        // not regress either way.
        assert_eq!(r.report.order.len(), 2);
    }

    #[test]
    fn full_budget_repair_matches_fresh_solve_cover() {
        let (g_old, _) = figure1_ids();
        let old = greedy::solve::<Normalized>(&g_old, 2).unwrap().order;
        let g_new = shifted_figure1();
        let r = repair::<Normalized>(&g_new, &old, 2).unwrap();
        let fresh = greedy::solve::<Normalized>(&g_new, 2).unwrap();
        assert!((r.report.cover - fresh.cover).abs() < 1e-9);
    }

    #[test]
    fn repair_never_regresses_below_stale() {
        let (g, _) = figure1_ids();
        let old = vec![ItemId::new(0), ItemId::new(4)];
        for budget in 0..=2 {
            let r = repair::<Normalized>(&g, &old, budget).unwrap();
            assert!(
                r.report.cover >= r.stale_cover - 1e-12,
                "budget {budget}: {} < {}",
                r.report.cover,
                r.stale_cover
            );
        }
    }

    #[test]
    fn stale_solution_with_unknown_node_rejected() {
        let (g, _) = figure1_ids();
        assert!(repair::<Normalized>(&g, &[ItemId::new(50)], 1).is_err());
    }
}

//! Extensions beyond the paper's core model.
//!
//! The paper's conclusion names two future-work directions: supporting
//! varying per-item revenues, and incremental maintenance of solutions as
//! the catalog changes over time. This module implements practical versions
//! of both, plus pinned-prefix solving (business-rule constraints), all on
//! top of the unchanged greedy machinery:
//!
//! * [`revenue`] — revenue-weighted objectives via node-weight scaling.
//! * [`pinned`] — greedy completion of a forced prefix of retained items.
//! * [`incremental`] — solution repair after graph weight updates.
//! * [`quota`] — per-category minimum/maximum constraints (partition
//!   matroid greedy).
//! * [`markov`] — the Markov chain choice model of the related OR
//!   literature, as an exact multi-hop reference objective.

pub mod incremental;
pub mod markov;
pub mod pinned;
pub mod quota;
pub mod revenue;

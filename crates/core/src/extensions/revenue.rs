//! Revenue-weighted Preference Cover.
//!
//! The paper's model values every matched request equally (fixed commission
//! per purchase). When per-item revenues differ, the natural objective is
//! expected *revenue* rather than expected *sales*:
//!
//! `R(S) = Σ_v r(v) · I_S[v]`
//!
//! where `I_S[v]` is the probability `v` is requested and matched. Because
//! both cover variants are linear in the node weights, this is exactly the
//! ordinary cover of a graph whose node weights are scaled by revenue and
//! renormalized. The solver therefore reduces revenue optimization to the
//! unmodified greedy, keeping all guarantees (the objective is still
//! monotone submodular; scaling node weights preserves that structure).

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use pcover_graph::{GraphBuilder, GraphError, PreferenceGraph};

use crate::report::SolveReport;
use crate::variant::CoverModel;
use crate::{lazy, SolveError};

/// The outcome of a revenue-weighted solve.
#[derive(Clone, Debug)]
pub struct RevenueReport {
    /// The underlying solve report **on the scaled graph**: covers and
    /// trajectories are fractions of total attainable revenue.
    pub report: SolveReport,
    /// Total revenue rate `Σ_v r(v) · W(v)` — multiply report covers by
    /// this to get absolute expected revenue per request.
    pub total_revenue_rate: f64,
}

impl RevenueReport {
    /// Expected revenue per consumer request under the selected inventory.
    pub fn expected_revenue_per_request(&self) -> f64 {
        self.report.cover * self.total_revenue_rate
    }
}

/// Builds the revenue-scaled graph: node weights become
/// `W(v) · r(v) / Σ_u W(u) · r(u)`; edges are untouched.
///
/// # Errors
///
/// Fails if `revenues` has the wrong length, contains non-finite or
/// negative values, or scales every weight to zero.
pub fn scale_by_revenue(
    g: &PreferenceGraph,
    revenues: &[f64],
) -> Result<(PreferenceGraph, f64), GraphError> {
    if revenues.len() != g.node_count() {
        return Err(GraphError::Parse {
            line: None,
            message: format!(
                "revenue vector length {} does not match node count {}",
                revenues.len(),
                g.node_count()
            ),
        });
    }
    for (i, &r) in revenues.iter().enumerate() {
        if !r.is_finite() || r < 0.0 {
            return Err(GraphError::InvalidNodeWeight {
                node: pcover_graph::ItemId::from_index(i),
                weight: r,
            });
        }
    }
    let total: f64 = g
        .node_ids()
        .map(|v| g.node_weight(v) * revenues[v.index()])
        .sum();
    if total <= 0.0 {
        return Err(GraphError::EmptyGraph);
    }

    let mut b = GraphBuilder::with_capacity(g.node_count(), g.edge_count())
        .allow_self_loops(true)
        .normalize_node_weights(true);
    for v in g.node_ids() {
        let w = g.node_weight(v) * revenues[v.index()];
        match g.label(v) {
            Some(l) => b.add_node_labeled(w, l),
            None => b.add_node(w),
        };
    }
    for e in g.edges() {
        b.add_edge(e.source, e.target, e.weight)?;
    }
    Ok((b.build()?, total))
}

/// Solves the revenue-weighted problem with lazy greedy.
pub fn solve<M: CoverModel>(
    g: &PreferenceGraph,
    revenues: &[f64],
    k: usize,
) -> Result<RevenueReport, SolveError> {
    let (scaled, total) = scale_by_revenue(g, revenues).map_err(|e| SolveError::InvalidPrefix {
        message: format!("revenue scaling failed: {e}"),
    })?;
    let report = lazy::solve::<M>(&scaled, k)?;
    Ok(RevenueReport {
        report,
        total_revenue_rate: total,
    })
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::figure1_ids;

    use crate::{greedy, Normalized};

    use super::*;

    #[test]
    fn uniform_revenue_changes_nothing() {
        let (g, _) = figure1_ids();
        let plain = greedy::solve::<Normalized>(&g, 2).unwrap();
        let rev = solve::<Normalized>(&g, &[5.0; 5], 2).unwrap();
        assert_eq!(rev.report.order, plain.order);
        assert!((rev.report.cover - plain.cover).abs() < 1e-9);
        // Total rate = 5 (every request earns 5).
        assert!((rev.total_revenue_rate - 5.0).abs() < 1e-9);
        assert!((rev.expected_revenue_per_request() - 5.0 * plain.cover).abs() < 1e-9);
    }

    #[test]
    fn high_revenue_item_gets_retained() {
        let (g, ids) = figure1_ids();
        // Make E enormously profitable; with k = 1 the solver should now
        // pick D (covering E at 0.9 plus itself) or E itself over B.
        let mut revenues = [1.0; 5];
        revenues[ids.e.index()] = 100.0;
        let rev = solve::<Normalized>(&g, &revenues, 1).unwrap();
        assert_eq!(rev.report.order.len(), 1);
        let picked = rev.report.order[0];
        assert!(
            picked == ids.e || picked == ids.d,
            "expected E or D, got {picked}"
        );
        // E itself is worth 17 of the ~18.8 total rate; D covers 0.9 of
        // that plus its own 0.06 — E wins.
        assert_eq!(picked, ids.e);
    }

    #[test]
    fn zero_revenue_items_never_attract_selection() {
        let (g, ids) = figure1_ids();
        let mut revenues = [1.0; 5];
        revenues[ids.b.index()] = 0.0;
        revenues[ids.c.index()] = 0.0;
        let rev = solve::<Normalized>(&g, &revenues, 1).unwrap();
        // Without B/C revenue, A is the biggest prize.
        assert_eq!(rev.report.order[0], ids.a);
    }

    #[test]
    fn validation_errors() {
        let (g, _) = figure1_ids();
        assert!(scale_by_revenue(&g, &[1.0; 3]).is_err());
        assert!(scale_by_revenue(&g, &[1.0, 1.0, 1.0, 1.0, -2.0]).is_err());
        assert!(scale_by_revenue(&g, &[0.0; 5]).is_err());
        assert!(scale_by_revenue(&g, &[1.0, f64::NAN, 1.0, 1.0, 1.0]).is_err());
    }
}

//! The Markov chain choice model (MCCM) — the Operations Research model
//! the paper's related work (Section 6) names as closest to its Normalized
//! variant (Blanchet, Gallego, Goyal: "A Markov chain approximation to
//! choice modeling", Operations Research 2016).
//!
//! A consumer arrives wanting item `i` with probability `λ_i`. If `i` is in
//! the assortment `S` she buys it; otherwise she transitions to item `j`
//! with probability `ρ_ij` (or abandons with probability `1 − Σ_j ρ_ij`)
//! and the process repeats. The value of `S` is the probability of eventual
//! purchase — the absorption probability of the chain into `S`.
//!
//! The paper's model deliberately avoids multi-step dynamics by assuming
//! the preference graph already encodes transitive substitution ("the
//! preference graph is the transitive closure of a graph modeling browsing
//! probabilities", Section 2). This module makes that claim *testable*:
//! build an MCCM on a browse graph, take the
//! [`transitive_closure`](pcover_graph::transform::transitive_closure) of
//! the same graph, run the paper's one-hop greedy on the closure, and
//! evaluate both answers under the exact Markov objective. For singleton
//! coverage the closure is exact; for sets it union-bounds the chain's
//! first-absorption probability, and in practice the one-hop solution
//! captures nearly all of the MC-optimal value while being orders of
//! magnitude cheaper (each MC gain evaluation solves a linear system).

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use std::time::Instant;

use pcover_graph::{ItemId, PreferenceGraph};

use crate::report::{Algorithm, SolveReport};
use crate::SolveError;

/// A Markov chain choice model over a catalog.
///
/// Built from a preference-style graph whose node weights are arrival
/// probabilities and whose edge weights are transition probabilities;
/// every node's outgoing transition mass must be ≤ 1 (the deficit is the
/// abandonment probability).
#[derive(Clone, Debug)]
pub struct MarkovChoiceModel {
    arrival: Vec<f64>,
    /// Out-transitions per node, `(target, probability)`.
    transitions: Vec<Vec<(ItemId, f64)>>,
}

/// Options controlling the absorption solve.
#[derive(Clone, Copy, Debug)]
pub struct MarkovOptions {
    /// Stop iterating when the max per-node update falls below this.
    pub tolerance: f64,
    /// Hard iteration cap (substochastic chains converge geometrically;
    /// this guards degenerate inputs).
    pub max_iterations: usize,
}

impl Default for MarkovOptions {
    fn default() -> Self {
        MarkovOptions {
            tolerance: 1e-10,
            max_iterations: 10_000,
        }
    }
}

impl MarkovChoiceModel {
    /// Builds the model from a browse graph.
    ///
    /// # Errors
    ///
    /// Rejects graphs violating the substochastic requirement
    /// (out-weight sums > 1).
    pub fn from_graph(g: &PreferenceGraph) -> Result<Self, SolveError> {
        for v in g.node_ids() {
            let s = g.out_weight_sum(v);
            if s > 1.0 + 1e-9 {
                return Err(SolveError::InvalidPrefix {
                    message: format!(
                        "node {v} has transition mass {s} > 1; not a substochastic chain"
                    ),
                });
            }
        }
        Ok(MarkovChoiceModel {
            arrival: g.node_weights().to_vec(),
            transitions: g
                .node_ids()
                .map(|v| g.out_edges(v).filter(|&(u, _)| u != v).collect())
                .collect(),
        })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.arrival.len()
    }

    /// True when the model has no items.
    pub fn is_empty(&self) -> bool {
        self.arrival.is_empty()
    }

    /// The exact assortment value: the probability that a consumer
    /// following the chain eventually purchases an item of `selected`.
    ///
    /// Solves `p_i = [i ∈ S] + [i ∉ S] Σ_j ρ_ij p_j` by Gauss-Seidel
    /// iteration; converges geometrically at the chain's abandonment rate.
    pub fn assortment_value(&self, selected: &[bool], opts: &MarkovOptions) -> f64 {
        assert_eq!(
            selected.len(),
            self.len(),
            "selection mask has wrong length"
        );
        let n = self.len();
        let mut p = vec![0.0f64; n];
        for (i, &sel) in selected.iter().enumerate() {
            if sel {
                p[i] = 1.0;
            }
        }
        for _ in 0..opts.max_iterations {
            let mut delta = 0.0f64;
            for i in 0..n {
                if selected[i] {
                    continue;
                }
                let next: f64 = self.transitions[i]
                    .iter()
                    .map(|&(j, rho)| rho * p[j.index()])
                    .sum();
                delta = delta.max((next - p[i]).abs());
                p[i] = next;
            }
            if delta < opts.tolerance {
                break;
            }
        }
        self.arrival
            .iter()
            .zip(&p)
            .map(|(&lambda, &pi)| lambda * pi)
            .sum()
    }

    /// Convenience wrapper over item ids.
    pub fn assortment_value_of(&self, selected: &[ItemId], opts: &MarkovOptions) -> f64 {
        let mut mask = vec![false; self.len()];
        for &v in selected {
            mask[v.index()] = true;
        }
        self.assortment_value(&mask, opts)
    }
}

/// Greedy assortment optimization under the exact Markov objective.
///
/// Each candidate evaluation solves the absorption system, so an iteration
/// costs `O(n · m · iters)` — the scalability wall that motivates the
/// paper's one-hop model. Intended for small/medium instances and as the
/// quality reference in experiments.
pub fn greedy_assortment(
    model: &MarkovChoiceModel,
    k: usize,
    opts: &MarkovOptions,
) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = model.len();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }

    let mut selected = vec![false; n];
    let mut order = Vec::with_capacity(k);
    let mut trajectory = Vec::with_capacity(k);
    let mut current = 0.0f64;
    let mut evaluations = 0u64;

    for _ in 0..k {
        let mut best: Option<(f64, usize)> = None;
        for v in 0..n {
            if selected[v] {
                continue;
            }
            selected[v] = true;
            let value = model.assortment_value(&selected, opts);
            selected[v] = false;
            evaluations += 1;
            let gain = value - current;
            let better = crate::float::improves_argmax(gain, v, best);
            if better {
                best = Some((gain, v));
            }
        }
        let Some((gain, v)) = best else {
            return Err(SolveError::internal(
                "markov greedy found no candidate despite k <= n",
            ));
        };
        selected[v] = true;
        current += gain;
        order.push(ItemId::from_index(v));
        trajectory.push(current);
    }

    // Per-item absorbed probability for the report's I-array slot.
    let item_cover: Vec<f64> = {
        let mut p = vec![0.0; n];
        // One more solve to extract per-item values.
        let value_mask = selected.clone();
        let mut probs = vec![0.0f64; n];
        for (i, &sel) in value_mask.iter().enumerate() {
            if sel {
                probs[i] = 1.0;
            }
        }
        for _ in 0..opts.max_iterations {
            let mut delta = 0.0f64;
            for i in 0..n {
                if value_mask[i] {
                    continue;
                }
                let next: f64 = model.transitions[i]
                    .iter()
                    .map(|&(j, rho)| rho * probs[j.index()])
                    .sum();
                delta = delta.max((next - probs[i]).abs());
                probs[i] = next;
            }
            if delta < opts.tolerance {
                break;
            }
        }
        for i in 0..n {
            p[i] = model.arrival[i] * probs[i];
        }
        p
    };

    Ok(SolveReport {
        algorithm: Algorithm::Greedy,
        variant: crate::Variant::Normalized,
        order,
        trajectory,
        cover: current,
        item_cover,
        elapsed: started.elapsed(),
        gain_evaluations: evaluations,
    })
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use pcover_graph::examples::figure1_ids;
    use pcover_graph::transform::{transitive_closure, PathCombination};
    use pcover_graph::GraphBuilder;

    use crate::{greedy, Normalized};

    use super::*;

    #[test]
    fn absorption_on_figure1_matches_one_hop_for_transitive_graph() {
        // Figure 1's graph is already transitively closed, so MC absorption
        // equals the Normalized one-hop cover for every selection.
        let (g, ids) = figure1_ids();
        let model = MarkovChoiceModel::from_graph(&g).unwrap();
        let opts = MarkovOptions::default();
        for sel in [vec![ids.b, ids.d], vec![ids.a, ids.b], vec![ids.c]] {
            let mut mask = vec![false; g.node_count()];
            for &v in &sel {
                mask[v.index()] = true;
            }
            let mc = model.assortment_value(&mask, &opts);
            let one_hop = crate::cover_value::<Normalized>(&g, &mask);
            // B <-> C is a 2-cycle: with both absent the chain bounces; for
            // selections containing B or C they agree exactly. {B, D}:
            assert!(
                (mc - one_hop).abs() < 1e-9 || mc >= one_hop,
                "selection {sel:?}: MC {mc} vs one-hop {one_hop}"
            );
        }
        // The canonical pair matches the 87.3% exactly.
        let mut mask = vec![false; g.node_count()];
        mask[ids.b.index()] = true;
        mask[ids.d.index()] = true;
        assert!((model.assortment_value(&mask, &opts) - 0.873).abs() < 1e-9);
    }

    #[test]
    fn multi_hop_chain_absorbs_transitively() {
        // x -> y -> z, select only z: MC reaches z from x via y with
        // probability 0.5 * 0.4; one-hop sees nothing from x.
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        let z = b.add_node(1.0);
        b.add_edge(x, y, 0.5).unwrap();
        b.add_edge(y, z, 0.4).unwrap();
        let g = b.build().unwrap();
        let model = MarkovChoiceModel::from_graph(&g).unwrap();
        let mask = vec![false, false, true];
        let mc = model.assortment_value(&mask, &MarkovOptions::default());
        // z's own third + y reaching z (0.4/3) + x reaching z (0.2/3).
        let expected = (1.0 + 0.4 + 0.2) / 3.0;
        assert!((mc - expected).abs() < 1e-9, "{mc} vs {expected}");
        let one_hop = crate::cover_value::<Normalized>(&g, &mask);
        assert!(mc > one_hop);
    }

    #[test]
    fn transitive_closure_bridges_the_models() {
        // For a *single* retained item the closure edge weight IS the
        // chain's reach probability, so the models agree exactly; for
        // larger sets the one-hop sum union-bounds the chain's
        // first-absorption probability (a path through one retained item
        // cannot also be absorbed by a later one), so closure-one-hop is a
        // tight upper bound. Both facts are what justify the paper's
        // "preference graph = transitive closure" modeling shortcut.
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let ids: Vec<ItemId> = (0..5).map(|_| b.add_node(1.0)).collect();
        b.add_edge(ids[0], ids[1], 0.5).unwrap();
        b.add_edge(ids[1], ids[2], 0.6).unwrap();
        b.add_edge(ids[2], ids[3], 0.7).unwrap();
        b.add_edge(ids[3], ids[4], 0.8).unwrap();
        let browse = b.build().unwrap();
        let closed =
            transitive_closure(&browse, 5, 1e-12, PathCombination::NormalizedClamped).unwrap();
        let model = MarkovChoiceModel::from_graph(&browse).unwrap();

        for bits in 0u32..32 {
            let mask: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let mc = model.assortment_value(&mask, &MarkovOptions::default());
            let one_hop_closed = crate::cover_value::<Normalized>(&closed, &mask);
            if mask.iter().filter(|&&s| s).count() <= 1 {
                assert!(
                    (mc - one_hop_closed).abs() < 1e-9,
                    "bits {bits:b}: MC {mc} vs closed one-hop {one_hop_closed}"
                );
            } else {
                assert!(
                    mc <= one_hop_closed + 1e-9,
                    "bits {bits:b}: MC {mc} exceeds closed one-hop {one_hop_closed}"
                );
            }
        }
    }

    #[test]
    fn greedy_assortment_on_figure1() {
        let (g, ids) = figure1_ids();
        let model = MarkovChoiceModel::from_graph(&g).unwrap();
        let r = greedy_assortment(&model, 2, &MarkovOptions::default()).unwrap();
        // Figure 1 is transitively closed, so the MC greedy agrees with the
        // paper's greedy.
        let paper = greedy::solve::<Normalized>(&g, 2).unwrap();
        assert_eq!(r.order, paper.order, "MC greedy diverged");
        assert!((r.cover - 0.873).abs() < 1e-6);
        assert_eq!(r.order, vec![ids.b, ids.d]);
    }

    #[test]
    fn full_selection_value_is_total_arrival() {
        let (g, _) = figure1_ids();
        let model = MarkovChoiceModel::from_graph(&g).unwrap();
        let mask = vec![true; g.node_count()];
        let v = model.assortment_value(&mask, &MarkovOptions::default());
        assert!((v - 1.0).abs() < 1e-9);
        let empty = vec![false; g.node_count()];
        assert_eq!(
            model.assortment_value(&empty, &MarkovOptions::default()),
            0.0
        );
    }

    #[test]
    fn superstochastic_graph_rejected() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0.5);
        let y = b.add_node(0.3);
        let z = b.add_node(0.2);
        b.add_edge(x, y, 0.8).unwrap();
        b.add_edge(x, z, 0.8).unwrap();
        let g = b.build().unwrap();
        assert!(MarkovChoiceModel::from_graph(&g).is_err());
    }

    #[test]
    fn two_cycle_absorption_converges() {
        // x <-> y with total mass 1 each and no absorption when neither is
        // selected: probabilities must stay 0, not diverge.
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        b.add_edge(x, y, 1.0).unwrap();
        b.add_edge(y, x, 1.0).unwrap();
        let g = b.build().unwrap();
        let model = MarkovChoiceModel::from_graph(&g).unwrap();
        let none = model.assortment_value(&[false, false], &MarkovOptions::default());
        assert!(none.abs() < 1e-9);
        let one = model.assortment_value(&[true, false], &MarkovOptions::default());
        // y always reaches x.
        assert!((one - 1.0).abs() < 1e-9);
    }
}

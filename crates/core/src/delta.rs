//! Delta greedy — Algorithm 1 with dirty-set gain maintenance.
//!
//! Plain greedy recomputes every non-retained candidate's gain each round,
//! `O(nkD)` total, even though retaining `v` leaves almost all gains
//! untouched. `AddNode(v)` (Algorithm 3/5) changes `I` for exactly
//! `{v} ∪ in(v)` (non-retained in-neighbors), and a candidate `c`'s gain
//! (Algorithm 2/4) reads only `I[c]`, the membership of its in-neighbors,
//! and `I[u]` for `u ∈ in(c)`. So after retaining `v` the only candidates
//! whose gain can change are
//!
//! * the nodes whose own `I` changed — `{v} ∪ in(v)` — and
//! * the out-neighbors of those nodes (`c` reads `I[u]` iff `c ∈ out(u)`,
//!   by CSR row symmetry),
//!
//! both walked directly off the CSR out-rows. This solver caches the gain
//! array, marks exactly that dirty set after each selection, and recomputes
//! only dirty entries at the next round: `O(n)` evaluations for the first
//! round, then `O(|dirty|)` per round instead of `O(n)` — on sparse graphs
//! a per-round cost of roughly `D · d_out` rather than `n`.
//!
//! A cached (clean) gain is **bit-identical** to what plain greedy would
//! recompute — same `I`, same membership, same weights, same arithmetic —
//! and selection goes through the audited
//! [`float::improves_argmax`](crate::float::improves_argmax) tie-break, so
//! the retained set, cover, and trajectory are bit-identical to
//! [`greedy::solve`](crate::greedy::solve) for both IPC and NPC. The
//! determinism grid asserts this.
//!
//! [`parallel_solve_with`] is the chunked variant: each round splits the
//! dirty list into `threads` contiguous slices, recomputes gains on the
//! shared pool (pure reads of the state; results are gathered slot-indexed
//! and written back sequentially), and selects sequentially — bit-identical
//! for every thread count.

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use std::time::Instant;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pcover_graph::{ItemId, PreferenceGraph};

use crate::cover::CoverState;
use crate::greedy::finish;
use crate::report::{Algorithm, SolveReport};
use crate::solver::{RoundStats, SolveCtx, Solver, SolverCaps, SolverSpec};
use crate::variant::{CoverModel, Variant};
use crate::{Independent, Normalized, SolveError};

/// The cached-gain bookkeeping shared by the sequential and chunked
/// variants: per-node gains, a dedup flag array, and the dirty work list.
struct GainCache {
    gains: Vec<f64>,
    is_dirty: Vec<bool>,
    dirty: Vec<ItemId>,
    /// Per-slot result buffers for the chunked-parallel refresh, one per
    /// worker slice. Allocated up to the observed slot count once, then
    /// cleared and refilled each round — the per-round `collect()`s this
    /// replaces were the workspace's own `alloc-in-hot-loop` findings.
    scratch: Vec<Vec<(ItemId, f64)>>,
}

impl GainCache {
    /// Everything starts dirty: the first round is a full scan, exactly
    /// like plain greedy's first round.
    fn new(g: &PreferenceGraph) -> Self {
        let n = g.node_count();
        GainCache {
            gains: vec![0.0; n],
            is_dirty: vec![true; n],
            dirty: g.node_ids().collect(),
            scratch: Vec::new(),
        }
    }

    /// Marks `x` dirty, once.
    fn mark(&mut self, x: ItemId) {
        if !self.is_dirty[x.index()] {
            self.is_dirty[x.index()] = true;
            self.dirty.push(x);
        }
    }

    /// Marks the nodes whose gain can change when `chosen` is retained.
    /// Must be called **before** `add_node(chosen)` so "non-retained
    /// in-neighbor" is judged against the pre-add state (the set is the
    /// same either way — `chosen` itself is handled explicitly — but the
    /// precondition keeps the derivation honest).
    fn mark_stale_after_select(&mut self, g: &PreferenceGraph, state: &CoverState, chosen: ItemId) {
        // I[chosen] changes (and its membership flips, which affects every
        // candidate that reads it — exactly out(chosen)).
        self.mark(chosen);
        for (t, _) in g.out_edges(chosen) {
            self.mark(t);
        }
        // I[u] changes for every non-retained in-neighbor u of chosen, so u
        // itself and every candidate reading I[u] — out(u) — go stale.
        for (u, _) in g.in_edges(chosen) {
            if u == chosen || state.contains(u) {
                continue;
            }
            self.mark(u);
            for (t, _) in g.out_edges(u) {
                self.mark(t);
            }
        }
    }

    /// Sequentially recomputes every dirty gain, clearing the dirty set.
    /// Returns the number of gain evaluations performed (retained nodes are
    /// skipped and not counted, matching plain greedy's accounting).
    fn refresh<M: CoverModel>(&mut self, g: &PreferenceGraph, state: &CoverState) -> u64 {
        let mut evals = 0u64;
        for &v in &self.dirty {
            self.is_dirty[v.index()] = false;
            if state.contains(v) {
                continue;
            }
            self.gains[v.index()] = state.gain::<M>(g, v);
            evals += 1;
        }
        self.dirty.clear();
        evals
    }

    /// The audited argmax over the cached gain array (no gain evaluations:
    /// clean entries are bit-identical to a fresh recomputation).
    fn select_best(&self, g: &PreferenceGraph, state: &CoverState) -> Option<(f64, ItemId)> {
        let mut best: Option<(f64, ItemId)> = None;
        for v in g.node_ids() {
            if state.contains(v) {
                continue;
            }
            let gain = self.gains[v.index()];
            if crate::float::improves_argmax(gain, v, best) {
                best = Some((gain, v));
            }
        }
        best
    }
}

/// Runs delta greedy for budget `k`. Bit-identical output to
/// [`greedy::solve`](crate::greedy::solve), strictly fewer gain
/// evaluations whenever some round leaves a candidate clean.
///
/// ```
/// use pcover_core::{delta, greedy, Normalized};
/// use pcover_graph::examples::figure1;
///
/// let g = figure1();
/// let d = delta::solve::<Normalized>(&g, 2).unwrap();
/// let p = greedy::solve::<Normalized>(&g, 2).unwrap();
/// assert_eq!(d.order, p.order);
/// assert_eq!(d.cover.to_bits(), p.cover.to_bits());
/// ```
///
/// # Errors
///
/// [`SolveError::KTooLarge`] if `k > n`.
pub fn solve<M: CoverModel>(g: &PreferenceGraph, k: usize) -> Result<SolveReport, SolveError> {
    solve_with::<M>(g, k, &mut SolveCtx::default())
}

/// [`solve`] with an execution context: observers installed on `ctx` see
/// each selection live; cancellation is polled every round.
///
/// # Errors
///
/// As [`solve`], plus [`SolveError::Cancelled`] when the observer signals.
pub fn solve_with<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    ctx: &mut SolveCtx<'_>,
) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }

    let mut state = CoverState::new(n);
    let mut cache = GainCache::new(g);
    let mut trajectory = Vec::with_capacity(k);
    let mut gain_evaluations = 0u64;

    for iter in 0..k {
        ctx.check_cancelled()?;
        let round_evals = cache.refresh::<M>(g, &state);
        gain_evaluations += round_evals;
        let Some((gain, chosen)) = cache.select_best(g, &state) else {
            return Err(SolveError::internal(
                "greedy round found no candidate despite k <= n",
            ));
        };
        cache.mark_stale_after_select(g, &state, chosen);
        state.add_node::<M>(g, chosen);
        trajectory.push(state.cover());
        ctx.emit_select(iter, chosen, gain, state.cover());
        ctx.emit_round_stats(RoundStats {
            iter,
            gain_evaluations: round_evals,
        });
    }

    Ok(finish::<M>(
        Algorithm::DeltaGreedy,
        state,
        trajectory,
        started,
        gain_evaluations,
    ))
}

/// Chunked-parallel delta greedy: the dirty list is split into `threads`
/// contiguous slices and refreshed on the shared pool
/// ([`pool::shared_pool`](crate::pool::shared_pool)); gathered results are
/// written back in slot order and selection stays sequential, so the output
/// is bit-identical to [`solve`] (and therefore to plain greedy) for every
/// thread count.
///
/// # Errors
///
/// [`SolveError::KTooLarge`] if `k > n`; [`SolveError::ZeroThreads`] if
/// `threads == 0`.
pub fn parallel_solve<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    threads: usize,
) -> Result<SolveReport, SolveError> {
    parallel_solve_with::<M>(g, k, threads, &mut SolveCtx::default())
}

/// [`parallel_solve`] with an execution context.
///
/// # Errors
///
/// As [`parallel_solve`], plus [`SolveError::Cancelled`] when the observer
/// signals.
pub fn parallel_solve_with<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    threads: usize,
    ctx: &mut SolveCtx<'_>,
) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }
    let pool = crate::pool::shared_pool(threads)?;

    let mut state = CoverState::new(n);
    let mut cache = GainCache::new(g);
    let mut trajectory = Vec::with_capacity(k);
    let mut gain_evaluations = 0u64;

    for iter in 0..k {
        ctx.check_cancelled()?;
        // Refresh: contiguous slices of the dirty list, recomputed on the
        // pool. The workers only *read* the state; each slice's results
        // land in that slice's reusable scratch slot (cleared, never
        // reallocated, across rounds), then are written back sequentially
        // below (dirty entries are unique, so the writes are disjoint).
        // Split borrows so the closure can read `dirty` while filling
        // `scratch`.
        let GainCache {
            gains,
            is_dirty,
            dirty,
            scratch,
        } = &mut cache;
        let chunk = dirty.len().div_ceil(threads).max(1);
        let slots = dirty.len().div_ceil(chunk);
        if scratch.len() < slots {
            scratch.resize_with(slots, Vec::new);
        }
        pool.install(|| {
            scratch[..slots]
                .par_iter_mut()
                .enumerate()
                .for_each(|(si, slot)| {
                    slot.clear();
                    let start = si * chunk;
                    let end = (start + chunk).min(dirty.len());
                    for &v in &dirty[start..end] {
                        if !state.contains(v) {
                            slot.push((v, state.gain::<M>(g, v)));
                        }
                    }
                })
        });
        let mut round_evals = 0u64;
        for slot in &scratch[..slots] {
            for &(v, gain) in slot {
                gains[v.index()] = gain;
                round_evals += 1;
            }
        }
        for &v in dirty.iter() {
            is_dirty[v.index()] = false;
        }
        dirty.clear();
        gain_evaluations += round_evals;

        let Some((gain, chosen)) = cache.select_best(g, &state) else {
            return Err(SolveError::internal(
                "greedy round found no candidate despite k <= n",
            ));
        };
        cache.mark_stale_after_select(g, &state, chosen);
        state.add_node::<M>(g, chosen);
        trajectory.push(state.cover());
        ctx.emit_select(iter, chosen, gain, state.cover());
        ctx.emit_round_stats(RoundStats {
            iter,
            gain_evaluations: round_evals,
        });
    }

    Ok(finish::<M>(
        Algorithm::DeltaParallelGreedy,
        state,
        trajectory,
        started,
        gain_evaluations,
    ))
}

/// Delta greedy as a registry [`Solver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DeltaGreedy;

impl Solver for DeltaGreedy {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        solve_with::<M>(g, k, ctx)
    }
}

/// The registry entry for [`DeltaGreedy`]; warm-capable via
/// [`resolve_warm`].
pub fn spec() -> SolverSpec {
    SolverSpec::new(
        "delta",
        Algorithm::DeltaGreedy,
        "Delta greedy: cached gains + dirty-set maintenance, bit-identical to greedy, O(n + k·dirty)",
        SolverCaps::default(),
        |v, g, k, ctx| DeltaGreedy.dispatch(v, g, k, ctx),
    )
    .with_warm(|v, g, k, touched, warm, ctx| {
        resolve_warm_variant(v, g, k, touched, warm, Algorithm::DeltaGreedy, ctx)
    })
}

/// Chunked-parallel delta greedy as a registry [`Solver`].
#[derive(Clone, Copy, Debug)]
pub struct DeltaParallelGreedy {
    /// Worker thread count (must be at least 1).
    pub threads: usize,
}

impl Solver for DeltaParallelGreedy {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        parallel_solve_with::<M>(g, k, self.threads, ctx)
    }
}

/// The registry entry for [`DeltaParallelGreedy`]; thread count comes from
/// [`SolverConfig::threads`](crate::solver::SolverConfig::threads).
pub fn parallel_spec() -> SolverSpec {
    SolverSpec::new(
        "delta-parallel",
        Algorithm::DeltaParallelGreedy,
        "Delta greedy with the dirty-set refresh chunked over the shared rayon pool",
        SolverCaps {
            supports_threads: true,
            ..SolverCaps::default()
        },
        |v, g, k, ctx| {
            DeltaParallelGreedy {
                threads: ctx.config.threads,
            }
            .dispatch(v, g, k, ctx)
        },
    )
    .with_warm(|v, g, k, touched, warm, ctx| {
        // The repair loop is sequential (round 0 touches only the dirty
        // frontier — chunking it buys nothing), but stays bit-identical to
        // the chunked cold solve, which is itself bit-identical to `solve`.
        resolve_warm_variant(v, g, k, touched, warm, Algorithm::DeltaParallelGreedy, ctx)
    })
}

/// The serialized solver state one snapshot generation hands the next: the
/// retained order it produced, its round-0 gain array, and the node-weight
/// vector those gains were computed under.
///
/// Round-0 gains (gains against the empty set, `I ≡ 0`) depend only on the
/// graph and the [`Variant`] — not on any solve order — so capturing them
/// needs no instrumentation of the original solve and a single state is
/// valid for every budget `k`. [`resolve_warm`] repairs this state against
/// the post-delta graph instead of rescanning all `n` candidates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WarmState {
    variant: Variant,
    order: Vec<ItemId>,
    gains: Vec<f64>,
    node_weights: Vec<f64>,
}

impl WarmState {
    /// Captures a warm state from `g`: round-0 gains for every node under
    /// `M`, the current weight vector, and the previous solution `order`
    /// (used only to count reused vs repaired rounds — correctness never
    /// depends on it). Costs `O(n + m)`, off the query path.
    pub fn capture<M: CoverModel>(g: &PreferenceGraph, order: &[ItemId]) -> Self {
        let empty = CoverState::new(g.node_count());
        WarmState {
            variant: M::VARIANT,
            order: order.to_vec(),
            gains: g.node_ids().map(|v| empty.gain::<M>(g, v)).collect(),
            node_weights: g.node_weights().to_vec(),
        }
    }

    /// [`Self::capture`] with the variant resolved at runtime.
    pub fn capture_variant(variant: Variant, g: &PreferenceGraph, order: &[ItemId]) -> Self {
        match variant {
            Variant::Independent => Self::capture::<Independent>(g, order),
            Variant::Normalized => Self::capture::<Normalized>(g, order),
        }
    }

    /// Whether this state can warm-start a solve of `g` under `variant`:
    /// same variant, same node count (a delta that added nodes invalidates
    /// the dense gain array — warm start is declined, not repaired).
    pub fn accepts(&self, variant: Variant, g: &PreferenceGraph) -> bool {
        let n = g.node_count();
        // lint: allow(float-eq) — compares vector lengths against the node count, not float values
        self.variant == variant && self.gains.len() == n && self.node_weights.len() == n
    }

    /// The variant the state was captured under.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The previous generation's retained order.
    pub fn order(&self) -> &[ItemId] {
        &self.order
    }
}

/// A warm re-solve result: the (bit-identical-to-cold) report plus how much
/// of the previous solution survived.
#[derive(Clone, Debug)]
pub struct WarmOutcome {
    /// The solve report — order, cover, and trajectory bit-identical to a
    /// cold delta-greedy solve on the same graph.
    pub report: SolveReport,
    /// Leading positions where the audited argmax re-selected exactly the
    /// previous generation's pick (counted while the prefix is intact).
    pub rounds_reused: usize,
    /// Rounds selected fresh: `k - rounds_reused`.
    pub rounds_repaired: usize,
}

/// Warm-start re-solve: repairs `warm` (captured on the pre-delta graph)
/// against the post-delta graph `g`, recomputing gains only for the dirty
/// frontier.
///
/// The dirty set is `touched` (the delta's
/// [`touched_nodes`](pcover_graph::delta::GraphDelta::touched_nodes)
/// frontier) plus every node whose weight drifted bitwise since capture —
/// a renormalizing delta perturbs *all* weights, which this check absorbs
/// without any assumption about the delta's shape — together with the
/// out-rows of drifted nodes (a candidate reads the weight of each
/// in-neighbor). Every clean cached gain is then bitwise what a cold
/// round-0 scan would recompute, so each round's audited
/// [`improves_argmax`](crate::float::improves_argmax) selection — verifying
/// the retained prefix in order, resuming full selection from the first
/// invalidated round — is bit-identical to the cold solve's, for the
/// retained order, cover, and trajectory alike. `gain_evaluations` counts
/// only true recomputations: `O(|dirty|)` in round 0 instead of `O(n)`,
/// identical to cold delta-greedy afterwards.
///
/// `algorithm` stamps the report (the repair loop itself is sequential).
///
/// # Errors
///
/// [`SolveError::KTooLarge`] if `k > n`; [`SolveError::Cancelled`] when the
/// observer signals; an internal error when `warm` does not
/// [`accept`](WarmState::accepts) `g` under `M` — callers gate on `accepts`
/// and fall back to a cold solve.
pub fn resolve_warm<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    touched: &[ItemId],
    warm: &WarmState,
    algorithm: Algorithm,
    ctx: &mut SolveCtx<'_>,
) -> Result<WarmOutcome, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }
    if !warm.accepts(M::VARIANT, g) {
        return Err(SolveError::internal(
            "warm state does not match the requested variant and graph shape",
        ));
    }

    let mut state = CoverState::new(n);
    let mut cache = GainCache {
        gains: warm.gains.clone(),
        is_dirty: vec![false; n],
        dirty: Vec::new(),
        scratch: Vec::new(),
    };
    for &v in touched {
        if v.index() < n {
            cache.mark(v);
        }
    }
    for v in g.node_ids() {
        if warm.node_weights[v.index()].to_bits() != g.node_weight(v).to_bits() {
            cache.mark(v);
            for (t, _) in g.out_edges(v) {
                cache.mark(t);
            }
        }
    }

    let mut trajectory = Vec::with_capacity(k);
    let mut gain_evaluations = 0u64;
    let mut rounds_reused = 0usize;
    let mut prefix_intact = true;

    for iter in 0..k {
        ctx.check_cancelled()?;
        let round_evals = cache.refresh::<M>(g, &state);
        gain_evaluations += round_evals;
        let Some((gain, chosen)) = cache.select_best(g, &state) else {
            return Err(SolveError::internal(
                "greedy round found no candidate despite k <= n",
            ));
        };
        if prefix_intact && warm.order.get(iter) == Some(&chosen) {
            rounds_reused += 1;
        } else {
            prefix_intact = false;
        }
        cache.mark_stale_after_select(g, &state, chosen);
        state.add_node::<M>(g, chosen);
        trajectory.push(state.cover());
        ctx.emit_select(iter, chosen, gain, state.cover());
        ctx.emit_round_stats(RoundStats {
            iter,
            gain_evaluations: round_evals,
        });
    }

    let rounds_repaired = k - rounds_reused;
    Ok(WarmOutcome {
        report: finish::<M>(algorithm, state, trajectory, started, gain_evaluations),
        rounds_reused,
        rounds_repaired,
    })
}

/// Runtime-variant dispatch for [`resolve_warm`].
///
/// # Errors
///
/// As [`resolve_warm`].
pub fn resolve_warm_variant(
    variant: Variant,
    g: &PreferenceGraph,
    k: usize,
    touched: &[ItemId],
    warm: &WarmState,
    algorithm: Algorithm,
    ctx: &mut SolveCtx<'_>,
) -> Result<WarmOutcome, SolveError> {
    match variant {
        Variant::Independent => resolve_warm::<Independent>(g, k, touched, warm, algorithm, ctx),
        Variant::Normalized => resolve_warm::<Normalized>(g, k, touched, warm, algorithm, ctx),
    }
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::figure1_ids;
    use pcover_graph::GraphBuilder;
    use rand::{RngExt, SeedableRng};

    use crate::{greedy, Independent, Normalized};

    use super::*;

    fn random_graph(n: usize, seed: u64) -> PreferenceGraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new()
            .normalize_node_weights(true)
            .duplicate_edge_policy(pcover_graph::DuplicateEdgePolicy::Max);
        let ids: Vec<ItemId> = (0..n)
            .map(|_| b.add_node(rng.random_range(1.0..50.0)))
            .collect();
        for &v in &ids {
            for _ in 0..3 {
                let u = ids[rng.random_range(0..n)];
                if u != v {
                    b.add_edge(v, u, rng.random_range(0.05..0.95)).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn figure1_matches_plain_greedy_bitwise() {
        let (g, ids) = figure1_ids();
        let d = solve::<Normalized>(&g, 2).unwrap();
        let p = greedy::solve::<Normalized>(&g, 2).unwrap();
        assert_eq!(d.order, vec![ids.b, ids.d]);
        assert_eq!(d.order, p.order);
        assert_eq!(d.cover.to_bits(), p.cover.to_bits());
        for (a, b) in d.trajectory.iter().zip(&p.trajectory) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matches_plain_greedy_on_random_graphs() {
        for seed in 0..3 {
            let g = random_graph(50, seed);
            for k in [0, 1, 5, 25, 50] {
                let p = greedy::solve::<Independent>(&g, k).unwrap();
                let d = solve::<Independent>(&g, k).unwrap();
                assert_eq!(d.order, p.order, "seed {seed} k {k}");
                assert_eq!(d.cover.to_bits(), p.cover.to_bits(), "seed {seed} k {k}");
                for threads in [1, 2, 4, 7] {
                    let dp = parallel_solve::<Independent>(&g, k, threads).unwrap();
                    assert_eq!(dp.order, p.order, "seed {seed} k {k} threads {threads}");
                    assert_eq!(dp.cover.to_bits(), p.cover.to_bits());
                }
            }
        }
    }

    #[test]
    fn evaluates_fewer_gains_than_plain_greedy() {
        // Sparse graph: after round one, only the selected node's
        // neighborhood goes stale, so delta does far fewer evaluations.
        let g = random_graph(150, 9);
        for k in [2, 10, 75] {
            let p = greedy::solve::<Normalized>(&g, k).unwrap();
            let d = solve::<Normalized>(&g, k).unwrap();
            assert!(
                d.gain_evaluations < p.gain_evaluations,
                "k {k}: delta {} vs greedy {}",
                d.gain_evaluations,
                p.gain_evaluations
            );
        }
    }

    #[test]
    fn first_round_is_a_full_scan() {
        let (g, _) = figure1_ids();
        // k=1 degenerates to plain greedy: n evaluations, no refresh ever
        // pays off.
        let d = solve::<Normalized>(&g, 1).unwrap();
        assert_eq!(d.gain_evaluations, 5);
    }

    #[test]
    fn k_too_large_rejected() {
        let (g, _) = figure1_ids();
        assert!(matches!(
            solve::<Normalized>(&g, 6),
            Err(SolveError::KTooLarge { k: 6, n: 5 })
        ));
        assert!(matches!(
            parallel_solve::<Normalized>(&g, 6, 2),
            Err(SolveError::KTooLarge { k: 6, n: 5 })
        ));
    }

    #[test]
    fn zero_threads_rejected() {
        let (g, _) = figure1_ids();
        assert!(matches!(
            parallel_solve::<Normalized>(&g, 1, 0),
            Err(SolveError::ZeroThreads)
        ));
    }

    #[test]
    fn self_loops_stay_inert() {
        let mut b = GraphBuilder::new()
            .allow_self_loops(true)
            .normalize_node_weights(true);
        let x = b.add_node(1.0);
        let y = b.add_node(2.0);
        b.add_edge(x, x, 0.9).unwrap();
        b.add_edge(x, y, 0.5).unwrap();
        let g = b.build().unwrap();
        for k in 0..=2 {
            let p = greedy::solve::<Independent>(&g, k).unwrap();
            let d = solve::<Independent>(&g, k).unwrap();
            assert_eq!(d.order, p.order, "k {k}");
            assert_eq!(d.cover.to_bits(), p.cover.to_bits());
        }
    }

    fn warm_ctx() -> SolveCtx<'static> {
        SolveCtx::default()
    }

    #[test]
    fn warm_resolve_matches_cold_after_edge_delta_with_fewer_evals() {
        use pcover_graph::delta::{apply, Change, GraphDelta};
        let g = random_graph(200, 5);
        let k = 40;
        let base = solve::<Normalized>(&g, k).unwrap();
        let warm = WarmState::capture::<Normalized>(&g, &base.order);

        // Edge-only delta: weights stay bitwise intact, so only the touched
        // frontier goes dirty.
        let (s, t) = {
            let v = ItemId::new(0);
            let (t, _) = g.out_edges(v).next().unwrap();
            (v, t)
        };
        let delta = GraphDelta::new().push(Change::UpsertEdge {
            source: s,
            target: t,
            weight: 0.015_625, // exactly representable
        });
        let g2 = apply(&g, &delta).unwrap();
        let touched = delta.touched_nodes(&g);

        let cold = solve::<Normalized>(&g2, k).unwrap();
        let out = resolve_warm::<Normalized>(
            &g2,
            k,
            &touched,
            &warm,
            Algorithm::DeltaGreedy,
            &mut warm_ctx(),
        )
        .unwrap();
        assert!(out.report.bit_identical_to(&cold));
        assert_eq!(out.rounds_reused + out.rounds_repaired, k);
        assert!(
            out.report.gain_evaluations < cold.gain_evaluations,
            "warm {} evals vs cold {}",
            out.report.gain_evaluations,
            cold.gain_evaluations
        );
    }

    #[test]
    fn warm_resolve_absorbs_renormalizing_delta_via_weight_drift() {
        use pcover_graph::delta::{apply, Change, GraphDelta};
        // A weight change renormalizes *every* node weight; the bitwise
        // drift scan must dirty them all, degrading gracefully to cold-level
        // work while staying bit-identical.
        let g = random_graph(80, 11);
        let k = 20;
        let base = solve::<Independent>(&g, k).unwrap();
        let warm = WarmState::capture::<Independent>(&g, &base.order);
        let delta = GraphDelta::new().push(Change::SetNodeWeight {
            node: ItemId::new(3),
            weight: 40.0,
        });
        let g2 = apply(&g, &delta).unwrap();
        let cold = solve::<Independent>(&g2, k).unwrap();
        let out = resolve_warm::<Independent>(
            &g2,
            k,
            &delta.touched_nodes(&g),
            &warm,
            Algorithm::DeltaGreedy,
            &mut warm_ctx(),
        )
        .unwrap();
        assert!(out.report.bit_identical_to(&cold));
    }

    #[test]
    fn warm_resolve_is_sound_for_any_stored_order() {
        use pcover_graph::delta::{apply, Change, GraphDelta};
        // The stored order only drives the reuse accounting; a nonsense
        // order must still produce the cold answer, with zero reuse.
        let g = random_graph(60, 7);
        let k = 15usize;
        let garbage: Vec<ItemId> = (40..40 + k).map(ItemId::from_index).collect();
        let warm = WarmState::capture::<Normalized>(&g, &garbage);
        let delta = GraphDelta::new().push(Change::RemoveEdge {
            source: ItemId::new(0),
            target: g.out_edges(ItemId::new(0)).next().unwrap().0,
        });
        let g2 = apply(&g, &delta).unwrap();
        let cold = solve::<Normalized>(&g2, k).unwrap();
        let out = resolve_warm::<Normalized>(
            &g2,
            k,
            &delta.touched_nodes(&g),
            &warm,
            Algorithm::DeltaGreedy,
            &mut warm_ctx(),
        )
        .unwrap();
        assert!(out.report.bit_identical_to(&cold));
    }

    #[test]
    fn warm_resolve_on_unchanged_graph_reuses_every_round() {
        let g = random_graph(100, 3);
        let k = 25;
        let base = solve::<Normalized>(&g, k).unwrap();
        let warm = WarmState::capture::<Normalized>(&g, &base.order);
        let out =
            resolve_warm::<Normalized>(&g, k, &[], &warm, Algorithm::DeltaGreedy, &mut warm_ctx())
                .unwrap();
        assert!(out.report.bit_identical_to(&base));
        assert_eq!(out.rounds_reused, k);
        assert_eq!(out.rounds_repaired, 0);
        // The entire round-0 scan (n evals) is saved.
        assert_eq!(
            out.report.gain_evaluations,
            base.gain_evaluations - g.node_count() as u64
        );
    }

    #[test]
    fn warm_state_gates_variant_and_shape() {
        let g = random_graph(30, 1);
        let warm = WarmState::capture::<Normalized>(&g, &[]);
        assert!(warm.accepts(Variant::Normalized, &g));
        assert!(!warm.accepts(Variant::Independent, &g));
        let bigger = random_graph(31, 1);
        assert!(!warm.accepts(Variant::Normalized, &bigger));
        assert!(resolve_warm::<Independent>(
            &g,
            2,
            &[],
            &warm,
            Algorithm::DeltaGreedy,
            &mut warm_ctx()
        )
        .is_err());
    }

    #[test]
    fn warm_state_serde_roundtrip() {
        let g = random_graph(20, 2);
        let base = solve::<Independent>(&g, 5).unwrap();
        let warm = WarmState::capture::<Independent>(&g, &base.order);
        let json = serde_json::to_string(&warm).unwrap();
        let back: WarmState = serde_json::from_str(&json).unwrap();
        assert_eq!(back.variant(), Variant::Independent);
        assert_eq!(back.order(), warm.order());
        let out =
            resolve_warm::<Independent>(&g, 5, &[], &back, Algorithm::DeltaGreedy, &mut warm_ctx())
                .unwrap();
        assert!(out.report.bit_identical_to(&base));
    }

    #[test]
    fn warm_spec_dispatch_matches_direct_call() {
        let g = random_graph(50, 4);
        let k = 10;
        let base = solve::<Normalized>(&g, k).unwrap();
        let warm = WarmState::capture::<Normalized>(&g, &base.order);
        let s = spec();
        assert!(s.supports_warm_start());
        let out = s
            .solve_warm(Variant::Normalized, &g, k, &[], &warm, &mut warm_ctx())
            .unwrap();
        assert!(out.report.bit_identical_to(&base));
        assert_eq!(out.report.algorithm, Algorithm::DeltaGreedy);
        let p = parallel_spec();
        assert!(p.supports_warm_start());
        let pout = p
            .solve_warm(Variant::Normalized, &g, k, &[], &warm, &mut warm_ctx())
            .unwrap();
        assert!(pout.report.bit_identical_to(&base));
        assert_eq!(pout.report.algorithm, Algorithm::DeltaParallelGreedy);
        // Plain greedy has no warm entry point.
        assert!(!crate::greedy::spec().supports_warm_start());
    }

    #[test]
    fn round_stats_report_dirty_counts() {
        use crate::solver::SolverConfig;
        use crate::TraceObserver;
        let g = random_graph(40, 2);
        let mut trace = TraceObserver::new();
        let mut ctx = SolveCtx::with_observer(SolverConfig::default(), &mut trace);
        let d = solve_with::<Normalized>(&g, 5, &mut ctx).unwrap();
        assert_eq!(trace.rounds.len(), 5);
        let total: u64 = trace.rounds.iter().map(|r| r.gain_evaluations).sum();
        assert_eq!(total, d.gain_evaluations);
        // Round 0 is the full scan; later rounds touch only the dirty set.
        assert_eq!(trace.rounds[0].gain_evaluations, 40);
        assert!(trace.rounds[1].gain_evaluations < 40);
    }
}

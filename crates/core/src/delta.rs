//! Delta greedy — Algorithm 1 with dirty-set gain maintenance.
//!
//! Plain greedy recomputes every non-retained candidate's gain each round,
//! `O(nkD)` total, even though retaining `v` leaves almost all gains
//! untouched. `AddNode(v)` (Algorithm 3/5) changes `I` for exactly
//! `{v} ∪ in(v)` (non-retained in-neighbors), and a candidate `c`'s gain
//! (Algorithm 2/4) reads only `I[c]`, the membership of its in-neighbors,
//! and `I[u]` for `u ∈ in(c)`. So after retaining `v` the only candidates
//! whose gain can change are
//!
//! * the nodes whose own `I` changed — `{v} ∪ in(v)` — and
//! * the out-neighbors of those nodes (`c` reads `I[u]` iff `c ∈ out(u)`,
//!   by CSR row symmetry),
//!
//! both walked directly off the CSR out-rows. This solver caches the gain
//! array, marks exactly that dirty set after each selection, and recomputes
//! only dirty entries at the next round: `O(n)` evaluations for the first
//! round, then `O(|dirty|)` per round instead of `O(n)` — on sparse graphs
//! a per-round cost of roughly `D · d_out` rather than `n`.
//!
//! A cached (clean) gain is **bit-identical** to what plain greedy would
//! recompute — same `I`, same membership, same weights, same arithmetic —
//! and selection goes through the audited
//! [`float::improves_argmax`](crate::float::improves_argmax) tie-break, so
//! the retained set, cover, and trajectory are bit-identical to
//! [`greedy::solve`](crate::greedy::solve) for both IPC and NPC. The
//! determinism grid asserts this.
//!
//! [`parallel_solve_with`] is the chunked variant: each round splits the
//! dirty list into `threads` contiguous slices, recomputes gains on the
//! shared pool (pure reads of the state; results are gathered slot-indexed
//! and written back sequentially), and selects sequentially — bit-identical
//! for every thread count.

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use std::time::Instant;

use rayon::prelude::*;

use pcover_graph::{ItemId, PreferenceGraph};

use crate::cover::CoverState;
use crate::greedy::finish;
use crate::report::{Algorithm, SolveReport};
use crate::solver::{RoundStats, SolveCtx, Solver, SolverCaps, SolverSpec};
use crate::variant::CoverModel;
use crate::SolveError;

/// The cached-gain bookkeeping shared by the sequential and chunked
/// variants: per-node gains, a dedup flag array, and the dirty work list.
struct GainCache {
    gains: Vec<f64>,
    is_dirty: Vec<bool>,
    dirty: Vec<ItemId>,
    /// Per-slot result buffers for the chunked-parallel refresh, one per
    /// worker slice. Allocated up to the observed slot count once, then
    /// cleared and refilled each round — the per-round `collect()`s this
    /// replaces were the workspace's own `alloc-in-hot-loop` findings.
    scratch: Vec<Vec<(ItemId, f64)>>,
}

impl GainCache {
    /// Everything starts dirty: the first round is a full scan, exactly
    /// like plain greedy's first round.
    fn new(g: &PreferenceGraph) -> Self {
        let n = g.node_count();
        GainCache {
            gains: vec![0.0; n],
            is_dirty: vec![true; n],
            dirty: g.node_ids().collect(),
            scratch: Vec::new(),
        }
    }

    /// Marks `x` dirty, once.
    fn mark(&mut self, x: ItemId) {
        if !self.is_dirty[x.index()] {
            self.is_dirty[x.index()] = true;
            self.dirty.push(x);
        }
    }

    /// Marks the nodes whose gain can change when `chosen` is retained.
    /// Must be called **before** `add_node(chosen)` so "non-retained
    /// in-neighbor" is judged against the pre-add state (the set is the
    /// same either way — `chosen` itself is handled explicitly — but the
    /// precondition keeps the derivation honest).
    fn mark_stale_after_select(&mut self, g: &PreferenceGraph, state: &CoverState, chosen: ItemId) {
        // I[chosen] changes (and its membership flips, which affects every
        // candidate that reads it — exactly out(chosen)).
        self.mark(chosen);
        for (t, _) in g.out_edges(chosen) {
            self.mark(t);
        }
        // I[u] changes for every non-retained in-neighbor u of chosen, so u
        // itself and every candidate reading I[u] — out(u) — go stale.
        for (u, _) in g.in_edges(chosen) {
            if u == chosen || state.contains(u) {
                continue;
            }
            self.mark(u);
            for (t, _) in g.out_edges(u) {
                self.mark(t);
            }
        }
    }

    /// Sequentially recomputes every dirty gain, clearing the dirty set.
    /// Returns the number of gain evaluations performed (retained nodes are
    /// skipped and not counted, matching plain greedy's accounting).
    fn refresh<M: CoverModel>(&mut self, g: &PreferenceGraph, state: &CoverState) -> u64 {
        let mut evals = 0u64;
        for &v in &self.dirty {
            self.is_dirty[v.index()] = false;
            if state.contains(v) {
                continue;
            }
            self.gains[v.index()] = state.gain::<M>(g, v);
            evals += 1;
        }
        self.dirty.clear();
        evals
    }

    /// The audited argmax over the cached gain array (no gain evaluations:
    /// clean entries are bit-identical to a fresh recomputation).
    fn select_best(&self, g: &PreferenceGraph, state: &CoverState) -> Option<(f64, ItemId)> {
        let mut best: Option<(f64, ItemId)> = None;
        for v in g.node_ids() {
            if state.contains(v) {
                continue;
            }
            let gain = self.gains[v.index()];
            if crate::float::improves_argmax(gain, v, best) {
                best = Some((gain, v));
            }
        }
        best
    }
}

/// Runs delta greedy for budget `k`. Bit-identical output to
/// [`greedy::solve`](crate::greedy::solve), strictly fewer gain
/// evaluations whenever some round leaves a candidate clean.
///
/// ```
/// use pcover_core::{delta, greedy, Normalized};
/// use pcover_graph::examples::figure1;
///
/// let g = figure1();
/// let d = delta::solve::<Normalized>(&g, 2).unwrap();
/// let p = greedy::solve::<Normalized>(&g, 2).unwrap();
/// assert_eq!(d.order, p.order);
/// assert_eq!(d.cover.to_bits(), p.cover.to_bits());
/// ```
///
/// # Errors
///
/// [`SolveError::KTooLarge`] if `k > n`.
pub fn solve<M: CoverModel>(g: &PreferenceGraph, k: usize) -> Result<SolveReport, SolveError> {
    solve_with::<M>(g, k, &mut SolveCtx::default())
}

/// [`solve`] with an execution context: observers installed on `ctx` see
/// each selection live; cancellation is polled every round.
///
/// # Errors
///
/// As [`solve`], plus [`SolveError::Cancelled`] when the observer signals.
pub fn solve_with<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    ctx: &mut SolveCtx<'_>,
) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }

    let mut state = CoverState::new(n);
    let mut cache = GainCache::new(g);
    let mut trajectory = Vec::with_capacity(k);
    let mut gain_evaluations = 0u64;

    for iter in 0..k {
        ctx.check_cancelled()?;
        let round_evals = cache.refresh::<M>(g, &state);
        gain_evaluations += round_evals;
        let Some((gain, chosen)) = cache.select_best(g, &state) else {
            return Err(SolveError::internal(
                "greedy round found no candidate despite k <= n",
            ));
        };
        cache.mark_stale_after_select(g, &state, chosen);
        state.add_node::<M>(g, chosen);
        trajectory.push(state.cover());
        ctx.emit_select(iter, chosen, gain, state.cover());
        ctx.emit_round_stats(RoundStats {
            iter,
            gain_evaluations: round_evals,
        });
    }

    Ok(finish::<M>(
        Algorithm::DeltaGreedy,
        state,
        trajectory,
        started,
        gain_evaluations,
    ))
}

/// Chunked-parallel delta greedy: the dirty list is split into `threads`
/// contiguous slices and refreshed on the shared pool
/// ([`pool::shared_pool`](crate::pool::shared_pool)); gathered results are
/// written back in slot order and selection stays sequential, so the output
/// is bit-identical to [`solve`] (and therefore to plain greedy) for every
/// thread count.
///
/// # Errors
///
/// [`SolveError::KTooLarge`] if `k > n`; [`SolveError::ZeroThreads`] if
/// `threads == 0`.
pub fn parallel_solve<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    threads: usize,
) -> Result<SolveReport, SolveError> {
    parallel_solve_with::<M>(g, k, threads, &mut SolveCtx::default())
}

/// [`parallel_solve`] with an execution context.
///
/// # Errors
///
/// As [`parallel_solve`], plus [`SolveError::Cancelled`] when the observer
/// signals.
pub fn parallel_solve_with<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    threads: usize,
    ctx: &mut SolveCtx<'_>,
) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }
    let pool = crate::pool::shared_pool(threads)?;

    let mut state = CoverState::new(n);
    let mut cache = GainCache::new(g);
    let mut trajectory = Vec::with_capacity(k);
    let mut gain_evaluations = 0u64;

    for iter in 0..k {
        ctx.check_cancelled()?;
        // Refresh: contiguous slices of the dirty list, recomputed on the
        // pool. The workers only *read* the state; each slice's results
        // land in that slice's reusable scratch slot (cleared, never
        // reallocated, across rounds), then are written back sequentially
        // below (dirty entries are unique, so the writes are disjoint).
        // Split borrows so the closure can read `dirty` while filling
        // `scratch`.
        let GainCache {
            gains,
            is_dirty,
            dirty,
            scratch,
        } = &mut cache;
        let chunk = dirty.len().div_ceil(threads).max(1);
        let slots = dirty.len().div_ceil(chunk);
        if scratch.len() < slots {
            scratch.resize_with(slots, Vec::new);
        }
        pool.install(|| {
            scratch[..slots]
                .par_iter_mut()
                .enumerate()
                .for_each(|(si, slot)| {
                    slot.clear();
                    let start = si * chunk;
                    let end = (start + chunk).min(dirty.len());
                    for &v in &dirty[start..end] {
                        if !state.contains(v) {
                            slot.push((v, state.gain::<M>(g, v)));
                        }
                    }
                })
        });
        let mut round_evals = 0u64;
        for slot in &scratch[..slots] {
            for &(v, gain) in slot {
                gains[v.index()] = gain;
                round_evals += 1;
            }
        }
        for &v in dirty.iter() {
            is_dirty[v.index()] = false;
        }
        dirty.clear();
        gain_evaluations += round_evals;

        let Some((gain, chosen)) = cache.select_best(g, &state) else {
            return Err(SolveError::internal(
                "greedy round found no candidate despite k <= n",
            ));
        };
        cache.mark_stale_after_select(g, &state, chosen);
        state.add_node::<M>(g, chosen);
        trajectory.push(state.cover());
        ctx.emit_select(iter, chosen, gain, state.cover());
        ctx.emit_round_stats(RoundStats {
            iter,
            gain_evaluations: round_evals,
        });
    }

    Ok(finish::<M>(
        Algorithm::DeltaParallelGreedy,
        state,
        trajectory,
        started,
        gain_evaluations,
    ))
}

/// Delta greedy as a registry [`Solver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DeltaGreedy;

impl Solver for DeltaGreedy {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        solve_with::<M>(g, k, ctx)
    }
}

/// The registry entry for [`DeltaGreedy`].
pub fn spec() -> SolverSpec {
    SolverSpec::new(
        "delta",
        Algorithm::DeltaGreedy,
        "Delta greedy: cached gains + dirty-set maintenance, bit-identical to greedy, O(n + k·dirty)",
        SolverCaps::default(),
        |v, g, k, ctx| DeltaGreedy.dispatch(v, g, k, ctx),
    )
}

/// Chunked-parallel delta greedy as a registry [`Solver`].
#[derive(Clone, Copy, Debug)]
pub struct DeltaParallelGreedy {
    /// Worker thread count (must be at least 1).
    pub threads: usize,
}

impl Solver for DeltaParallelGreedy {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        parallel_solve_with::<M>(g, k, self.threads, ctx)
    }
}

/// The registry entry for [`DeltaParallelGreedy`]; thread count comes from
/// [`SolverConfig::threads`](crate::solver::SolverConfig::threads).
pub fn parallel_spec() -> SolverSpec {
    SolverSpec::new(
        "delta-parallel",
        Algorithm::DeltaParallelGreedy,
        "Delta greedy with the dirty-set refresh chunked over the shared rayon pool",
        SolverCaps {
            supports_threads: true,
            ..SolverCaps::default()
        },
        |v, g, k, ctx| {
            DeltaParallelGreedy {
                threads: ctx.config.threads,
            }
            .dispatch(v, g, k, ctx)
        },
    )
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::figure1_ids;
    use pcover_graph::GraphBuilder;
    use rand::{RngExt, SeedableRng};

    use crate::{greedy, Independent, Normalized};

    use super::*;

    fn random_graph(n: usize, seed: u64) -> PreferenceGraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new()
            .normalize_node_weights(true)
            .duplicate_edge_policy(pcover_graph::DuplicateEdgePolicy::Max);
        let ids: Vec<ItemId> = (0..n)
            .map(|_| b.add_node(rng.random_range(1.0..50.0)))
            .collect();
        for &v in &ids {
            for _ in 0..3 {
                let u = ids[rng.random_range(0..n)];
                if u != v {
                    b.add_edge(v, u, rng.random_range(0.05..0.95)).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn figure1_matches_plain_greedy_bitwise() {
        let (g, ids) = figure1_ids();
        let d = solve::<Normalized>(&g, 2).unwrap();
        let p = greedy::solve::<Normalized>(&g, 2).unwrap();
        assert_eq!(d.order, vec![ids.b, ids.d]);
        assert_eq!(d.order, p.order);
        assert_eq!(d.cover.to_bits(), p.cover.to_bits());
        for (a, b) in d.trajectory.iter().zip(&p.trajectory) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matches_plain_greedy_on_random_graphs() {
        for seed in 0..3 {
            let g = random_graph(50, seed);
            for k in [0, 1, 5, 25, 50] {
                let p = greedy::solve::<Independent>(&g, k).unwrap();
                let d = solve::<Independent>(&g, k).unwrap();
                assert_eq!(d.order, p.order, "seed {seed} k {k}");
                assert_eq!(d.cover.to_bits(), p.cover.to_bits(), "seed {seed} k {k}");
                for threads in [1, 2, 4, 7] {
                    let dp = parallel_solve::<Independent>(&g, k, threads).unwrap();
                    assert_eq!(dp.order, p.order, "seed {seed} k {k} threads {threads}");
                    assert_eq!(dp.cover.to_bits(), p.cover.to_bits());
                }
            }
        }
    }

    #[test]
    fn evaluates_fewer_gains_than_plain_greedy() {
        // Sparse graph: after round one, only the selected node's
        // neighborhood goes stale, so delta does far fewer evaluations.
        let g = random_graph(150, 9);
        for k in [2, 10, 75] {
            let p = greedy::solve::<Normalized>(&g, k).unwrap();
            let d = solve::<Normalized>(&g, k).unwrap();
            assert!(
                d.gain_evaluations < p.gain_evaluations,
                "k {k}: delta {} vs greedy {}",
                d.gain_evaluations,
                p.gain_evaluations
            );
        }
    }

    #[test]
    fn first_round_is_a_full_scan() {
        let (g, _) = figure1_ids();
        // k=1 degenerates to plain greedy: n evaluations, no refresh ever
        // pays off.
        let d = solve::<Normalized>(&g, 1).unwrap();
        assert_eq!(d.gain_evaluations, 5);
    }

    #[test]
    fn k_too_large_rejected() {
        let (g, _) = figure1_ids();
        assert!(matches!(
            solve::<Normalized>(&g, 6),
            Err(SolveError::KTooLarge { k: 6, n: 5 })
        ));
        assert!(matches!(
            parallel_solve::<Normalized>(&g, 6, 2),
            Err(SolveError::KTooLarge { k: 6, n: 5 })
        ));
    }

    #[test]
    fn zero_threads_rejected() {
        let (g, _) = figure1_ids();
        assert!(matches!(
            parallel_solve::<Normalized>(&g, 1, 0),
            Err(SolveError::ZeroThreads)
        ));
    }

    #[test]
    fn self_loops_stay_inert() {
        let mut b = GraphBuilder::new()
            .allow_self_loops(true)
            .normalize_node_weights(true);
        let x = b.add_node(1.0);
        let y = b.add_node(2.0);
        b.add_edge(x, x, 0.9).unwrap();
        b.add_edge(x, y, 0.5).unwrap();
        let g = b.build().unwrap();
        for k in 0..=2 {
            let p = greedy::solve::<Independent>(&g, k).unwrap();
            let d = solve::<Independent>(&g, k).unwrap();
            assert_eq!(d.order, p.order, "k {k}");
            assert_eq!(d.cover.to_bits(), p.cover.to_bits());
        }
    }

    #[test]
    fn round_stats_report_dirty_counts() {
        use crate::solver::SolverConfig;
        use crate::TraceObserver;
        let g = random_graph(40, 2);
        let mut trace = TraceObserver::new();
        let mut ctx = SolveCtx::with_observer(SolverConfig::default(), &mut trace);
        let d = solve_with::<Normalized>(&g, 5, &mut ctx).unwrap();
        assert_eq!(trace.rounds.len(), 5);
        let total: u64 = trace.rounds.iter().map(|r| r.gain_evaluations).sum();
        assert_eq!(total, d.gain_evaluations);
        // Round 0 is the full scan; later rounds touch only the dirty set.
        assert_eq!(trace.rounds[0].gain_evaluations, 40);
        assert!(trace.rounds[1].gain_evaluations < 40);
    }
}

//! The complementary minimization problem: the **smallest** retained set
//! whose cover reaches a threshold.
//!
//! The paper notes (end of Section 3.2) that the greedy solver handles this
//! directly — keep adding max-gain items until the threshold is crossed —
//! avoiding the `O(log n)` binary-search overhead a black-box maximization
//! algorithm would need. Baselines, lacking incremental structure, *are*
//! adapted by binary search over their ranking prefix (Section 5.4,
//! Figure 4f).

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use pcover_graph::{ItemId, PreferenceGraph};

use crate::baselines::{rank_by_singleton_coverage, rank_by_weight};
use crate::cover::{cover_value, CoverState};
use crate::lazy;
use crate::report::{Algorithm, SolveReport};
use crate::variant::CoverModel;
use crate::SolveError;

/// The result of a minimization: the report for the chosen set plus the
/// threshold it was asked to reach.
#[derive(Clone, Debug)]
pub struct MinimizeResult {
    /// Report for the selected set (cover ≥ threshold).
    pub report: SolveReport,
    /// The requested threshold.
    pub threshold: f64,
}

impl MinimizeResult {
    /// Size of the selected set.
    pub fn set_size(&self) -> usize {
        self.report.order.len()
    }
}

fn check_threshold(threshold: f64) -> Result<(), SolveError> {
    if !threshold.is_finite() || !(0.0..=1.0).contains(&threshold) {
        return Err(SolveError::InvalidThreshold { threshold });
    }
    Ok(())
}

/// Greedy minimization: runs lazy greedy, stopping as soon as the cover
/// reaches `threshold`.
///
/// ```
/// use pcover_core::{minimize, Normalized};
/// use pcover_graph::examples::figure1;
///
/// let g = figure1();
/// // Item B alone covers 66% of requests, so a 0.5 target needs one item.
/// let result = minimize::greedy_min_cover::<Normalized>(&g, 0.5).unwrap();
/// assert_eq!(result.set_size(), 1);
/// assert!(result.report.cover >= 0.5);
/// ```
///
/// # Errors
///
/// * [`SolveError::InvalidThreshold`] for thresholds outside `[0, 1]`.
/// * [`SolveError::ThresholdUnreachable`] if even retaining every item
///   falls short (possible only when node weights sum below the threshold).
pub fn greedy_min_cover<M: CoverModel>(
    g: &PreferenceGraph,
    threshold: f64,
) -> Result<MinimizeResult, SolveError> {
    check_threshold(threshold)?;
    // A full greedy run is the worst case; thanks to the incremental order
    // we can simply truncate its trajectory at the threshold. Lazy greedy
    // makes the full run cheap, and in practice the threshold triggers long
    // before exhaustion — so run incrementally instead of solving for n.
    let n = g.node_count();
    let mut report = lazy::solve_until::<M>(g, threshold)?;
    if report.cover < threshold {
        debug_assert_eq!(report.order.len(), n);
        return Err(SolveError::ThresholdUnreachable {
            threshold,
            achievable: report.cover,
        });
    }
    report.algorithm = Algorithm::LazyGreedy;
    Ok(MinimizeResult { report, threshold })
}

/// Adapts a ranking-based baseline by binary search: the smallest prefix of
/// `ranking` whose cover reaches `threshold`.
///
/// Each probe evaluates the cover from scratch (`O(n + m)`), and the search
/// uses `O(log n)` probes — the overhead the paper's greedy approach avoids.
fn binary_search_prefix<M: CoverModel>(
    g: &PreferenceGraph,
    ranking: &[ItemId],
    threshold: f64,
) -> Result<usize, SolveError> {
    let full = {
        let mut mask = vec![false; g.node_count()];
        for &v in ranking {
            mask[v.index()] = true;
        }
        cover_value::<M>(g, &mask)
    };
    if full < threshold {
        return Err(SolveError::ThresholdUnreachable {
            threshold,
            achievable: full,
        });
    }
    // Invariant: cover(prefix of hi) >= threshold > cover(prefix of lo).
    let (mut lo, mut hi) = (0usize, ranking.len());
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let mut mask = vec![false; g.node_count()];
        for &v in &ranking[..mid] {
            mask[v.index()] = true;
        }
        if cover_value::<M>(g, &mask) >= threshold {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    // hi = 1 may still be more than needed if threshold == 0.
    if threshold == 0.0 {
        return Ok(0);
    }
    Ok(hi)
}

/// TopK-W adapted to minimization: smallest weight-ranked prefix reaching
/// `threshold`.
pub fn top_k_weight_min_cover<M: CoverModel>(
    g: &PreferenceGraph,
    threshold: f64,
) -> Result<MinimizeResult, SolveError> {
    check_threshold(threshold)?;
    let ranking = rank_by_weight(g);
    let size = binary_search_prefix::<M>(g, &ranking, threshold)?;
    let report = replay::<M>(g, Algorithm::TopKWeight, &ranking[..size]);
    Ok(MinimizeResult { report, threshold })
}

/// TopK-C adapted to minimization: smallest coverage-ranked prefix reaching
/// `threshold`.
pub fn top_k_coverage_min_cover<M: CoverModel>(
    g: &PreferenceGraph,
    threshold: f64,
) -> Result<MinimizeResult, SolveError> {
    check_threshold(threshold)?;
    let ranking = rank_by_singleton_coverage(g);
    let size = binary_search_prefix::<M>(g, &ranking, threshold)?;
    let report = replay::<M>(g, Algorithm::TopKCoverage, &ranking[..size]);
    Ok(MinimizeResult { report, threshold })
}

fn replay<M: CoverModel>(
    g: &PreferenceGraph,
    algorithm: Algorithm,
    selection: &[ItemId],
) -> SolveReport {
    let started = std::time::Instant::now();
    let mut state = CoverState::new(g.node_count());
    let mut trajectory = Vec::with_capacity(selection.len());
    for &v in selection {
        state.add_node::<M>(g, v);
        trajectory.push(state.cover());
    }
    crate::greedy::finish::<M>(algorithm, state, trajectory, started, 0)
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::figure1_ids;
    use pcover_graph::GraphBuilder;

    use crate::{Independent, Normalized};

    use super::*;

    #[test]
    fn greedy_min_cover_on_figure1() {
        let (g, ids) = figure1_ids();
        // Threshold 0.5: B alone covers 0.66 >= 0.5.
        let r = greedy_min_cover::<Normalized>(&g, 0.5).unwrap();
        assert_eq!(r.set_size(), 1);
        assert_eq!(r.report.order, vec![ids.b]);
        // Threshold 0.7 needs B and D (0.873).
        let r = greedy_min_cover::<Normalized>(&g, 0.7).unwrap();
        assert_eq!(r.set_size(), 2);
        // Threshold 1.0 needs everything with positive uncovered weight.
        let r = greedy_min_cover::<Normalized>(&g, 1.0).unwrap();
        assert!(r.report.cover >= 1.0 - 1e-9);
    }

    #[test]
    fn zero_threshold_needs_nothing() {
        let (g, _) = figure1_ids();
        let r = greedy_min_cover::<Independent>(&g, 0.0).unwrap();
        assert_eq!(r.set_size(), 0);
        let r = top_k_weight_min_cover::<Independent>(&g, 0.0).unwrap();
        assert_eq!(r.set_size(), 0);
    }

    #[test]
    fn invalid_thresholds_rejected() {
        let (g, _) = figure1_ids();
        assert!(greedy_min_cover::<Normalized>(&g, 1.5).is_err());
        assert!(greedy_min_cover::<Normalized>(&g, -0.1).is_err());
        assert!(greedy_min_cover::<Normalized>(&g, f64::NAN).is_err());
    }

    #[test]
    fn unreachable_threshold_reported() {
        // A graph whose weights sum to 0.8 (lax build) cannot reach 0.9.
        let mut b = GraphBuilder::new().skip_weight_sum_check(true);
        b.add_node(0.5);
        b.add_node(0.3);
        let g = b.build().unwrap();
        let err = greedy_min_cover::<Normalized>(&g, 0.9).unwrap_err();
        assert!(matches!(err, SolveError::ThresholdUnreachable { .. }));
        let err = top_k_weight_min_cover::<Normalized>(&g, 0.9).unwrap_err();
        assert!(matches!(err, SolveError::ThresholdUnreachable { .. }));
    }

    #[test]
    fn greedy_needs_no_more_than_baselines() {
        let (g, _) = figure1_ids();
        for threshold in [0.3, 0.5, 0.7, 0.9] {
            let gr = greedy_min_cover::<Normalized>(&g, threshold).unwrap();
            let tw = top_k_weight_min_cover::<Normalized>(&g, threshold).unwrap();
            let tc = top_k_coverage_min_cover::<Normalized>(&g, threshold).unwrap();
            assert!(
                gr.set_size() <= tw.set_size(),
                "threshold {threshold}: greedy {} vs TopK-W {}",
                gr.set_size(),
                tw.set_size()
            );
            assert!(gr.set_size() <= tc.set_size(), "threshold {threshold}");
            // All results actually reach the threshold.
            assert!(gr.report.cover >= threshold - 1e-12);
            assert!(tw.report.cover >= threshold - 1e-12);
            assert!(tc.report.cover >= threshold - 1e-12);
        }
    }

    #[test]
    fn binary_search_prefix_is_minimal() {
        let (g, _) = figure1_ids();
        let ranking = rank_by_weight(&g);
        for threshold in [0.2, 0.4, 0.6, 0.8] {
            let size = binary_search_prefix::<Normalized>(&g, &ranking, threshold).unwrap();
            // The chosen prefix reaches the threshold...
            let mut mask = vec![false; g.node_count()];
            for &v in &ranking[..size] {
                mask[v.index()] = true;
            }
            assert!(cover_value::<Normalized>(&g, &mask) >= threshold);
            // ...and one fewer item does not.
            if size > 0 {
                mask[ranking[size - 1].index()] = false;
                assert!(cover_value::<Normalized>(&g, &mask) < threshold);
            }
        }
    }
}

//! Lazy greedy — the scalable greedy used for the large experiments.
//!
//! Both cover functions are monotone and submodular (proved for the
//! Independent variant in Theorem 4.1; the Normalized variant is a weighted
//! coverage function via the `VC_k` equivalence of Theorem 3.1), so marginal
//! gains only *decrease* as the retained set grows. The classic lazy
//! evaluation therefore applies: keep candidates in a max-heap keyed by a
//! possibly-stale gain; when a candidate surfaces with a stale key,
//! recompute and reinsert; when it surfaces fresh, its gain is a valid
//! maximum and it is selected.
//!
//! The selected *set* has exactly the same quality guarantee as plain
//! greedy; the only possible divergence from [`greedy::solve`] is
//! tie-breaking among equal gains. On the paper's datasets lazy greedy is
//! orders of magnitude faster because most nodes never have their gain
//! recomputed after the first round.
//!
//! [`greedy::solve`]: crate::greedy::solve

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use pcover_graph::{ItemId, PreferenceGraph};

use crate::cover::CoverState;
use crate::greedy::finish;
use crate::report::{Algorithm, SolveReport};
use crate::solver::{RoundStats, SolveCtx, Solver, SolverCaps, SolverSpec};
use crate::variant::CoverModel;
use crate::SolveError;

/// A heap entry: gain (possibly stale), the round it was computed in, and
/// the node. Ordered by gain descending, then node id ascending, matching
/// the plain greedy tie-break.
#[derive(Clone, Copy, Debug)]
struct Entry {
    gain: f64,
    round: usize,
    node: ItemId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: larger gain first; among equal gains, smaller id first.
        // The total order on gains lives in `float` (the approved site for
        // exact float comparison), and never panics on the heap path.
        crate::float::cmp_gain(self.gain, other.gain).then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs lazy greedy for budget `k`.
///
/// ```
/// use pcover_core::{greedy, lazy, Independent};
/// use pcover_graph::examples::figure1;
///
/// let g = figure1();
/// let fast = lazy::solve::<Independent>(&g, 3).unwrap();
/// let plain = greedy::solve::<Independent>(&g, 3).unwrap();
/// assert!((fast.cover - plain.cover).abs() < 1e-12);
/// assert!(fast.gain_evaluations <= plain.gain_evaluations);
/// ```
///
/// # Errors
///
/// [`SolveError::KTooLarge`] if `k > n`.
pub fn solve<M: CoverModel>(g: &PreferenceGraph, k: usize) -> Result<SolveReport, SolveError> {
    solve_impl::<M>(g, k, f64::INFINITY, &mut SolveCtx::default())
}

/// [`solve`] with an execution context: observers installed on `ctx` see
/// each selection live. The selection arithmetic is identical to [`solve`].
///
/// # Errors
///
/// As [`solve`].
pub fn solve_with<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    ctx: &mut SolveCtx<'_>,
) -> Result<SolveReport, SolveError> {
    solve_impl::<M>(g, k, f64::INFINITY, ctx)
}

/// Lazy greedy as a registry [`Solver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LazyGreedy;

impl Solver for LazyGreedy {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        solve_with::<M>(g, k, ctx)
    }
}

/// The registry entry for [`LazyGreedy`].
pub fn spec() -> SolverSpec {
    SolverSpec::new(
        "lazy",
        Algorithm::LazyGreedy,
        "Lazy greedy: stale-gain max-heap, same set quality as greedy, near-linear in practice",
        SolverCaps::default(),
        |v, g, k, ctx| LazyGreedy.dispatch(v, g, k, ctx),
    )
}

/// Runs lazy greedy until the cover reaches `stop_at` (or every node is
/// retained, whichever comes first) — the direct solver for the
/// complementary minimization problem.
///
/// The returned report's cover may fall short of `stop_at` only when the
/// whole graph cannot reach it; callers decide whether that is an error.
pub(crate) fn solve_until<M: CoverModel>(
    g: &PreferenceGraph,
    stop_at: f64,
) -> Result<SolveReport, SolveError> {
    solve_impl::<M>(g, g.node_count(), stop_at, &mut SolveCtx::default())
}

fn solve_impl<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    stop_at: f64,
    ctx: &mut SolveCtx<'_>,
) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }

    let mut state = CoverState::new(n);
    let mut trajectory = Vec::with_capacity(k);
    let mut gain_evaluations = 0u64;

    // Round 0: seed the heap with every node's initial gain. The seed
    // buffer is pre-sized and heapified once; collecting straight into a
    // `BinaryHeap` grows by doubling (`node_ids` does not advertise an
    // exact size), and the heap never outgrows this capacity afterwards —
    // every reinsertion follows a pop.
    let mut seed: Vec<Entry> = Vec::with_capacity(n);
    for v in g.node_ids() {
        gain_evaluations += 1;
        seed.push(Entry {
            gain: state.gain::<M>(g, v),
            round: 0,
            node: v,
        });
    }
    let mut heap = BinaryHeap::from(seed);

    for round in 1..=k {
        ctx.check_cancelled()?;
        if state.cover() >= stop_at {
            break;
        }
        let round_start_evals = gain_evaluations;
        loop {
            let Some(top) = heap.pop() else {
                return Err(SolveError::internal(
                    "lazy heap exhausted before k selections",
                ));
            };
            if state.contains(top.node) {
                continue;
            }
            if top.round == round {
                // Fresh this round: submodularity makes it a valid argmax.
                state.add_node::<M>(g, top.node);
                trajectory.push(state.cover());
                ctx.emit_select(round - 1, top.node, top.gain, state.cover());
                break;
            }
            gain_evaluations += 1;
            let gain = state.gain::<M>(g, top.node);
            if gain >= heap.peek().map_or(f64::NEG_INFINITY, |e| e.gain) {
                // Still at least as good as every (upper-bounded) rival:
                // select immediately without reinsertion.
                state.add_node::<M>(g, top.node);
                trajectory.push(state.cover());
                ctx.emit_select(round - 1, top.node, gain, state.cover());
                break;
            }
            heap.push(Entry {
                gain,
                round,
                node: top.node,
            });
        }
        ctx.emit_round_stats(RoundStats {
            iter: round - 1,
            gain_evaluations: gain_evaluations - round_start_evals,
        });
    }

    Ok(finish::<M>(
        Algorithm::LazyGreedy,
        state,
        trajectory,
        started,
        gain_evaluations,
    ))
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::figure1_ids;
    use pcover_graph::{GraphBuilder, ItemId};
    use rand::{RngExt, SeedableRng};

    use crate::{greedy, Independent, Normalized};

    use super::*;

    #[test]
    fn figure1_matches_plain_greedy() {
        let (g, _) = figure1_ids();
        for k in 0..=5 {
            let plain = greedy::solve::<Normalized>(&g, k).unwrap();
            let lazy = solve::<Normalized>(&g, k).unwrap();
            assert_eq!(plain.order, lazy.order, "k = {k}");
            assert!((plain.cover - lazy.cover).abs() < 1e-12);
        }
    }

    fn random_graph(n: usize, avg_deg: usize, seed: u64) -> pcover_graph::PreferenceGraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let ids: Vec<ItemId> = (0..n)
            .map(|_| b.add_node(rng.random_range(1.0..100.0)))
            .collect();
        for &v in &ids {
            for _ in 0..avg_deg {
                let u = ids[rng.random_range(0..n)];
                if u != v {
                    // Duplicate edges resolved by Max policy below.
                    b.add_edge(v, u, rng.random_range(0.05..1.0)).unwrap();
                }
            }
        }
        b.duplicate_edge_policy(pcover_graph::DuplicateEdgePolicy::Max)
            .build()
            .unwrap()
    }

    #[test]
    fn matches_plain_greedy_on_random_graphs() {
        for seed in 0..5 {
            let g = random_graph(40, 3, seed);
            let k = 10;
            let plain_i = greedy::solve::<Independent>(&g, k).unwrap();
            let lazy_i = solve::<Independent>(&g, k).unwrap();
            assert!(
                (plain_i.cover - lazy_i.cover).abs() < 1e-9,
                "independent seed {seed}: {} vs {}",
                plain_i.cover,
                lazy_i.cover
            );
            let plain_n = greedy::solve::<Normalized>(&g, k).unwrap();
            let lazy_n = solve::<Normalized>(&g, k).unwrap();
            assert!(
                (plain_n.cover - lazy_n.cover).abs() < 1e-9,
                "normalized seed {seed}"
            );
        }
    }

    #[test]
    fn lazy_does_less_work() {
        let g = random_graph(300, 4, 7);
        let k = 60;
        let plain = greedy::solve::<Independent>(&g, k).unwrap();
        let lazy = solve::<Independent>(&g, k).unwrap();
        assert!(
            lazy.gain_evaluations < plain.gain_evaluations / 2,
            "lazy {} vs plain {}",
            lazy.gain_evaluations,
            plain.gain_evaluations
        );
        assert!((lazy.cover - plain.cover).abs() < 1e-9);
    }

    #[test]
    fn k_bounds() {
        let (g, _) = figure1_ids();
        assert!(solve::<Independent>(&g, 6).is_err());
        let r = solve::<Independent>(&g, 5).unwrap();
        assert!((r.cover - 1.0).abs() < 1e-9);
    }

    #[test]
    fn algorithm_tag_is_lazy() {
        let (g, _) = figure1_ids();
        assert_eq!(
            solve::<Normalized>(&g, 1).unwrap().algorithm,
            Algorithm::LazyGreedy
        );
    }
}

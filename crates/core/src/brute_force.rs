//! Exact brute-force solver — the paper's BF baseline.
//!
//! Enumerates every size-`k` subset and keeps the best cover. Only feasible
//! on tiny instances (the paper notes 155M subsets already at `n = 30`,
//! `k = 15`); its role is to measure the *actual* approximation ratio greedy
//! achieves in practice (Figure 4a) and the exponential runtime wall
//! (Figure 4b).
//!
//! Subsets are represented as `u64` bitmasks (`n ≤ 64`), and enumeration is
//! Gosper's hack: the next subset with the same popcount in amortized
//! `O(1)`. Cover evaluation per subset is `O(n + m)`.

use std::time::Instant;

use pcover_graph::{ItemId, PreferenceGraph};

use crate::report::{Algorithm, SolveReport};
use crate::solver::{SolveCtx, Solver, SolverCaps, SolverSpec};
use crate::variant::CoverModel;
use crate::SolveError;

/// Configuration for the exact solver.
#[derive(Clone, Copy, Debug)]
pub struct BruteForceOptions {
    /// Refuse to run if `C(n, k)` exceeds this many subsets.
    pub max_subsets: u128,
}

impl Default for BruteForceOptions {
    fn default() -> Self {
        // ~20M subsets × O(n + m) is seconds of work on small instances;
        // anything beyond that deserves an explicit opt-in.
        BruteForceOptions {
            max_subsets: 20_000_000,
        }
    }
}

/// Number of size-`k` subsets of an `n`-set, saturating at `u128::MAX`.
pub fn subset_count(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut c: u128 = 1;
    for i in 0..k {
        c = match c.checked_mul((n - i) as u128) {
            Some(x) => x / (i as u128 + 1),
            None => return u128::MAX,
        };
    }
    c
}

/// Finds the optimal retained set of size exactly `k` by exhaustive search.
///
/// Tie-breaking is toward the lexicographically smallest bitmask, i.e. the
/// subset containing the smallest ids, making results deterministic.
///
/// # Errors
///
/// * [`SolveError::KTooLarge`] if `k > n`.
/// * [`SolveError::TooManyNodesForBruteForce`] if `n > 64`.
/// * [`SolveError::TooManySubsets`] if the enumeration exceeds
///   `opts.max_subsets`.
pub fn solve<M: CoverModel>(
    g: &PreferenceGraph,
    k: usize,
    opts: &BruteForceOptions,
) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }
    if n > 64 {
        return Err(SolveError::TooManyNodesForBruteForce { n });
    }
    let subsets = subset_count(n, k);
    if subsets > opts.max_subsets {
        return Err(SolveError::TooManySubsets {
            subsets,
            limit: opts.max_subsets,
        });
    }

    let mut best_mask: u64 = if k == 0 { 0 } else { (1u64 << k) - 1 };
    let mut best_cover = cover_of_mask::<M>(g, best_mask);
    let mut evaluations = 1u64;

    if k > 0 && k < n {
        let limit: u64 = if n == 64 { u64::MAX } else { 1u64 << n };
        let mut mask = best_mask;
        loop {
            // Gosper's hack: next integer with the same popcount.
            let c = mask & mask.wrapping_neg();
            let Some(r) = mask.checked_add(c) else {
                break; // enumeration wrapped past the top of the u64 range
            };
            let next = (((r ^ mask) >> 2) / c) | r;
            if next >= limit || next < mask {
                break;
            }
            mask = next;
            let cover = cover_of_mask::<M>(g, mask);
            evaluations += 1;
            if cover > best_cover {
                best_cover = cover;
                best_mask = mask;
            }
        }
    }

    // Assemble the report. BF has no meaningful selection order; ids are
    // reported ascending, and the trajectory is the cover of each prefix of
    // that order (useful for plots, not a greedy trajectory).
    let order: Vec<ItemId> = (0..n as u32)
        .filter(|&i| best_mask >> i & 1 == 1)
        .map(ItemId::new)
        .collect();
    let mut trajectory = Vec::with_capacity(order.len());
    let mut prefix_mask = 0u64;
    for v in &order {
        prefix_mask |= 1 << v.raw();
        trajectory.push(cover_of_mask::<M>(g, prefix_mask));
    }
    let item_cover = item_cover_of_mask::<M>(g, best_mask);

    Ok(SolveReport {
        algorithm: Algorithm::BruteForce,
        variant: M::VARIANT,
        order,
        trajectory,
        cover: best_cover,
        item_cover,
        elapsed: started.elapsed(),
        gain_evaluations: evaluations,
    })
}

/// Exact brute force as a registry [`Solver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BruteForce {
    /// Enumeration limits.
    pub opts: BruteForceOptions,
}

impl Solver for BruteForce {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        let report = solve::<M>(g, k, &self.opts)?;
        // BF has no selection order; the ascending-id report is replayed so
        // the observer stream matches the returned order exactly.
        ctx.emit_report(&report);
        Ok(report)
    }
}

/// The registry entry for [`BruteForce`]; the subset cap comes from
/// [`SolverConfig::max_subsets`](crate::solver::SolverConfig::max_subsets).
pub fn spec() -> SolverSpec {
    SolverSpec::new(
        "bf",
        Algorithm::BruteForce,
        "Exact brute force: Gosper-hack subset enumeration, optimal, n <= 64 only",
        SolverCaps {
            exact: true,
            ..SolverCaps::default()
        },
        |v, g, k, ctx| {
            let opts = BruteForceOptions {
                max_subsets: ctx.config.max_subsets,
            };
            BruteForce { opts }.dispatch(v, g, k, ctx)
        },
    )
}

/// `C(S)` for a bitmask selection.
fn cover_of_mask<M: CoverModel>(g: &PreferenceGraph, mask: u64) -> f64 {
    let mut c = 0.0;
    for v in g.node_ids() {
        if mask >> v.raw() & 1 == 1 {
            c += g.node_weight(v);
        } else {
            let matched = M::combine(
                g.out_edges(v)
                    .filter(|&(u, _)| u != v && mask >> u.raw() & 1 == 1)
                    .map(|(_, w)| w),
            );
            c += g.node_weight(v) * matched;
        }
    }
    c
}

/// Per-item `I` values for a bitmask selection.
fn item_cover_of_mask<M: CoverModel>(g: &PreferenceGraph, mask: u64) -> Vec<f64> {
    g.node_ids()
        .map(|v| {
            if mask >> v.raw() & 1 == 1 {
                g.node_weight(v)
            } else {
                let matched = M::combine(
                    g.out_edges(v)
                        .filter(|&(u, _)| u != v && mask >> u.raw() & 1 == 1)
                        .map(|(_, w)| w),
                );
                g.node_weight(v) * matched
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use pcover_graph::examples::figure1_ids;
    use pcover_graph::GraphBuilder;
    use rand::{RngExt, SeedableRng};

    use crate::{greedy, Independent, Normalized};

    use super::*;

    #[test]
    fn subset_counts() {
        assert_eq!(subset_count(5, 2), 10);
        assert_eq!(subset_count(30, 15), 155_117_520);
        assert_eq!(subset_count(4, 0), 1);
        assert_eq!(subset_count(4, 4), 1);
        assert_eq!(subset_count(3, 7), 0);
        // Saturation instead of overflow.
        assert_eq!(subset_count(200, 100), u128::MAX);
    }

    #[test]
    fn figure1_optimum_is_b_d() {
        let (g, ids) = figure1_ids();
        let r = solve::<Normalized>(&g, 2, &BruteForceOptions::default()).unwrap();
        assert_eq!(r.order, vec![ids.b, ids.d]);
        assert!((r.cover - 0.873).abs() < 1e-9);
        // Example 1.1 says {B, D} is "also the optimal possible pair" —
        // greedy achieves the optimum here.
        let gr = greedy::solve::<Normalized>(&g, 2).unwrap();
        assert!((gr.cover - r.cover).abs() < 1e-12);
    }

    #[test]
    fn k_edge_cases() {
        let (g, _) = figure1_ids();
        let r0 = solve::<Independent>(&g, 0, &BruteForceOptions::default()).unwrap();
        assert!(r0.order.is_empty());
        assert_eq!(r0.cover, 0.0);
        let rn = solve::<Independent>(&g, 5, &BruteForceOptions::default()).unwrap();
        assert!((rn.cover - 1.0).abs() < 1e-9);
        assert!(solve::<Independent>(&g, 6, &BruteForceOptions::default()).is_err());
    }

    #[test]
    fn subset_limit_enforced() {
        let (g, _) = figure1_ids();
        let opts = BruteForceOptions { max_subsets: 5 };
        assert!(matches!(
            solve::<Normalized>(&g, 2, &opts),
            Err(SolveError::TooManySubsets { subsets: 10, .. })
        ));
    }

    #[test]
    fn rejects_more_than_64_nodes() {
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        for _ in 0..70 {
            b.add_node(1.0);
        }
        let g = b.build().unwrap();
        assert!(matches!(
            solve::<Normalized>(&g, 1, &BruteForceOptions::default()),
            Err(SolveError::TooManyNodesForBruteForce { n: 70 })
        ));
    }

    #[test]
    fn greedy_never_beats_bf_and_stays_within_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for trial in 0..10 {
            let n = rng.random_range(5..12);
            let mut b = GraphBuilder::new()
                .normalize_node_weights(true)
                .duplicate_edge_policy(pcover_graph::DuplicateEdgePolicy::Max);
            let ids: Vec<_> = (0..n)
                .map(|_| b.add_node(rng.random_range(1.0..20.0)))
                .collect();
            for &v in &ids {
                for _ in 0..2 {
                    let u = ids[rng.random_range(0..n)];
                    if u != v {
                        b.add_edge(v, u, rng.random_range(0.1..1.0)).unwrap();
                    }
                }
            }
            let g = b.build().unwrap();
            let k = rng.random_range(1..n);
            let bf = solve::<Independent>(&g, k, &BruteForceOptions::default()).unwrap();
            let gr = greedy::solve::<Independent>(&g, k).unwrap();
            assert!(
                gr.cover <= bf.cover + 1e-9,
                "trial {trial}: greedy beat BF?!"
            );
            assert!(
                gr.cover >= (1.0 - 1.0 / std::f64::consts::E) * bf.cover - 1e-9,
                "trial {trial}: greedy {} below (1-1/e) of optimum {}",
                gr.cover,
                bf.cover
            );
        }
    }

    #[test]
    fn works_at_n_64_boundary() {
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let ids: Vec<_> = (0..64).map(|_| b.add_node(1.0)).collect();
        b.add_edge(ids[0], ids[63], 0.5).unwrap();
        let g = b.build().unwrap();
        let r = solve::<Normalized>(&g, 63, &BruteForceOptions::default()).unwrap();
        // Leaving out node 0 (covered half by 63) is optimal: cover
        // = 63/64 + (1/64)(0.5).
        let expected = 63.0 / 64.0 + 0.5 / 64.0;
        assert!((r.cover - expected).abs() < 1e-9);
    }
}

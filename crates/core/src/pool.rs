//! Process-wide shared rayon thread pools, keyed by thread count.
//!
//! Constructing a rayon [`ThreadPool`] spawns OS threads and allocates
//! queues — fine for a one-shot experiment binary, wasteful on the serving
//! hot path where `pcover-serve` dispatches a solve per HTTP request. This
//! cache hands out one long-lived pool per distinct thread count, so two
//! sequential solves at the same `threads` setting share the same workers
//! instead of rebuilding them.
//!
//! Sharing a pool cannot perturb solver output: the parallel solvers gather
//! per-chunk results into slot-indexed collections and reduce them
//! sequentially (see `parallel.rs` and `delta.rs`), so the answer is a pure
//! function of the chunk boundaries, never of which worker ran a chunk or
//! in what order. `WorkStats` attribution is by chunk slot for the same
//! reason, so it is also unaffected by pool reuse.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rayon::ThreadPool;

use crate::SolveError;

/// The cache: one pool per requested thread count, built on first use and
/// retained for the life of the process.
static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();

/// Returns the shared pool for `threads` workers, building it on first
/// request. Subsequent calls with the same `threads` return the same pool
/// (pointer-identical `Arc`).
///
/// # Errors
///
/// [`SolveError::ZeroThreads`] when `threads == 0`; [`SolveError::Internal`]
/// if pool construction fails or the cache mutex is poisoned.
pub fn shared_pool(threads: usize) -> Result<Arc<ThreadPool>, SolveError> {
    if threads == 0 {
        return Err(SolveError::ZeroThreads);
    }
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    {
        let map = pools
            .lock()
            .map_err(|_| SolveError::internal("thread pool cache mutex poisoned"))?;
        if let Some(pool) = map.get(&threads) {
            return Ok(Arc::clone(pool));
        }
    }
    // Cache miss: build *outside* the lock — `ThreadPoolBuilder::build`
    // spawns OS threads, and holding the cache mutex across it would stall
    // every solve at a different thread count behind this one (the
    // `lock-across-blocking` audit rule flags exactly that). Two racing
    // builders at the same count may both construct; `entry` keeps the
    // first insert, and the loser's pool is dropped on return.
    let built = Arc::new(
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| SolveError::internal(format!("thread pool construction failed: {e}")))?,
    );
    let mut map = pools
        .lock()
        .map_err(|_| SolveError::internal("thread pool cache mutex poisoned"))?;
    Ok(Arc::clone(map.entry(threads).or_insert(built)))
}

/// Number of distinct pools currently cached. Exposed so tests (and
/// metrics) can assert that repeated solves do not construct new pools.
pub fn cached_pool_count() -> usize {
    POOLS
        .get()
        .and_then(|m| m.lock().ok().map(|map| map.len()))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_thread_count_returns_the_same_pool() {
        let a = shared_pool(3).expect("pool builds");
        let b = shared_pool(3).expect("pool builds");
        assert!(
            Arc::ptr_eq(&a, &b),
            "two requests at the same thread count must share one pool"
        );
    }

    #[test]
    fn distinct_thread_counts_get_distinct_pools() {
        let a = shared_pool(2).expect("pool builds");
        let b = shared_pool(5).expect("pool builds");
        assert!(!Arc::ptr_eq(&a, &b));
        let before = cached_pool_count();
        let _ = shared_pool(2).expect("pool builds");
        let _ = shared_pool(5).expect("pool builds");
        assert_eq!(
            cached_pool_count(),
            before,
            "repeat requests must not grow the cache"
        );
    }

    #[test]
    fn zero_threads_rejected() {
        assert!(matches!(shared_pool(0), Err(SolveError::ZeroThreads)));
    }

    #[test]
    fn racing_first_requests_converge_on_one_pool() {
        // Regression for the build-outside-the-lock miss path: when many
        // threads race the first request at a count, the insert-or-race
        // re-check must hand every caller the same cached pool (losers drop
        // their freshly built one).
        use std::sync::Barrier;
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    shared_pool(7).expect("pool builds")
                })
            })
            .collect();
        let pools: Vec<Arc<ThreadPool>> = handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        for p in &pools[1..] {
            assert!(
                Arc::ptr_eq(&pools[0], p),
                "racing builders must converge on the first-inserted pool"
            );
        }
    }
}

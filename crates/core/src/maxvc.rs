//! Greedy Max Vertex Cover on [`VcInstance`]s — the oracle side of the
//! Theorem 3.1 equivalence.
//!
//! The paper's greedy (adapted directly to preference graphs) provably
//! chooses the same nodes a `VC_k` greedy would choose on the reduced
//! instance; this module implements that `VC_k` greedy independently so the
//! test suite can verify the claim end-to-end.

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use std::time::Instant;

use pcover_graph::reduction::VcInstance;
use pcover_graph::{ItemId, PreferenceGraph};

use crate::cover::CoverState;
use crate::greedy::finish;
use crate::report::{Algorithm, SolveReport};
use crate::solver::{SolveCtx, Solver, SolverCaps, SolverSpec, VariantSupport};
use crate::variant::{CoverModel, Variant};
use crate::SolveError;

/// The result of a greedy Max Vertex Cover run.
#[derive(Clone, Debug)]
pub struct VcSolution {
    /// Selected vertices in selection order.
    pub order: Vec<ItemId>,
    /// Total weight of edges incident to the selection.
    pub cover_weight: f64,
    /// Candidate gain evaluations performed (one per non-selected vertex
    /// per round).
    pub gain_evaluations: u64,
}

/// Greedy `VC_k`: at each step select the vertex whose incident *uncovered*
/// edge weight is maximal (ties toward the smaller id).
///
/// # Errors
///
/// [`SolveError::KTooLarge`] if `k` exceeds the number of vertices.
pub fn greedy(inst: &VcInstance, k: usize) -> Result<VcSolution, SolveError> {
    if k > inst.n {
        return Err(SolveError::KTooLarge { k, n: inst.n });
    }

    // Incidence lists: per vertex, the edge indices touching it.
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); inst.n];
    for (idx, e) in inst.edges.iter().enumerate() {
        incident[e.u.index()].push(idx);
        if e.v != e.u {
            incident[e.v.index()].push(idx);
        }
    }

    let mut edge_covered = vec![false; inst.edges.len()];
    let mut selected = vec![false; inst.n];
    let mut order = Vec::with_capacity(k);
    let mut cover_weight = 0.0;
    let mut gain_evaluations = 0u64;

    for _ in 0..k {
        let mut best: Option<(f64, usize)> = None;
        for v in 0..inst.n {
            if selected[v] {
                continue;
            }
            let gain: f64 = incident[v]
                .iter()
                .filter(|&&e| !edge_covered[e])
                .map(|&e| inst.edges[e].weight)
                .sum();
            gain_evaluations += 1;
            let better = crate::float::improves_argmax(gain, v, best);
            if better {
                best = Some((gain, v));
            }
        }
        let Some((gain, v)) = best else {
            return Err(SolveError::internal(
                "vertex-cover greedy found no candidate despite k <= n",
            ));
        };
        selected[v] = true;
        for &e in &incident[v] {
            edge_covered[e] = true;
        }
        cover_weight += gain;
        order.push(ItemId::from_index(v));
    }

    Ok(VcSolution {
        order,
        cover_weight,
        gain_evaluations,
    })
}

/// The Theorem 3.1 route as a registry [`Solver`]: reduce `NPC_k` to
/// `VC_k`, run the vertex-cover greedy, and replay the selection through
/// the preference-graph cover oracle for a standard [`SolveReport`].
///
/// Normalized-only: the reduction's objective equality holds for graphs
/// whose out-weight sums are at most 1 (the `NPC_k` regime).
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxVcGreedy;

impl Solver for MaxVcGreedy {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        if M::VARIANT != Variant::Normalized {
            return Err(SolveError::UnsupportedVariant {
                solver: "maxvc".to_string(),
                variant: M::VARIANT,
            });
        }
        let started = Instant::now();
        let inst = pcover_graph::reduction::npc_to_vck(g)
            .map_err(|e| SolveError::internal(format!("NPC->VC reduction failed: {e}")))?;
        let vc = greedy(&inst, k)?;
        let mut state = CoverState::new(g.node_count());
        let mut trajectory = Vec::with_capacity(vc.order.len());
        for &v in &vc.order {
            state.add_node::<M>(g, v);
            trajectory.push(state.cover());
        }
        let report = finish::<M>(
            Algorithm::MaxVcGreedy,
            state,
            trajectory,
            started,
            vc.gain_evaluations,
        );
        ctx.emit_report(&report);
        Ok(report)
    }
}

/// The registry entry for [`MaxVcGreedy`].
pub fn spec() -> SolverSpec {
    SolverSpec::new(
        "maxvc",
        Algorithm::MaxVcGreedy,
        "Theorem 3.1 route: reduce NPC to Max Vertex Cover, solve with VC greedy; NPC only",
        SolverCaps {
            variants: VariantSupport::Only(Variant::Normalized),
            ..SolverCaps::default()
        },
        |v, g, k, ctx| MaxVcGreedy.dispatch(v, g, k, ctx),
    )
}

/// Cross-check helper: verifies on a given preference graph that the paper's
/// direct `NPC_k` greedy and the `VC_k` greedy on the reduced instance pick
/// identical node sequences and agree on the objective.
///
/// Returns the shared order. Used by tests; exposed for the experiment
/// harness's sanity section.
pub fn verify_equivalence(g: &PreferenceGraph, k: usize) -> Result<Vec<ItemId>, SolveError> {
    let npc = crate::greedy::solve::<crate::Normalized>(g, k)?;
    let inst = pcover_graph::reduction::npc_to_vck(g).map_err(|_| SolveError::InvalidPrefix {
        message: "reduction failed".into(),
    })?;
    let vc = greedy(&inst, k)?;
    if npc.order != vc.order {
        return Err(SolveError::InvalidPrefix {
            message: format!(
                "greedy orders diverge: NPC {:?} vs VC {:?}",
                npc.order, vc.order
            ),
        });
    }
    if (npc.cover - vc.cover_weight).abs() > 1e-9 {
        return Err(SolveError::InvalidPrefix {
            message: format!(
                "objectives diverge: NPC {} vs VC {}",
                npc.cover, vc.cover_weight
            ),
        });
    }
    Ok(npc.order)
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::{figure1, figure1_ids, figure3};
    use pcover_graph::reduction::{npc_to_vck, VcEdge};
    use pcover_graph::GraphBuilder;
    use rand::{RngExt, SeedableRng};

    use super::*;

    #[test]
    fn simple_vc_greedy() {
        let e = |u: u32, v: u32, w: f64| VcEdge {
            u: ItemId::new(u),
            v: ItemId::new(v),
            weight: w,
        };
        // Star around vertex 0 with a heavy remote edge.
        let inst = VcInstance {
            n: 5,
            edges: vec![e(0, 1, 1.0), e(0, 2, 1.0), e(0, 3, 1.0), e(3, 4, 2.5)],
        };
        let s = greedy(&inst, 1).unwrap();
        // Vertex 0 covers 3.0 > vertex 3's 3.5? 3 covers 1.0 + 2.5 = 3.5.
        assert_eq!(s.order, vec![ItemId::new(3)]);
        assert!((s.cover_weight - 3.5).abs() < 1e-12);
        let s2 = greedy(&inst, 2).unwrap();
        assert!((s2.cover_weight - 5.5).abs() < 1e-12);
    }

    #[test]
    fn self_edges_counted_once() {
        let inst = VcInstance {
            n: 2,
            edges: vec![VcEdge {
                u: ItemId::new(0),
                v: ItemId::new(0),
                weight: 4.0,
            }],
        };
        let s = greedy(&inst, 1).unwrap();
        assert_eq!(s.order, vec![ItemId::new(0)]);
        assert!((s.cover_weight - 4.0).abs() < 1e-12);
    }

    #[test]
    fn equivalence_on_paper_examples() {
        for g in [figure1(), figure3()] {
            for k in 1..=g.node_count() {
                verify_equivalence(&g, k).unwrap();
            }
        }
    }

    #[test]
    fn equivalence_on_random_normalized_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let n = rng.random_range(4..15);
            let mut b = GraphBuilder::new().normalize_node_weights(true);
            let ids: Vec<_> = (0..n)
                .map(|_| b.add_node(rng.random_range(1.0..10.0)))
                .collect();
            // Keep out-sums <= 1 by giving each node at most 2 edges of
            // weight <= 0.5.
            for &v in &ids {
                let mut used = std::collections::HashSet::new();
                for _ in 0..rng.random_range(0..3usize) {
                    let u = ids[rng.random_range(0..n)];
                    if u != v && used.insert(u) {
                        b.add_edge(v, u, rng.random_range(0.05..=0.5)).unwrap();
                    }
                }
            }
            let g = b.build_normalized().unwrap();
            let k = rng.random_range(1..=n);
            verify_equivalence(&g, k).unwrap();
        }
    }

    #[test]
    fn cover_weight_matches_instance_eval() {
        let (g, _) = figure1_ids();
        let inst = npc_to_vck(&g).unwrap();
        let s = greedy(&inst, 2).unwrap();
        assert!((inst.cover_weight_of(&s.order) - s.cover_weight).abs() < 1e-9);
    }

    #[test]
    fn k_too_large() {
        let inst = VcInstance {
            n: 3,
            edges: vec![],
        };
        assert!(greedy(&inst, 4).is_err());
    }
}

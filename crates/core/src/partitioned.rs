//! Component-partitioned greedy — solving independent substitution islands
//! separately and merging.
//!
//! A node's cover depends only on its retained out-neighbors, so the cover
//! function is additive across weakly connected components and marginal
//! gains in one component are unaffected by selections in another. Global
//! greedy therefore equals a **k-way merge by gain** of per-component
//! greedy sequences. Components can be solved in parallel and, on the
//! paper's department-partitioned catalogs, are far smaller than the whole
//! graph — a second parallelism axis on top of the per-iteration scan
//! parallelism of [`parallel`](crate::parallel).

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use std::time::Instant;

use rayon::prelude::*;

use pcover_graph::components::weakly_connected_components;
use pcover_graph::{GraphBuilder, ItemId, PreferenceGraph};

use crate::cover::CoverState;
use crate::greedy::finish;
use crate::lazy;
use crate::report::{Algorithm, SolveReport};
use crate::solver::{SolveCtx, Solver, SolverCaps, SolverSpec};
use crate::variant::CoverModel;
use crate::SolveError;

/// Runs per-component lazy greedy in parallel and merges the sequences.
///
/// The merged set's cover equals the plain greedy cover (the order may
/// differ only at exact gain ties across components).
///
/// ```
/// use pcover_core::{greedy, partitioned, Normalized};
/// use pcover_graph::examples::figure1;
///
/// // Figure 1 splits into two substitution islands: {A, B, C} and {D, E}.
/// let g = figure1();
/// let part = partitioned::solve::<Normalized>(&g, 2).unwrap();
/// let plain = greedy::solve::<Normalized>(&g, 2).unwrap();
/// assert!((part.cover - plain.cover).abs() < 1e-12);
/// ```
///
/// # Errors
///
/// [`SolveError::KTooLarge`] if `k > n`.
pub fn solve<M: CoverModel>(g: &PreferenceGraph, k: usize) -> Result<SolveReport, SolveError> {
    let started = Instant::now();
    let n = g.node_count();
    if k > n {
        return Err(SolveError::KTooLarge { k, n });
    }

    let components = weakly_connected_components(g);
    let members = components.members();

    // Solve each component independently: a weight-preserving induced
    // subgraph keeps every gain identical to its value in the full graph.
    let per_component: Vec<Result<Vec<(f64, ItemId)>, SolveError>> = members
        .par_iter()
        .map(|nodes| {
            let sub = induced_preserving_weights(g, nodes);
            let k_c = k.min(nodes.len());
            let report = lazy::solve::<M>(&sub, k_c)?;
            // Translate local ids back and pair each pick with its gain
            // (trajectory deltas).
            let mut prev = 0.0;
            Ok(report
                .order
                .iter()
                .zip(&report.trajectory)
                .map(|(&local, &cum)| {
                    let gain = cum - prev;
                    prev = cum;
                    (gain, nodes[local.index()])
                })
                .collect())
        })
        .collect();

    // Merge the per-component sequences: repeatedly take the head with the
    // largest gain (ties toward the smaller global id).
    let mut sequences: Vec<std::vec::IntoIter<(f64, ItemId)>> = Vec::new();
    let mut gain_evaluations = 0u64;
    for r in per_component {
        let seq = r?;
        gain_evaluations += seq.len() as u64;
        sequences.push(seq.into_iter());
    }
    let mut heads: Vec<Option<(f64, ItemId)>> = sequences.iter_mut().map(|s| s.next()).collect();
    let mut merged: Vec<ItemId> = Vec::with_capacity(k);
    while merged.len() < k {
        let best = heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.map(|(gain, v)| (gain, std::cmp::Reverse(v), i)))
            .max_by(|a, b| crate::float::cmp_gain(a.0, b.0).then(a.1.cmp(&b.1)));
        let Some((_, std::cmp::Reverse(v), idx)) = best else {
            break; // fewer than k nodes exist across sequences (k <= n
                   // guards this, but stay defensive)
        };
        merged.push(v);
        heads[idx] = sequences[idx].next();
    }

    // Exact replay for the report.
    let mut state = CoverState::new(n);
    let mut trajectory = Vec::with_capacity(merged.len());
    for &v in &merged {
        state.add_node::<M>(g, v);
        trajectory.push(state.cover());
    }
    Ok(finish::<M>(
        Algorithm::Partitioned,
        state,
        trajectory,
        started,
        gain_evaluations,
    ))
}

/// Partitioned greedy as a registry [`Solver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Partitioned;

impl Solver for Partitioned {
    fn solve<M: CoverModel>(
        &self,
        g: &PreferenceGraph,
        k: usize,
        ctx: &mut SolveCtx<'_>,
    ) -> Result<SolveReport, SolveError> {
        // Run the per-component fan-out on the process-wide shared pool for
        // the configured thread count instead of rayon's ambient global
        // pool, so serving-path solves never construct pools per request.
        // The merge is order-insensitive (per-chunk results are collected
        // into a component-indexed Vec), so the pool choice cannot change
        // the output.
        let pool = crate::pool::shared_pool(ctx.config.threads.max(1))?;
        let report = pool.install(|| solve::<M>(g, k))?;
        // The merge assembles the solution at the end; replay it so the
        // observer stream matches the returned order exactly.
        ctx.emit_report(&report);
        Ok(report)
    }
}

/// The registry entry for [`Partitioned`].
pub fn spec() -> SolverSpec {
    SolverSpec::new(
        "partitioned",
        Algorithm::Partitioned,
        "Component-partitioned greedy: per-island lazy solves merged exactly by gain",
        SolverCaps {
            supports_threads: true,
            ..SolverCaps::default()
        },
        |v, g, k, ctx| Partitioned.dispatch(v, g, k, ctx),
    )
}

/// Induced subgraph that keeps original node weights (no renormalization),
/// used so per-component gains equal their full-graph values.
fn induced_preserving_weights(g: &PreferenceGraph, nodes: &[ItemId]) -> PreferenceGraph {
    let mut b =
        GraphBuilder::with_capacity(nodes.len(), nodes.len() * 2).skip_weight_sum_check(true);
    // nodes are ascending, so binary search gives the local id.
    for &v in nodes {
        b.add_node(g.node_weight(v));
    }
    for (local_src, &v) in nodes.iter().enumerate() {
        for (u, w) in g.out_edges(v) {
            if let Ok(local_tgt) = nodes.binary_search(&u) {
                b.add_edge(
                    ItemId::from_index(local_src),
                    ItemId::from_index(local_tgt),
                    w,
                )
                .expect("weights come from a valid graph"); // lint: allow(no-expect) — re-adding edges the parent graph already validated
            }
        }
    }
    // lint: allow(no-expect) — builder input is a projection of an already-built graph
    b.build().expect("component subgraph is valid")
}

#[cfg(test)]
mod tests {
    use pcover_graph::examples::figure1_ids;

    use crate::{greedy, Independent, Normalized};

    use super::*;

    #[test]
    fn figure1_matches_plain_greedy() {
        let (g, _) = figure1_ids();
        for k in 0..=5 {
            let plain = greedy::solve::<Normalized>(&g, k).unwrap();
            let part = solve::<Normalized>(&g, k).unwrap();
            assert!(
                (plain.cover - part.cover).abs() < 1e-9,
                "k = {k}: {} vs {}",
                plain.cover,
                part.cover
            );
            assert_eq!(part.k(), k);
        }
    }

    #[test]
    fn multi_island_graph_matches_plain_greedy() {
        // Three islands with distinct structure.
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let ids: Vec<ItemId> = (0..15)
            .map(|i| b.add_node(1.0 + (i * i % 11) as f64))
            .collect();
        for island in 0..3 {
            let base = island * 5;
            for j in 0..4 {
                b.add_edge(ids[base + j], ids[base + j + 1], 0.3 + 0.1 * j as f64)
                    .unwrap();
            }
            b.add_edge(ids[base + 4], ids[base], 0.25).unwrap();
        }
        let g = b.build().unwrap();
        assert_eq!(weakly_connected_components(&g).count, 3);

        for k in [1, 4, 7, 12, 15] {
            let plain = greedy::solve::<Independent>(&g, k).unwrap();
            let part = solve::<Independent>(&g, k).unwrap();
            assert!(
                (plain.cover - part.cover).abs() < 1e-9,
                "k = {k}: plain {} vs partitioned {}",
                plain.cover,
                part.cover
            );
        }
    }

    #[test]
    fn single_component_degenerates_to_lazy() {
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        let ids: Vec<ItemId> = (0..8).map(|i| b.add_node(1.0 + i as f64)).collect();
        for i in 0..7 {
            b.add_edge(ids[i], ids[i + 1], 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let part = solve::<Independent>(&g, 4).unwrap();
        let lz = crate::lazy::solve::<Independent>(&g, 4).unwrap();
        assert!((part.cover - lz.cover).abs() < 1e-12);
    }

    #[test]
    fn k_bounds() {
        let (g, _) = figure1_ids();
        assert!(solve::<Normalized>(&g, 6).is_err());
        let r = solve::<Normalized>(&g, 5).unwrap();
        assert!((r.cover - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_isolated_nodes() {
        let mut b = GraphBuilder::new().normalize_node_weights(true);
        for i in 0..6 {
            b.add_node(1.0 + i as f64);
        }
        let g = b.build().unwrap();
        let part = solve::<Independent>(&g, 3).unwrap();
        // Picks the three heaviest nodes: ids 5, 4, 3.
        assert_eq!(
            part.order,
            vec![ItemId::new(5), ItemId::new(4), ItemId::new(3)]
        );
    }
}

//! Approximation-ratio formulas and the Table 1 data.
//!
//! The greedy algorithm achieves `max{1 − 1/e, 1 − (1 − k/n)²}` for `NPC_k`
//! (via the `VC_k` equivalence; Feige & Langberg 2001) and a tight
//! `1 − 1/e` for `IPC_k` (Theorem 4.1). Table 1 of the paper contrasts the
//! greedy bound with the best known (SDP/LP-based, unscalable) bounds per
//! `k/n` range; [`table1`] reproduces that table.

use serde::{Deserialize, Serialize};

/// `1 − 1/e ≈ 0.632`, the classic submodular-greedy constant.
pub const ONE_MINUS_INV_E: f64 = 1.0 - 0.367_879_441_171_442_33;

/// The greedy approximation guarantee for `NPC_k` at ratio `rho = k / n`:
/// `max{1 − 1/e, 1 − (1 − rho)²}`.
///
/// # Panics
///
/// Panics if `rho` is not in `[0, 1]`.
pub fn greedy_ratio_npc(rho: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&rho),
        "k/n ratio must be in [0, 1], got {rho}"
    );
    let quadratic = 1.0 - (1.0 - rho) * (1.0 - rho);
    quadratic.max(1.0 - (-1.0f64).exp())
}

/// The greedy approximation guarantee for `IPC_k`: the tight `1 − 1/e`,
/// independent of `k/n`.
pub fn greedy_ratio_ipc() -> f64 {
    1.0 - (-1.0f64).exp()
}

/// The `k/n` ratio above which the quadratic term beats `1 − 1/e`:
/// `1 − 1/√e ≈ 0.3935` (the "≈0.39" boundary in Table 1).
pub fn quadratic_crossover() -> f64 {
    1.0 - (-0.5f64).exp()
}

/// One row of Table 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Row {
    /// The `k/n` range as printed in the paper.
    pub range: &'static str,
    /// Representative `rho` used to evaluate the greedy column (`None` for
    /// the asymptotic `o(1)` row, where the quadratic term vanishes).
    pub representative_rho: Option<f64>,
    /// The greedy guarantee formula rendered as in the paper.
    pub greedy_formula: &'static str,
    /// The greedy guarantee evaluated at the representative `rho`.
    pub greedy_value: f64,
    /// Best known polynomial guarantee (literature constants; SDP/LP-based
    /// except the last row where greedy itself is the best known).
    pub best_known: &'static str,
    /// Numeric value of the best-known column (approximate for the rows the
    /// paper itself reports approximately).
    pub best_known_value: f64,
}

/// Reproduces Table 1: greedy vs best-known approximation ratios for
/// `VC_k` (and hence `NPC_k`) per `k/n` range.
pub fn table1() -> Vec<Table1Row> {
    let e_term = greedy_ratio_ipc();
    vec![
        Table1Row {
            range: "o(1)",
            representative_rho: None,
            greedy_formula: "1 - 1/e",
            greedy_value: e_term,
            best_known: "0.75 + eps (SDP) [11]",
            best_known_value: 0.75,
        },
        Table1Row {
            range: "Theta(1), [0, ~0.39)",
            representative_rho: Some(0.2),
            greedy_formula: "1 - 1/e",
            greedy_value: greedy_ratio_npc(0.2),
            best_known: "0.92 (SDP) [19]",
            best_known_value: 0.92,
        },
        Table1Row {
            range: "(~0.39, ~0.72)",
            representative_rho: Some(0.55),
            greedy_formula: "1 - (1 - k/n)^2",
            greedy_value: greedy_ratio_npc(0.55),
            best_known: "0.92 (SDP) [19]",
            best_known_value: 0.92,
        },
        Table1Row {
            range: "(~0.72, 0.74)",
            representative_rho: Some(0.73),
            greedy_formula: "1 - (1 - k/n)^2",
            greedy_value: greedy_ratio_npc(0.73),
            best_known: "~0.93 (SDP) [17]",
            best_known_value: 0.93,
        },
        Table1Row {
            range: "[0.74, 1]",
            representative_rho: Some(0.74),
            greedy_formula: "1 - (1 - k/n)^2",
            greedy_value: greedy_ratio_npc(0.74),
            best_known: "1 - (1 - k/n)^2 [11]",
            best_known_value: greedy_ratio_npc(0.74),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert!((greedy_ratio_ipc() - 0.6321205588285577).abs() < 1e-12);
        assert!((quadratic_crossover() - 0.3934693402873666).abs() < 1e-12);
    }

    #[test]
    fn npc_ratio_regimes() {
        // Below the crossover the e-term dominates...
        assert!((greedy_ratio_npc(0.1) - greedy_ratio_ipc()).abs() < 1e-12);
        assert!((greedy_ratio_npc(0.39) - greedy_ratio_ipc()).abs() < 1e-12);
        // ...above it the quadratic takes over.
        assert!(greedy_ratio_npc(0.5) > greedy_ratio_ipc());
        assert!((greedy_ratio_npc(0.5) - 0.75).abs() < 1e-12);
        // Paper: for k >= 0.74n the guarantee exceeds 0.93.
        assert!(greedy_ratio_npc(0.74) > 0.93);
        // Extremes.
        assert!((greedy_ratio_npc(0.0) - greedy_ratio_ipc()).abs() < 1e-12);
        assert!((greedy_ratio_npc(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn rho_out_of_range_panics() {
        greedy_ratio_npc(1.5);
    }

    #[test]
    fn table1_has_five_rows_and_monotone_greedy_column() {
        let t = table1();
        assert_eq!(t.len(), 5);
        for w in t.windows(2) {
            assert!(w[1].greedy_value >= w[0].greedy_value - 1e-12);
        }
        // The last row is where greedy is the best known.
        assert!((t[4].greedy_value - t[4].best_known_value).abs() < 1e-12);
        // Greedy never claims more than best-known anywhere.
        for row in &t {
            assert!(
                row.greedy_value <= row.best_known_value + 1e-12,
                "{}",
                row.range
            );
        }
    }
}

//! Solve reports: the ordered solution plus the metadata the paper's system
//! returns alongside it (Figure 2's "retained items + coverage" output).

// lint: allow-file(no-index) — per-item arrays (I-values, selection masks, gains) are sized to
// node_count and indexed by ItemId::index(); bounds-checked [] in the hot greedy
// loops is deliberate and in bounds by construction.
use std::time::Duration;

use serde::{Deserialize, Serialize};

use pcover_graph::{ItemId, PreferenceGraph};

use crate::variant::Variant;

/// Which solver produced a report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Plain greedy (Algorithm 1).
    Greedy,
    /// Lazy greedy with a stale-gain priority queue.
    LazyGreedy,
    /// Delta greedy: cached gains refreshed through a dirty set.
    DeltaGreedy,
    /// Delta greedy with the dirty-set refresh chunked over a thread pool.
    DeltaParallelGreedy,
    /// Rayon-parallel greedy.
    ParallelGreedy,
    /// Component-partitioned greedy (per-component lazy + exact k-way
    /// merge).
    Partitioned,
    /// Exact brute force (the paper's BF baseline).
    BruteForce,
    /// Top-k items by node weight (TopK-W baseline).
    TopKWeight,
    /// Top-k items by singleton coverage (TopK-C baseline).
    TopKCoverage,
    /// Uniform random selection (Random baseline).
    Random,
    /// Stochastic greedy (sampled candidate scans) — beyond-paper
    /// extension.
    StochasticGreedy,
    /// Sieve-streaming single-pass selection — beyond-paper extension.
    SieveStreaming,
    /// Swap-based local search refinement — beyond-paper extension.
    LocalSearch,
    /// NPC solved through the Theorem 3.1 reduction to Max Vertex Cover.
    MaxVcGreedy,
}

impl Algorithm {
    /// Short name used in experiment tables (`Greedy`, `BF`, `TopK-W`,
    /// `TopK-C`, `Random` — the paper's labels).
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Greedy => "Greedy",
            Algorithm::LazyGreedy => "Greedy(lazy)",
            Algorithm::DeltaGreedy => "Greedy(delta)",
            Algorithm::DeltaParallelGreedy => "Greedy(delta-par)",
            Algorithm::ParallelGreedy => "Greedy(par)",
            Algorithm::Partitioned => "Greedy(part)",
            Algorithm::BruteForce => "BF",
            Algorithm::TopKWeight => "TopK-W",
            Algorithm::TopKCoverage => "TopK-C",
            Algorithm::Random => "Random",
            Algorithm::StochasticGreedy => "Greedy(stoch)",
            Algorithm::SieveStreaming => "Sieve",
            Algorithm::LocalSearch => "LocalSearch",
            Algorithm::MaxVcGreedy => "Greedy(VC)",
        }
    }

    /// Every algorithm, in the canonical presentation order. The solver
    /// registry's conformance suite checks each is produced by a registered
    /// spec, so this list cannot drift from the dispatchable set.
    pub const ALL: [Algorithm; 14] = [
        Algorithm::Greedy,
        Algorithm::LazyGreedy,
        Algorithm::DeltaGreedy,
        Algorithm::DeltaParallelGreedy,
        Algorithm::ParallelGreedy,
        Algorithm::Partitioned,
        Algorithm::BruteForce,
        Algorithm::TopKWeight,
        Algorithm::TopKCoverage,
        Algorithm::Random,
        Algorithm::StochasticGreedy,
        Algorithm::SieveStreaming,
        Algorithm::LocalSearch,
        Algorithm::MaxVcGreedy,
    ];

    /// The canonical registry/CLI name (`--algorithm` value) of the spec
    /// that primarily produces this algorithm. The single source of truth
    /// for CLI parsing: registry names for the builtin solvers are defined
    /// as these strings.
    pub fn cli_name(self) -> &'static str {
        match self {
            Algorithm::Greedy => "greedy",
            Algorithm::LazyGreedy => "lazy",
            Algorithm::DeltaGreedy => "delta",
            Algorithm::DeltaParallelGreedy => "delta-parallel",
            Algorithm::ParallelGreedy => "parallel",
            Algorithm::Partitioned => "partitioned",
            Algorithm::BruteForce => "bf",
            Algorithm::TopKWeight => "topk-w",
            Algorithm::TopKCoverage => "topk-c",
            Algorithm::Random => "random",
            Algorithm::StochasticGreedy => "stochastic",
            Algorithm::SieveStreaming => "sieve",
            Algorithm::LocalSearch => "local-search",
            Algorithm::MaxVcGreedy => "maxvc",
        }
    }
}

/// The output of a solve: the ordered retained set, the cover it achieves,
/// the cover trajectory, and per-item coverage metadata.
///
/// Because greedy solutions are *incremental*, the first `k'` entries of
/// [`order`](Self::order) are exactly the solution greedy would return for
/// budget `k'`, and [`trajectory`](Self::trajectory)`[k' - 1]` is its cover
/// (Section 3.2, "Additional Advantages"). Baseline and brute-force reports
/// fill the same fields for uniformity, but only greedy-family reports have
/// this prefix property.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolveReport {
    /// Which solver produced this report.
    pub algorithm: Algorithm,
    /// Which cover variant was optimized.
    pub variant: Variant,
    /// Retained items, in the order they were selected.
    pub order: Vec<ItemId>,
    /// `trajectory[i]` = cover of the first `i + 1` items of `order`.
    pub trajectory: Vec<f64>,
    /// The final cover `C(S)`.
    pub cover: f64,
    /// The paper's `I` array: per item, the probability it is requested
    /// *and* matched by the final retained set. Sums to `cover`.
    pub item_cover: Vec<f64>,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// Total number of `Gain`/`AddNode` node evaluations performed —
    /// the `O(nkD)` work measure, used by the scalability experiments.
    pub gain_evaluations: u64,
}

impl SolveReport {
    /// The retained set size `k`.
    pub fn k(&self) -> usize {
        self.order.len()
    }

    /// The coverage percentage of item `u`: how well `u`'s requests are
    /// matched by the retained set (1.0 for retained items).
    ///
    /// This is the per-item metadata of the paper's system output
    /// (Section 5.1): `I[u] / W(u)`. For zero-weight items the ratio is
    /// undefined; we report 1.0 when the item is retained and 0.0 otherwise.
    pub fn coverage_of(&self, g: &PreferenceGraph, u: ItemId) -> f64 {
        let w = g.node_weight(u);
        if w == 0.0 {
            return if self.order.contains(&u) { 1.0 } else { 0.0 };
        }
        (self.item_cover[u.index()] / w).min(1.0)
    }

    /// The solution for a smaller budget `k' ≤ k`: the first `k'` items of
    /// the order and their cover.
    ///
    /// Only meaningful for greedy-family reports (see type docs).
    pub fn prefix(&self, k_prime: usize) -> Option<(&[ItemId], f64)> {
        if k_prime == 0 || k_prime > self.order.len() {
            return None;
        }
        Some((&self.order[..k_prime], self.trajectory[k_prime - 1]))
    }

    /// The smallest prefix whose cover reaches `threshold`, if any — the
    /// complementary minimization answer read off a full greedy run.
    pub fn smallest_prefix_reaching(&self, threshold: f64) -> Option<usize> {
        self.trajectory
            .iter()
            .position(|&c| c >= threshold)
            .map(|idx| idx + 1)
    }

    /// Whether two reports describe the same solution bit-for-bit: equal
    /// variant and retained order, and bitwise-equal cover, trajectory, and
    /// item-cover arrays. The algorithm tag, wall time, and evaluation
    /// count are deliberately ignored — this is the warm-vs-cold identity
    /// check (a warm re-solve must match the cold solve's *solution*
    /// exactly while doing less work).
    pub fn bit_identical_to(&self, other: &SolveReport) -> bool {
        let bits_eq = |a: &[f64], b: &[f64]| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        };
        self.variant == other.variant
            && self.order == other.order
            // lint: allow(float-eq) — to_bits comparison IS the bit-identity check; approx_eq would defeat it
            && self.cover.to_bits() == other.cover.to_bits()
            && bits_eq(&self.trajectory, &other.trajectory)
            && bits_eq(&self.item_cover, &other.item_cover)
    }

    /// Writes the cover trajectory as CSV (`k,item,cover`) — the series
    /// behind the paper's coverage figures, ready for any plotting tool.
    pub fn write_trajectory_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "k,item,cover")?;
        for (i, (&item, &cover)) in self.order.iter().zip(&self.trajectory).enumerate() {
            writeln!(w, "{},{},{}", i + 1, item.raw(), cover)?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exactly-representable constants
mod tests {
    use super::*;

    fn fake_report() -> SolveReport {
        SolveReport {
            algorithm: Algorithm::Greedy,
            variant: Variant::Normalized,
            order: vec![ItemId::new(1), ItemId::new(3)],
            trajectory: vec![0.66, 0.873],
            cover: 0.873,
            item_cover: vec![0.22, 0.22, 0.22, 0.06, 0.153],
            elapsed: Duration::from_millis(1),
            gain_evaluations: 9,
        }
    }

    #[test]
    fn prefix_reads_trajectory() {
        let r = fake_report();
        let (items, cover) = r.prefix(1).unwrap();
        assert_eq!(items, &[ItemId::new(1)]);
        assert!((cover - 0.66).abs() < 1e-12);
        assert!(r.prefix(0).is_none());
        assert!(r.prefix(3).is_none());
    }

    #[test]
    fn smallest_prefix_reaching_threshold() {
        let r = fake_report();
        assert_eq!(r.smallest_prefix_reaching(0.5), Some(1));
        assert_eq!(r.smallest_prefix_reaching(0.7), Some(2));
        assert_eq!(r.smallest_prefix_reaching(0.9), None);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Algorithm::BruteForce.label(), "BF");
        assert_eq!(Algorithm::TopKWeight.label(), "TopK-W");
        assert_eq!(Algorithm::TopKCoverage.label(), "TopK-C");
    }

    #[test]
    fn trajectory_csv_shape() {
        let r = fake_report();
        let mut buf = Vec::new();
        r.write_trajectory_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "k,item,cover");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("1,1,0.66"));
        assert!(lines[2].starts_with("2,3,0.873"));
    }

    #[test]
    fn report_serde_roundtrip() {
        let r = fake_report();
        let json = serde_json::to_string(&r).unwrap();
        let back: SolveReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.order, r.order);
        assert_eq!(back.cover, r.cover);
        assert_eq!(back.algorithm, r.algorithm);
    }
}
